"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_solver_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "x.json", "--solver", "oracle"])


class TestInfo:
    def test_lists_components(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "tacc" in out
        assert "random_geometric" in out
        assert "experiments" in out


class TestGenerateSolveCompare:
    def test_generate_gap_instance(self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        code = main([
            "generate", "--output", str(path), "--kind", "gap",
            "--devices", "12", "--servers", "3", "--gap-class", "c", "--seed", "1",
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        assert len(payload["delay"]) == 12

    def test_generate_topology_instance(self, tmp_path):
        path = tmp_path / "topo.json"
        code = main([
            "generate", "--output", str(path), "--kind", "topology",
            "--routers", "12", "--devices", "8", "--servers", "2", "--seed", "2",
        ])
        assert code == 0
        assert path.exists()

    def test_solve_writes_assignment(self, tmp_path, capsys):
        instance = tmp_path / "inst.json"
        assignment = tmp_path / "assign.json"
        main([
            "generate", "--output", str(instance), "--kind", "random",
            "--devices", "10", "--servers", "3", "--seed", "3",
        ])
        code = main([
            "solve", str(instance), "--solver", "greedy",
            "--output", str(assignment),
        ])
        assert code == 0
        vector = json.loads(assignment.read_text())["vector"]
        assert len(vector) == 10
        out = capsys.readouterr().out
        assert "greedy" in out
        assert "yes" in out

    def test_solve_rl_episode_override(self, tmp_path):
        instance = tmp_path / "inst.json"
        main([
            "generate", "--output", str(instance), "--kind", "random",
            "--devices", "8", "--servers", "2", "--seed", "4",
        ])
        assert main([
            "solve", str(instance), "--solver", "tacc", "--episodes", "10",
        ]) == 0

    def test_compare_prints_sorted_table(self, tmp_path, capsys):
        instance = tmp_path / "inst.json"
        main([
            "generate", "--output", str(instance), "--kind", "random",
            "--devices", "10", "--servers", "3", "--seed", "5",
        ])
        code = main(["compare", str(instance), "--solvers", "greedy,random"])
        assert code == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "random" in out
        # output rows are sorted by objective: greedy above random
        assert out.index("greedy") < out.rindex("random")

    def test_compare_unknown_solver_errors(self, tmp_path, capsys):
        instance = tmp_path / "inst.json"
        main([
            "generate", "--output", str(instance), "--kind", "random",
            "--devices", "6", "--servers", "2", "--seed", "6",
        ])
        assert main(["compare", str(instance), "--solvers", "greedy,psychic"]) == 1

    def test_solve_corrupt_instance_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["solve", str(bad), "--solver", "greedy"]) == 1
        assert "error" in capsys.readouterr().err


class TestInspect:
    def test_reports_difficulty(self, tmp_path, capsys):
        instance = tmp_path / "inst.json"
        main([
            "generate", "--output", str(instance), "--kind", "gap",
            "--devices", "30", "--servers", "4", "--gap-class", "d", "--seed", "1",
        ])
        capsys.readouterr()
        assert main(["inspect", str(instance)]) == 0
        out = capsys.readouterr().out
        assert "difficulty class:" in out
        assert "delay_demand_correlation" in out


class TestSimulateExperimentReport:
    def test_simulate_small(self, capsys):
        code = main([
            "simulate", "--solver", "greedy", "--routers", "10", "--devices", "6",
            "--servers", "2", "--duration", "3", "--seed", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean network latency" in out

    def test_simulate_with_faults(self, tmp_path, capsys):
        from repro.faults import FaultScenario

        scenario = tmp_path / "crash.json"
        FaultScenario.single_crash(0, at_s=1.0, repair_at_s=2.0).save(scenario)
        code = main([
            "simulate", "--solver", "greedy", "--routers", "10", "--devices", "6",
            "--servers", "2", "--duration", "3", "--seed", "7",
            "--faults", str(scenario), "--dispatch", "failover",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault scenario" in out
        assert "goodput" in out
        assert "worst goodput window" in out

    def test_experiment_runs_and_saves(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import configs
        from repro.experiments.configs import Scale

        monkeypatch.setitem(
            configs._CONFIGS,
            "f4",
            {
                "quick": Scale(
                    repeats=1,
                    params={"n_devices": 8, "n_servers": 2, "n_routers": 8,
                            "tightness": 0.8},
                    solver_kwargs={
                        "tacc": {"episodes": 10},
                        "qlearning": {"episodes": 10},
                        "annealing": {"steps": 300},
                        "genetic": {"population": 8, "generations": 5},
                    },
                ),
            },
        )
        out_json = tmp_path / "f4.json"
        code = main(["experiment", "f4", "--scale", "quick", "--json", str(out_json)])
        assert code == 0
        assert out_json.exists()
        assert "F4" in capsys.readouterr().out

    def test_experiment_engine_flags_cache_across_runs(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.experiments import configs
        from repro.experiments.configs import Scale

        monkeypatch.setitem(
            configs._CONFIGS,
            "f4",
            {
                "quick": Scale(
                    repeats=2,
                    params={"n_devices": 8, "n_servers": 2, "n_routers": 8,
                            "tightness": 0.8},
                    solver_kwargs={
                        "tacc": {"episodes": 10},
                        "qlearning": {"episodes": 10},
                        "annealing": {"steps": 300},
                        "genetic": {"population": 8, "generations": 5},
                    },
                ),
            },
        )
        cache = tmp_path / "cache"
        args = ["experiment", "f4", "--scale", "quick",
                "--jobs", "2", "--cache-dir", str(cache)]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "misses: 2" in first.err
        assert main(args) == 0
        second = capsys.readouterr()
        assert "hit ratio: 100%" in second.err
        assert first.out == second.out  # cached table identical

    def test_compare_engine_flags(self, tmp_path, capsys):
        instance = tmp_path / "inst.json"
        main([
            "generate", "--output", str(instance), "--kind", "random",
            "--devices", "8", "--servers", "2", "--seed", "8",
        ])
        capsys.readouterr()
        code = main([
            "compare", str(instance), "--solvers", "greedy,random",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "greedy" in captured.out
        assert "engine: 2 jobs" in captured.err

    def test_report_renders_from_results(self, tmp_path, capsys):
        from repro.experiments.harness import ResultTable

        results = tmp_path / "results"
        results.mkdir()
        table = ResultTable(
            ["solver", "max_utilization_mean", "overloaded_servers_mean",
             "utilization_spread_mean", "max_utilization_ci",
             "overloaded_servers_ci", "utilization_spread_ci"],
            title="F4",
        )
        table.add_row(
            solver="tacc", max_utilization_mean=0.9, overloaded_servers_mean=0.0,
            utilization_spread_mean=0.2, max_utilization_ci=0.0,
            overloaded_servers_ci=0.0, utilization_spread_ci=0.0,
        )
        table.add_row(
            solver="nearest", max_utilization_mean=1.4, overloaded_servers_mean=1.5,
            utilization_spread_mean=0.8, max_utilization_ci=0.0,
            overloaded_servers_ci=0.0, utilization_spread_ci=0.0,
        )
        table.save_json(results / "f4_load_balance.json")
        output = tmp_path / "EXPERIMENTS.md"
        code = main([
            "report", "--results", str(results), "--output", str(output),
        ])
        assert code == 0
        body = output.read_text()
        assert "F4" in body
        assert "guarantee holds" in body
        assert "Missing results" in body  # the other nine are absent

"""WriteAheadLog file mechanics: append, snapshot roll, torn tails."""

from __future__ import annotations

import json

import pytest

from repro.errors import WalError
from repro.wal import WriteAheadLog


class TestAppend:
    def test_appends_are_stamped_and_ordered(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        assert wal.append({"op": "assign", "device": 1, "server": 0}) == 1
        assert wal.append({"op": "release", "device": 1, "server": 0}) == 2
        wal.close()
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [1, 2]

    def test_caller_may_not_stamp_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        with pytest.raises(Exception, match="stamps seq"):
            wal.append({"seq": 99, "op": "assign"})


class TestSnapshotRoll:
    def test_snapshot_truncates_the_journal(self, tmp_path):
        wal = WriteAheadLog(tmp_path, snapshot_every=2)
        wal.append({"op": "assign", "device": 0, "server": 0})
        wal.append({"op": "assign", "device": 1, "server": 1})
        assert wal.should_snapshot()
        wal.write_snapshot({"vector": [0, 1], "epoch": 2})
        assert not wal.should_snapshot()
        wal.append({"op": "release", "device": 0, "server": 0})
        wal.close()
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 1  # only the post-snapshot record remains
        assert json.loads(lines[0])["seq"] == 3

    def test_load_combines_snapshot_and_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path, snapshot_every=2)
        wal.append({"op": "assign", "device": 0, "server": 0})
        wal.append({"op": "assign", "device": 1, "server": 1})
        wal.write_snapshot({"epoch": 2})
        wal.append({"op": "release", "device": 0, "server": 0})
        wal.close()
        fresh = WriteAheadLog(tmp_path)
        state, records = fresh.load()
        assert state == {"epoch": 2}
        assert [r["op"] for r in records] == ["release"]
        # post-recovery appends continue the numbering
        assert fresh.append({"op": "assign", "device": 0, "server": 0}) == 4


class TestRecoveryEdges:
    def test_fresh_directory_loads_empty(self, tmp_path):
        state, records = WriteAheadLog(tmp_path).load()
        assert state is None and records == []

    def test_torn_tail_is_dropped_silently(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append({"op": "assign", "device": 0, "server": 0})
        wal.close()
        with open(tmp_path / "journal.jsonl", "a", encoding="utf-8") as f:
            f.write('{"seq": 2, "op": "rel')  # SIGKILL mid-append
        state, records = WriteAheadLog(tmp_path).load()
        assert [r["seq"] for r in records] == [1]

    def test_torn_middle_line_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append({"op": "assign", "device": 0, "server": 0})
        wal.close()
        journal = tmp_path / "journal.jsonl"
        good = journal.read_text()
        journal.write_text('{"torn\n' + good, encoding="utf-8")
        with pytest.raises(WalError, match="line 1"):
            WriteAheadLog(tmp_path).load()

    def test_corrupt_snapshot_raises(self, tmp_path):
        (tmp_path / "snapshot.json").write_text("{oops", encoding="utf-8")
        with pytest.raises(WalError, match="corrupt WAL snapshot"):
            WriteAheadLog(tmp_path).load()

    def test_load_must_precede_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append({"op": "assign", "device": 0, "server": 0})
        with pytest.raises(Exception, match="before any append"):
            wal.load()

    def test_crash_mid_snapshot_keeps_the_previous_one(self, tmp_path):
        wal = WriteAheadLog(tmp_path, snapshot_every=1)
        wal.append({"op": "assign", "device": 0, "server": 0})
        wal.write_snapshot({"epoch": 1})
        wal.close()
        # a temp file left behind by a crash mid-write must be ignored
        (tmp_path / "snapshot.json.tmp").write_text("{half", encoding="utf-8")
        state, _ = WriteAheadLog(tmp_path).load()
        assert state == {"epoch": 1}

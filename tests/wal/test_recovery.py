"""ServiceState WAL recovery: byte-identical state after a crash."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import WalError
from repro.model.instances import random_instance
from repro.serve.state import ServiceState
from repro.wal import WriteAheadLog


def _mutate(state: ServiceState, seed: int = 0) -> None:
    """A workload touching every journaled mutation kind."""
    rng = np.random.default_rng(seed)
    for device in range(8):
        state.assign(device)
    state.release(2)
    state.release(5)
    # an off-path re-optimization swap
    epoch, vector = state.snapshot()
    assert state.try_swap(epoch, vector)
    # a cross-shard migration batch
    migrated = state.migrate_out([0, 1, 5], state.epoch)
    assert migrated == [0, 1]  # 5 was already released
    for device in (8, 9):
        state.assign(device)
    # interleave a few more random mutations for good measure
    for device in rng.permutation(6)[:3]:
        if state.vector[int(device)] >= 0:
            state.release(int(device))


def _payload_bytes(state: ServiceState) -> str:
    return json.dumps(state.snapshot_payload(), sort_keys=True)


class TestByteIdenticalRecovery:
    @pytest.mark.parametrize("snapshot_every", [4, 1000])
    def test_recovery_restores_the_exact_payload(self, tmp_path,
                                                 snapshot_every):
        """The pinned guarantee: snapshot + journal replay rebuilds the
        state byte-identical — with (`snapshot_every=4`) and without
        (`=1000`) a snapshot roll in the middle of the workload."""
        problem = random_instance(12, 4, tightness=0.6, seed=7)
        wal = WriteAheadLog(tmp_path, snapshot_every=snapshot_every)
        state = ServiceState(problem, wal=wal)
        _mutate(state)
        before = _payload_bytes(state)
        wal.close()  # SIGKILL: nothing flushed is lost, nothing else ran

        recovered = ServiceState(
            problem, wal=WriteAheadLog(tmp_path, snapshot_every=snapshot_every)
        )
        recovered.recover()
        assert _payload_bytes(recovered) == before
        # and the incremental delay sum survived drift-for-drift
        assert repr(recovered.total_delay_s) == repr(state.total_delay_s)

    def test_recovery_then_more_traffic_then_recovery_again(self, tmp_path):
        problem = random_instance(12, 4, tightness=0.6, seed=7)
        state = ServiceState(problem, wal=WriteAheadLog(tmp_path))
        _mutate(state)
        state._wal.close()

        second = ServiceState(problem, wal=WriteAheadLog(tmp_path))
        second.recover()
        second.assign(0)
        second.release(0)
        before = _payload_bytes(second)
        second._wal.close()

        third = ServiceState(problem, wal=WriteAheadLog(tmp_path))
        third.recover()
        assert _payload_bytes(third) == before

    def test_torn_tail_recovers_to_the_last_complete_record(self, tmp_path):
        problem = random_instance(12, 4, tightness=0.6, seed=7)
        state = ServiceState(problem, wal=WriteAheadLog(tmp_path))
        state.assign(0)
        state.assign(1)
        state._wal.close()
        with open(tmp_path / "journal.jsonl", "a", encoding="utf-8") as f:
            f.write('{"seq": 3, "op": "assign", "dev')  # SIGKILL mid-append
        recovered = ServiceState(problem, wal=WriteAheadLog(tmp_path))
        assert recovered.recover() == 2
        assert recovered.active_count == 2

    def test_replay_divergence_raises(self, tmp_path):
        """A journal whose assign landed elsewhere than the replay's
        deterministic assigner would place it is corruption, not noise."""
        problem = random_instance(12, 4, tightness=0.6, seed=7)
        state = ServiceState(problem, wal=WriteAheadLog(tmp_path))
        state.assign(0)
        state._wal.close()
        journal = tmp_path / "journal.jsonl"
        record = json.loads(journal.read_text())
        record["server"] = (record["server"] + 1) % problem.n_servers
        journal.write_text(json.dumps(record) + "\n", encoding="utf-8")
        fresh = ServiceState(problem, wal=WriteAheadLog(tmp_path))
        with pytest.raises(WalError, match="diverged"):
            fresh.recover()

    def test_snapshot_for_wrong_problem_size_raises(self, tmp_path):
        problem = random_instance(12, 4, tightness=0.6, seed=7)
        wal = WriteAheadLog(tmp_path, snapshot_every=1)
        state = ServiceState(problem, wal=wal)
        state.assign(0)  # rolls a snapshot immediately
        wal.close()
        other = random_instance(6, 4, tightness=0.6, seed=7)
        fresh = ServiceState(other, wal=WriteAheadLog(tmp_path))
        with pytest.raises(WalError, match="devices"):
            fresh.recover()

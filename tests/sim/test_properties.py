"""Property-based invariants of the discrete-event simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.instances import topology_instance
from repro.sim.runner import simulate_assignment
from repro.solvers.greedy import feasible_start


def build_and_simulate(seed: int, rate_scale: float, duration: float):
    problem = topology_instance(
        n_routers=10,
        n_devices=6,
        n_servers=2,
        tightness=0.7,
        seed=seed,
        deadline_s=0.05,
    )
    assignment = feasible_start(problem)
    report = simulate_assignment(
        assignment,
        duration_s=duration,
        seed=seed,
        rate_scale=rate_scale,
        drain_s=60.0,  # generous drain: every task must finish
    )
    return problem, assignment, report


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    rate_scale=st.floats(0.2, 4.0),
    duration=st.floats(2.0, 8.0),
)
def test_property_conservation_and_sane_latencies(seed, rate_scale, duration):
    """Tasks are conserved and every latency statistic is physically sane."""
    _, _, report = build_and_simulate(seed, rate_scale, duration)
    # conservation: with a long drain everything created completes
    assert report.tasks_completed == report.tasks_created
    if report.tasks_completed == 0:
        return
    # latencies are positive and network <= total at every percentile
    assert report.network_latency.minimum > 0
    assert report.network_latency.mean <= report.total_latency.mean
    assert report.network_latency.p99 <= report.total_latency.p99 + 1e-12
    assert report.network_latency.p50 <= report.network_latency.p99 + 1e-12
    # utilization is a fraction of wall time
    assert all(0.0 <= u for u in report.server_utilization)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_network_latency_at_least_propagation(seed):
    """Measured per-task latency can never beat the speed of the links:
    the fastest task is still slower than the cheapest unloaded path."""
    problem, assignment, report = build_and_simulate(seed, 0.5, 4.0)
    if report.tasks_completed == 0:
        return
    # cheapest possible path delay for a zero-size packet: propagation
    # plus processing along the assigned routes only
    from repro.topology.delay import TransmissionDelayModel
    from repro.topology.routing import routing_paths

    model = TransmissionDelayModel(packet_bits=1.0)  # ~zero-size packet
    floor = np.inf
    vector = assignment.vector
    for server_index, server in enumerate(problem.servers):
        assigned = np.flatnonzero(vector == server_index)
        if assigned.size == 0:
            continue
        nodes = [problem.devices[int(i)].node_id for i in assigned]
        paths = routing_paths(problem.graph, nodes, server.node_id, model.link_weight)
        floor = min(floor, min(p.cost for p in paths.values()))
    assert report.network_latency.minimum >= floor * 0.999


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_doubled_trace_monotonicity(seed):
    """Provable load monotonicity: with deterministic service and FIFO
    queues, adding a duplicate of every task (arriving just after the
    original) can only delay work — mean latency must not decrease and
    server busy time exactly doubles."""
    from repro.sim.trace_runner import replay_trace
    from repro.workload.traces import Trace, TraceEntry, generate_trace

    problem = topology_instance(
        n_routers=10, n_devices=6, n_servers=2, tightness=0.7, seed=seed
    )
    assignment = feasible_start(problem)
    trace = generate_trace(problem.devices, horizon_s=6.0, seed=seed)
    if trace.n_entries == 0:
        return
    doubled_entries = list(trace.entries) + [
        TraceEntry(e.time_s + 1e-6, e.device_id, e.size_bits, e.compute_units)
        for e in trace.entries
    ]
    doubled_entries.sort(key=lambda e: e.time_s)
    doubled = Trace(horizon_s=trace.horizon_s + 1.0, entries=doubled_entries)

    single = replay_trace(assignment, trace, drain_s=120.0, service="deterministic")
    both = replay_trace(assignment, doubled, drain_s=120.0, service="deterministic")
    assert both.tasks_completed == 2 * single.tasks_completed
    assert both.total_latency.mean >= single.total_latency.mean * (1 - 1e-9)
    # work conservation: exactly twice the service time was performed
    single_busy = sum(single.server_utilization) * trace.horizon_s
    both_busy = sum(both.server_utilization) * doubled.horizon_s
    assert both_busy == pytest.approx(2 * single_busy, rel=1e-6)

"""Tests for metrics recording and reports."""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import MetricsRecorder
from repro.sim.task import Task


def finished_task(task_id=0, created=0.0, arrived=0.01, completed=0.02, deadline=None):
    task = Task(
        task_id=task_id,
        device_id=0,
        server_id=0,
        size_bits=1000.0,
        compute_units=1.0,
        created_at=created,
        deadline_s=deadline,
    )
    task.arrived_at = arrived
    task.completed_at = completed
    return task


class TestTask:
    def test_latencies(self):
        task = finished_task()
        assert task.network_latency == pytest.approx(0.01)
        assert task.total_latency == pytest.approx(0.02)

    def test_unfinished_latency_none(self):
        task = Task(0, 0, 0, 1000.0, 1.0, created_at=0.0)
        assert task.network_latency is None
        assert task.total_latency is None

    def test_deadline_miss(self):
        assert finished_task(deadline=0.015).missed_deadline is True
        assert finished_task(deadline=0.05).missed_deadline is False
        assert finished_task().missed_deadline is None

    def test_never_completed_counts_as_missed(self):
        task = Task(0, 0, 0, 1000.0, 1.0, created_at=0.0, deadline_s=0.01)
        assert task.missed_deadline is True


class TestMetricsRecorder:
    def test_counts(self):
        recorder = MetricsRecorder()
        for i in range(4):
            recorder.on_created(finished_task(task_id=i))
        for i in range(3):
            recorder.on_completed(finished_task(task_id=i))
        assert recorder.tasks_created == 4
        assert recorder.tasks_completed == 3

    def test_report_statistics(self):
        recorder = MetricsRecorder()
        for i, completed in enumerate((0.02, 0.04, 0.06)):
            task = finished_task(task_id=i, completed=completed)
            recorder.on_created(task)
            recorder.on_completed(task)
        report = recorder.report(duration_s=10.0, server_utilization=[0.5, 0.7])
        assert report.total_latency.mean == pytest.approx(0.04)
        assert report.mean_network_latency_ms == pytest.approx(10.0)
        assert report.server_utilization == (0.5, 0.7)

    def test_deadline_miss_rate(self):
        recorder = MetricsRecorder()
        for i, completed in enumerate((0.01, 0.03, 0.05, 0.07)):
            task = finished_task(task_id=i, completed=completed, deadline=0.04)
            recorder.on_created(task)
            recorder.on_completed(task)
        report = recorder.report(duration_s=1.0)
        assert report.deadline_miss_rate == pytest.approx(0.5)

    def test_no_deadlines_gives_none(self):
        recorder = MetricsRecorder()
        task = finished_task()
        recorder.on_created(task)
        recorder.on_completed(task)
        assert recorder.report(duration_s=1.0).deadline_miss_rate is None

    def test_empty_run_report_is_nan_not_crash(self):
        report = MetricsRecorder().report(duration_s=1.0)
        assert report.tasks_completed == 0
        assert math.isnan(report.mean_network_latency_ms)

    def test_completion_without_timestamps_rejected(self):
        recorder = MetricsRecorder()
        task = Task(0, 0, 0, 1000.0, 1.0, created_at=0.0)
        with pytest.raises(SimulationError):
            recorder.on_completed(task)

    def test_warmup_excludes_transient_tasks_from_stats(self):
        recorder = MetricsRecorder(warmup_s=1.0)
        early = finished_task(task_id=0, created=0.5, arrived=0.51, completed=0.52)
        late = finished_task(task_id=1, created=2.0, arrived=2.1, completed=2.2)
        for task in (early, late):
            recorder.on_created(task)
            recorder.on_completed(task)
        assert recorder.tasks_completed_total == 2  # conservation view
        assert recorder.tasks_completed == 1        # measured view
        report = recorder.report(duration_s=3.0)
        assert report.total_latency.count == 1
        assert report.total_latency.mean == pytest.approx(0.2)

    def test_warmup_zero_measures_everything(self):
        recorder = MetricsRecorder(warmup_s=0.0)
        task = finished_task()
        recorder.on_created(task)
        recorder.on_completed(task)
        assert recorder.tasks_completed == recorder.tasks_completed_total == 1

    def test_negative_warmup_rejected(self):
        with pytest.raises(SimulationError):
            MetricsRecorder(warmup_s=-1.0)

    def test_as_dict_keys(self):
        recorder = MetricsRecorder()
        task = finished_task()
        recorder.on_created(task)
        recorder.on_completed(task)
        payload = recorder.report(duration_s=1.0, server_utilization=[0.4]).as_dict()
        assert payload["tasks_created"] == 1
        assert payload["max_server_utilization"] == 0.4

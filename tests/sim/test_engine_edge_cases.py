"""Additional engine/event edge cases: cancellation mid-run, re-runs."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator


class TestCancellationMidRun:
    def test_callback_can_cancel_future_event(self):
        sim = Simulator()
        fired = []
        victim = sim.schedule(2.0, lambda: fired.append("victim"))
        sim.schedule(1.0, victim.cancel)
        sim.run()
        assert fired == []

    def test_cancel_already_fired_is_harmless(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        sim.run()
        event.cancel()  # no error
        assert fired == ["x"]

    def test_cancelled_events_do_not_advance_clock(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda: None)
        event.cancel()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0


class TestRunResumption:
    def test_run_can_continue_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=2.0)
        assert fired == [1]
        sim.run()
        assert fired == [1, 3]

    def test_scheduling_between_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.run()
        sim.schedule(0.5, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b"]
        assert sim.now == 1.5

    def test_empty_run_with_until_advances_clock(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_negative_until_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            Simulator().run(until=-1.0)


class TestZeroDelayOrdering:
    def test_zero_delay_fires_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule(0.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_chained_zero_delay_preserves_causality(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(0.0, lambda: fired.append("child"))

        sim.schedule(0.0, first)
        sim.schedule(0.0, lambda: fired.append("second"))
        sim.run()
        # the child was scheduled after `second` already sat in the queue
        assert fired == ["first", "second", "child"]

"""Tests for link transmitters, fabric forwarding and server queues."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.entities import EdgeServer
from repro.sim.engine import Simulator
from repro.sim.network import LinkTransmitter, NetworkFabric
from repro.sim.server import EdgeServerQueue
from repro.sim.task import Task
from repro.topology.graph import Link, NetworkGraph, NodeKind
from repro.topology.routing import Path


def make_task(task_id=0, size_bits=8000.0, compute=1.0, created=0.0):
    return Task(
        task_id=task_id,
        device_id=0,
        server_id=0,
        size_bits=size_bits,
        compute_units=compute,
        created_at=created,
    )


class TestLinkTransmitter:
    def test_single_packet_delay_components(self):
        sim = Simulator()
        link = Link(0, 1, latency_s=1e-3, bandwidth_bps=1e6, processing_s=5e-4)
        port = LinkTransmitter(sim, link)
        delivered = []
        port.send(make_task(size_bits=1e3), lambda t: delivered.append(sim.now))
        sim.run()
        # 1 ms transmission (1e3/1e6) + 1 ms latency + 0.5 ms processing
        assert delivered[0] == pytest.approx(1e-3 + 1e-3 + 5e-4)

    def test_queueing_serializes_transmissions(self):
        sim = Simulator()
        link = Link(0, 1, latency_s=0.0, bandwidth_bps=1e6)
        port = LinkTransmitter(sim, link)
        delivered = []
        for i in range(3):
            port.send(make_task(task_id=i, size_bits=1e6), lambda t: delivered.append(sim.now))
        sim.run()
        # each takes 1 s of transmission; they queue behind each other
        assert delivered == pytest.approx([1.0, 2.0, 3.0])

    def test_propagation_is_pipelined(self):
        """The port frees after the last bit; propagation overlaps the next
        packet's transmission."""
        sim = Simulator()
        link = Link(0, 1, latency_s=10.0, bandwidth_bps=1e6)
        port = LinkTransmitter(sim, link)
        delivered = []
        for i in range(2):
            port.send(make_task(task_id=i, size_bits=1e6), lambda t: delivered.append(sim.now))
        sim.run()
        # packet 1: 1 s tx + 10 s prop = 11; packet 2: waits 1 s, +1 s tx +10 = 12
        assert delivered == pytest.approx([11.0, 12.0])

    def test_busy_time_accumulates(self):
        sim = Simulator()
        link = Link(0, 1, latency_s=0.0, bandwidth_bps=1e6)
        port = LinkTransmitter(sim, link)
        port.send(make_task(size_bits=5e5), lambda t: None)
        port.send(make_task(size_bits=5e5), lambda t: None)
        sim.run()
        assert port.busy_time == pytest.approx(1.0)
        assert port.packets_sent == 2


class TestNetworkFabric:
    @pytest.fixture
    def line(self):
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.IOT_DEVICE)
        b = graph.add_node(NodeKind.ROUTER)
        c = graph.add_node(NodeKind.EDGE_SERVER)
        graph.add_link(a, b, latency_s=1e-3, bandwidth_bps=1e6)
        graph.add_link(b, c, latency_s=2e-3, bandwidth_bps=1e6)
        return graph, (a, b, c)

    def test_forwards_hop_by_hop(self, line):
        graph, (a, b, c) = line
        sim = Simulator()
        fabric = NetworkFabric(sim, graph)
        arrivals = []
        task = make_task(size_bits=1e3)
        fabric.forward(task, Path((a, b, c), 0.0), lambda t: arrivals.append(sim.now))
        sim.run()
        expected = (1e-3 + 1e-3) + (1e-3 + 2e-3)  # per hop: tx + latency
        assert arrivals[0] == pytest.approx(expected)

    def test_zero_length_path_delivers_immediately(self, line):
        graph, (a, _, _) = line
        sim = Simulator()
        fabric = NetworkFabric(sim, graph)
        arrivals = []
        fabric.forward(make_task(), Path((a,), 0.0), lambda t: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [0.0]

    def test_shared_link_creates_contention(self, line):
        graph, (a, b, c) = line
        sim = Simulator()
        fabric = NetworkFabric(sim, graph)
        arrivals = []
        for i in range(2):
            fabric.forward(
                make_task(task_id=i, size_bits=1e6),
                Path((a, b, c), 0.0),
                lambda t: arrivals.append(sim.now),
            )
        sim.run()
        # second packet waits a full transmission on the first hop
        assert arrivals[1] - arrivals[0] == pytest.approx(1.0)

    def test_total_packets_counted_per_hop(self, line):
        graph, (a, b, c) = line
        sim = Simulator()
        fabric = NetworkFabric(sim, graph)
        fabric.forward(make_task(), Path((a, b, c), 0.0), lambda t: None)
        sim.run()
        assert fabric.total_packets_sent() == 2  # one per hop


class TestEdgeServerQueue:
    def make_queue(self, sim, service="deterministic", rate=10.0, on_complete=None):
        server = EdgeServer(server_id=0, node_id=0, capacity=100.0, service_rate=rate)
        return EdgeServerQueue(
            sim, server, rng=np.random.default_rng(0), service=service,
            on_complete=on_complete,
        )

    def test_deterministic_service_time(self):
        sim = Simulator()
        done = []
        queue = self.make_queue(sim, on_complete=lambda t: done.append(sim.now))
        queue.submit(make_task(compute=5.0))
        sim.run()
        assert done[0] == pytest.approx(0.5)  # 5 units / 10 per s

    def test_fifo_order(self):
        sim = Simulator()
        finished = []
        queue = self.make_queue(sim, on_complete=lambda t: finished.append(t.task_id))
        for i in range(3):
            queue.submit(make_task(task_id=i, compute=1.0))
        sim.run()
        assert finished == [0, 1, 2]

    def test_queueing_delay_accumulates(self):
        sim = Simulator()
        done = []
        queue = self.make_queue(sim, on_complete=lambda t: done.append(sim.now))
        for i in range(3):
            queue.submit(make_task(task_id=i, compute=10.0))  # 1 s each
        sim.run()
        assert done == pytest.approx([1.0, 2.0, 3.0])

    def test_timestamps_filled(self):
        sim = Simulator()
        queue = self.make_queue(sim)
        task = make_task(compute=1.0)
        queue.submit(task)
        sim.run()
        assert task.arrived_at == 0.0
        assert task.completed_at == pytest.approx(0.1)
        assert task.total_latency == pytest.approx(0.1)

    def test_utilization(self):
        sim = Simulator()
        queue = self.make_queue(sim)
        queue.submit(make_task(compute=10.0))  # 1 s of work
        sim.run()
        assert queue.utilization(duration=2.0) == pytest.approx(0.5)

    def test_exponential_service_is_seeded(self):
        sim_a, sim_b = Simulator(), Simulator()
        done_a, done_b = [], []
        qa = self.make_queue(sim_a, service="exponential",
                             on_complete=lambda t: done_a.append(sim_a.now))
        qb = self.make_queue(sim_b, service="exponential",
                             on_complete=lambda t: done_b.append(sim_b.now))
        qa.submit(make_task())
        qb.submit(make_task())
        sim_a.run()
        sim_b.run()
        assert done_a == done_b

    def test_unknown_service_rejected(self):
        from repro.errors import ValidationError

        sim = Simulator()
        server = EdgeServer(server_id=0, node_id=0, capacity=1.0)
        with pytest.raises(ValidationError):
            EdgeServerQueue(sim, server, rng=np.random.default_rng(0), service="psychic")


class TestEdgeServerQueueLifecycle:
    def make_queue(self, sim, crash_policy="drop", **hooks):
        server = EdgeServer(server_id=0, node_id=0, capacity=100.0, service_rate=10.0)
        return EdgeServerQueue(
            sim, server, rng=np.random.default_rng(0), service="deterministic",
            crash_policy=crash_policy, **hooks,
        )

    def test_crash_drop_loses_in_service_and_queued(self):
        sim = Simulator()
        failed, done = [], []
        queue = self.make_queue(
            sim,
            on_failed=lambda t, reason: failed.append((t.task_id, reason)),
            on_complete=lambda t: done.append(t.task_id),
        )
        for i in range(3):
            queue.submit(make_task(task_id=i, compute=10.0))  # 1 s each
        sim.schedule(0.5, queue.fail)
        sim.run()
        assert done == []
        assert dict(failed) == {
            0: "crashed_in_service", 1: "crashed_queued", 2: "crashed_queued"
        }
        assert not queue.is_up

    def test_crash_requeue_serves_survivors_after_repair(self):
        sim = Simulator()
        failed, done = [], []
        queue = self.make_queue(
            sim, crash_policy="requeue",
            on_failed=lambda t, reason: failed.append(t.task_id),
            on_complete=lambda t: done.append(t.task_id),
        )
        for i in range(3):
            queue.submit(make_task(task_id=i, compute=10.0))
        sim.schedule(0.5, queue.fail)
        sim.schedule(2.0, queue.recover)
        sim.run()
        assert failed == [0]  # only the in-service victim is lost
        assert done == [1, 2]

    def test_submissions_while_down_are_rejected(self):
        sim = Simulator()
        failed = []
        queue = self.make_queue(
            sim, on_failed=lambda t, reason: failed.append(reason)
        )
        queue.fail()
        queue.submit(make_task())
        assert failed == ["server_down"]
        assert queue.tasks_rejected == 1

    def test_busy_time_refunded_on_crash(self):
        sim = Simulator()
        queue = self.make_queue(sim)
        queue.submit(make_task(compute=10.0))  # 1 s of work
        sim.schedule(0.25, queue.fail)
        sim.run()
        assert queue.busy_time == pytest.approx(0.25)

    def test_withdraw_queued_and_in_service(self):
        sim = Simulator()
        done = []
        queue = self.make_queue(sim, on_complete=lambda t: done.append(t.task_id))
        first = make_task(task_id=0, compute=10.0)
        second = make_task(task_id=1, compute=10.0)
        third = make_task(task_id=2, compute=10.0)
        for task in (first, second, third):
            queue.submit(task)
        assert queue.withdraw(second) is True  # queued: plain removal
        assert queue.withdraw(first) is True  # in service: event cancelled
        assert queue.withdraw(first) is False  # already gone
        sim.run()
        assert done == [2]

    def test_speed_factor_stretches_service(self):
        sim = Simulator()
        done = []
        queue = self.make_queue(sim, on_complete=lambda t: done.append(sim.now))
        queue.set_speed_factor(0.5)
        queue.submit(make_task(compute=10.0))
        sim.run()
        assert done[0] == pytest.approx(2.0)  # 1 s nominal, halved speed

    def test_admit_guard_drops_silently(self):
        sim = Simulator()
        done, failed = [], []
        queue = self.make_queue(
            sim,
            on_complete=lambda t: done.append(t.task_id),
            on_failed=lambda t, r: failed.append(t.task_id),
        )
        queue.bind(admit=lambda task: task.task_id != 1)
        queue.submit(make_task(task_id=0))
        stale = make_task(task_id=1)
        queue.submit(stale)
        sim.run()
        assert done == [0] and failed == []
        assert stale.arrived_at is None  # guard ran before any stamping

    def test_unknown_crash_policy_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            self.make_queue(Simulator(), crash_policy="explode")


class TestLinkDegradation:
    def test_degraded_link_slows_and_jitters(self):
        sim = Simulator()
        link = Link(0, 1, latency_s=1e-3, bandwidth_bps=1e6)
        port = LinkTransmitter(sim, link, rng=np.random.default_rng(0))
        delivered = []
        port.degrade(bandwidth_factor=0.5, extra_latency_s=2e-3)
        port.send(make_task(size_bits=1e3), lambda t: delivered.append(sim.now))
        sim.run()
        # 2 ms transmission (halved bandwidth) + 1 ms latency + 2 ms extra
        assert delivered[0] == pytest.approx(2e-3 + 1e-3 + 2e-3)
        assert port.degraded
        port.restore()
        assert not port.degraded

    def test_fabric_degrade_applies_to_lazy_transmitters(self):
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.IOT_DEVICE)
        b = graph.add_node(NodeKind.EDGE_SERVER)
        graph.add_link(a, b, latency_s=1e-3, bandwidth_bps=1e6)
        sim = Simulator()
        fabric = NetworkFabric(sim, graph, rng=np.random.default_rng(0))
        # degrade before the first packet ever creates the transmitter
        fabric.degrade_link(a, b, bandwidth_factor=0.5)
        assert fabric.degraded_links() == [(a, b), (b, a)]
        arrivals = []
        fabric.forward(
            make_task(size_bits=1e3), Path((a, b), 0.0),
            lambda t: arrivals.append(sim.now),
        )
        sim.run()
        assert arrivals[0] == pytest.approx(2e-3 + 1e-3)
        fabric.restore_link(a, b)
        assert fabric.degraded_links() == []

    def test_degrading_missing_link_rejected(self):
        from repro.errors import TopologyError

        graph = NetworkGraph()
        a = graph.add_node(NodeKind.IOT_DEVICE)
        b = graph.add_node(NodeKind.EDGE_SERVER)
        graph.add_link(a, b, latency_s=1e-3, bandwidth_bps=1e6)
        fabric = NetworkFabric(Simulator(), graph)
        with pytest.raises(TopologyError):
            fabric.degrade_link(a, 99)

"""Tests for trace replay and paired comparison."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.model.instances import topology_instance
from repro.model.solution import Assignment
from repro.sim.trace_runner import paired_comparison, replay_trace
from repro.solvers.greedy import GreedyFeasibleSolver, RandomFeasibleSolver
from repro.workload.traces import generate_trace


@pytest.fixture(scope="module")
def setup():
    problem = topology_instance(
        n_routers=20, n_devices=12, n_servers=3, tightness=0.7, seed=21,
        deadline_s=0.05,
    )
    trace = generate_trace(problem.devices, horizon_s=15.0, seed=5)
    good = GreedyFeasibleSolver().solve(problem).assignment
    bad = RandomFeasibleSolver(seed=1).solve(problem).assignment
    return problem, trace, good, bad


class TestReplayTrace:
    def test_every_trace_entry_becomes_a_task(self, setup):
        _, trace, good, _ = setup
        report = replay_trace(good, trace, drain_s=30.0)
        assert report.tasks_created == trace.n_entries
        assert report.tasks_completed == trace.n_entries

    def test_replay_is_exactly_repeatable(self, setup):
        _, trace, good, _ = setup
        a = replay_trace(good, trace)
        b = replay_trace(good, trace)
        assert a.mean_network_latency_ms == b.mean_network_latency_ms
        assert a.p99_total_latency_ms == b.p99_total_latency_ms

    def test_partial_assignment_rejected(self, setup):
        problem, trace, _, _ = setup
        with pytest.raises(ValidationError, match="partial"):
            replay_trace(Assignment(problem), trace)

    def test_unknown_device_in_trace_rejected(self, setup):
        problem, _, good, _ = setup
        from repro.workload.traces import Trace, TraceEntry

        rogue = Trace(
            horizon_s=1.0,
            entries=[TraceEntry(time_s=0.5, device_id=999, size_bits=1e3,
                                compute_units=1.0)],
        )
        with pytest.raises(ValidationError, match="unknown device"):
            replay_trace(good, rogue)

    def test_matrix_problem_rejected(self, small_problem, setup):
        _, trace, _, _ = setup
        from repro.solvers.greedy import greedy_feasible_assignment

        assignment = greedy_feasible_assignment(small_problem)
        with pytest.raises(ValidationError, match="topology"):
            replay_trace(assignment, trace)

    def test_better_assignment_measures_faster_on_same_trace(self, setup):
        _, trace, good, bad = setup
        assert good.total_delay() < bad.total_delay()
        good_report = replay_trace(good, trace)
        bad_report = replay_trace(bad, trace)
        assert good_report.mean_network_latency_ms < bad_report.mean_network_latency_ms


class TestPairedComparison:
    def test_deltas_consistent(self, setup):
        _, trace, good, bad = setup
        outcome = paired_comparison(baseline=bad, candidate=good, trace=trace)
        assert outcome["delta_mean_network_ms"] == pytest.approx(
            outcome["candidate_mean_network_ms"] - outcome["baseline_mean_network_ms"]
        )
        # good is the candidate: delta must be negative (faster)
        assert outcome["delta_mean_network_ms"] < 0

    def test_identical_assignments_zero_delta(self, setup):
        _, trace, good, _ = setup
        outcome = paired_comparison(baseline=good, candidate=good, trace=trace)
        assert outcome["delta_mean_network_ms"] == 0.0
        assert outcome["delta_p99_total_ms"] == 0.0

    def test_cross_problem_comparison_rejected(self, setup):
        problem, trace, good, _ = setup
        other = topology_instance(
            n_routers=20, n_devices=12, n_servers=3, tightness=0.7, seed=22
        )
        foreign = GreedyFeasibleSolver().solve(other).assignment
        with pytest.raises(ValidationError, match="one problem"):
            paired_comparison(good, foreign, trace)

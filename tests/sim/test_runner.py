"""Integration tests for the end-to-end simulation runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.model.solution import Assignment
from repro.sim.runner import simulate_assignment
from repro.solvers.greedy import GreedyFeasibleSolver, greedy_feasible_assignment
from repro.topology.delay import TransmissionDelayModel
from repro.workload.arrivals import PeriodicProcess


@pytest.fixture(scope="module")
def solved(request):
    from repro.model.instances import topology_instance

    problem = topology_instance(
        n_routers=20, n_devices=15, n_servers=3, tightness=0.7, seed=42,
        deadline_s=0.05,
    )
    assignment = GreedyFeasibleSolver().solve(problem).assignment
    return problem, assignment


class TestSimulateAssignment:
    def test_conservation_all_tasks_complete_after_drain(self, solved):
        _, assignment = solved
        report = simulate_assignment(assignment, duration_s=10.0, seed=1, drain_s=30.0)
        assert report.tasks_created > 0
        assert report.tasks_completed == report.tasks_created

    def test_deterministic_given_seed(self, solved):
        _, assignment = solved
        a = simulate_assignment(assignment, duration_s=5.0, seed=2)
        b = simulate_assignment(assignment, duration_s=5.0, seed=2)
        assert a.tasks_created == b.tasks_created
        assert a.mean_network_latency_ms == pytest.approx(b.mean_network_latency_ms)

    def test_different_seed_differs(self, solved):
        _, assignment = solved
        a = simulate_assignment(assignment, duration_s=5.0, seed=3)
        b = simulate_assignment(assignment, duration_s=5.0, seed=4)
        assert a.tasks_created != b.tasks_created or (
            a.mean_network_latency_ms != b.mean_network_latency_ms
        )

    def test_measured_latency_close_to_static_at_low_load(self, solved):
        """At light load the measured mean network latency approaches the
        unloaded matrix prediction (within queueing + size noise)."""
        problem, assignment = solved
        report = simulate_assignment(
            assignment, duration_s=20.0, seed=5, rate_scale=0.25
        )
        static_mean_ms = assignment.mean_delay() * 1e3
        assert report.mean_network_latency_ms == pytest.approx(
            static_mean_ms, rel=0.5
        )

    def test_higher_load_raises_latency(self, solved):
        _, assignment = solved
        light = simulate_assignment(assignment, duration_s=15.0, seed=6, rate_scale=0.5)
        heavy = simulate_assignment(assignment, duration_s=15.0, seed=6, rate_scale=20.0)
        assert heavy.p99_total_latency_ms > light.p99_total_latency_ms

    def test_rate_scale_scales_task_count(self, solved):
        _, assignment = solved
        single = simulate_assignment(assignment, duration_s=15.0, seed=7, rate_scale=1.0)
        double = simulate_assignment(assignment, duration_s=15.0, seed=7, rate_scale=2.0)
        assert double.tasks_created == pytest.approx(2 * single.tasks_created, rel=0.25)

    def test_utilization_grows_with_load(self, solved):
        _, assignment = solved
        light = simulate_assignment(assignment, duration_s=15.0, seed=8, rate_scale=0.5)
        heavy = simulate_assignment(assignment, duration_s=15.0, seed=8, rate_scale=8.0)
        assert max(heavy.server_utilization) > max(light.server_utilization)

    def test_deadline_miss_rate_present_with_deadlines(self, solved):
        _, assignment = solved
        report = simulate_assignment(assignment, duration_s=10.0, seed=9)
        assert report.deadline_miss_rate is not None
        assert 0.0 <= report.deadline_miss_rate <= 1.0

    def test_arrival_override_respected(self, solved):
        problem, assignment = solved
        # one message per device per second, deterministic
        overrides = {
            d.device_id: PeriodicProcess(1.0) for d in problem.devices
        }
        report = simulate_assignment(
            assignment, duration_s=10.0, seed=10, arrivals=overrides
        )
        assert report.tasks_created == 10 * problem.n_devices

    def test_warmup_reduces_measured_sample(self, solved):
        _, assignment = solved
        full = simulate_assignment(assignment, duration_s=10.0, seed=12)
        trimmed = simulate_assignment(assignment, duration_s=10.0, seed=12, warmup_s=5.0)
        assert trimmed.total_latency.count < full.total_latency.count
        assert trimmed.tasks_created == full.tasks_created

    def test_warmup_must_be_shorter_than_duration(self, solved):
        _, assignment = solved
        with pytest.raises(ValidationError):
            simulate_assignment(assignment, duration_s=5.0, warmup_s=5.0)

    def test_partial_assignment_rejected(self, solved):
        problem, _ = solved
        with pytest.raises(ValidationError, match="partial"):
            simulate_assignment(Assignment(problem), duration_s=1.0)

    def test_matrix_only_problem_rejected(self, small_problem):
        assignment = greedy_feasible_assignment(small_problem)
        with pytest.raises(ValidationError, match="topology"):
            simulate_assignment(assignment, duration_s=1.0)

    def test_better_assignment_measures_lower_latency(self):
        """The core validation loop: static ordering carries over to the
        measured network latency."""
        from repro.model.instances import topology_instance
        from repro.solvers.greedy import RandomFeasibleSolver
        from repro.rl.agent import TaccSolver

        problem = topology_instance(
            n_routers=25, n_devices=20, n_servers=4, tightness=0.7, seed=77
        )
        good = TaccSolver(episodes=100, seed=1).solve(problem)
        bad = RandomFeasibleSolver(seed=1).solve(problem)
        assert good.objective_value < bad.objective_value
        good_report = simulate_assignment(good.assignment, duration_s=20.0, seed=2)
        bad_report = simulate_assignment(bad.assignment, duration_s=20.0, seed=2)
        assert good_report.mean_network_latency_ms < bad_report.mean_network_latency_ms

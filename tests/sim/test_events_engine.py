"""Tests for the event queue and simulation engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError, ValidationError
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while queue:
            queue.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        queue = EventQueue()
        fired = []
        for label in "abc":
            queue.push(1.0, lambda l=label: fired.append(l))
        while queue:
            queue.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append("x"))
        queue.push(2.0, lambda: fired.append("y"))
        event.cancel()
        while queue:
            queue.pop().callback()
        assert fired == ["y"]

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(5.0, lambda: None)
        assert queue.peek_time() == 5.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_property_pop_order_is_sorted(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, lambda: None)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(times)


class TestSimulator:
    def test_clock_advances_with_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5, 1.5]
        assert sim.now == 1.5

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0

    def test_event_at_until_still_fires(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run(until=2.0)
        assert seen == [2]

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValidationError):
            sim.schedule_at(1.0, lambda: None)

    def test_runaway_loop_detected(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=1000)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

"""Tests for the tabular Q-learning solver."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.model.instances import gap_instance, random_instance
from repro.rl.qlearning import QLearningSolver
from repro.solvers.greedy import RandomFeasibleSolver


class TestQLearning:
    def test_feasible_output(self, small_problem):
        result = QLearningSolver(episodes=60, seed=1).solve(small_problem)
        assert result.feasible

    def test_feasible_on_tight_correlated(self, tight_problem):
        result = QLearningSolver(episodes=80, seed=2).solve(tight_problem)
        assert result.feasible

    def test_episode_curve_recorded(self, small_problem):
        result = QLearningSolver(episodes=40, seed=3).solve(small_problem)
        curve = result.extra["episode_costs"]
        assert len(curve) == 40

    def test_best_episode_is_min_of_curve(self, small_problem):
        result = QLearningSolver(episodes=60, seed=4).solve(small_problem)
        curve = [c for c in result.extra["episode_costs"] if not math.isnan(c)]
        assert result.objective_value == pytest.approx(min(curve))

    def test_more_episodes_never_hurt(self, small_problem):
        """Anytime property: the incumbent is monotone in budget (same seed
        means the short run's episodes are a prefix of the long run's)."""
        short = QLearningSolver(episodes=30, seed=5).solve(small_problem)
        long = QLearningSolver(episodes=150, seed=5).solve(small_problem)
        assert long.objective_value <= short.objective_value + 1e-12

    def test_beats_random_search_on_average(self):
        q_total, rand_total = 0.0, 0.0
        for seed in range(4):
            problem = random_instance(25, 4, tightness=0.8, seed=seed)
            q_total += QLearningSolver(episodes=120, seed=seed).solve(
                problem
            ).objective_value
            rand_total += RandomFeasibleSolver(seed=seed).solve(problem).objective_value
        assert q_total < rand_total

    def test_deterministic_given_seed(self, small_problem):
        a = QLearningSolver(episodes=40, seed=6).solve(small_problem)
        b = QLearningSolver(episodes=40, seed=6).solve(small_problem)
        assert a.assignment == b.assignment

    def test_q_table_size_reported(self, small_problem):
        result = QLearningSolver(episodes=40, seed=7).solve(small_problem)
        assert result.extra["q_states"] > 0

    def test_no_masking_variant_still_returns_complete(self):
        problem = gap_instance(15, 3, "c", seed=8)
        result = QLearningSolver(
            episodes=60, seed=8, mask_infeasible=False
        ).solve(problem)
        assert result.assignment.is_complete

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            QLearningSolver(episodes=0)
        with pytest.raises(ValidationError):
            QLearningSolver(alpha=0.0)
        with pytest.raises(ValidationError):
            QLearningSolver(gamma=1.5)

    @pytest.mark.parametrize("order", ["demand", "index", "random"])
    def test_device_order_variants_feasible(self, small_problem, order):
        result = QLearningSolver(
            episodes=30, seed=10, device_order=order
        ).solve(small_problem)
        assert result.feasible

    def test_unknown_device_order_rejected(self):
        with pytest.raises(ValidationError):
            QLearningSolver(device_order="alphabetical")

    def test_random_order_is_seed_stable(self, small_problem):
        a = QLearningSolver(episodes=20, seed=11, device_order="random").solve(
            small_problem
        )
        b = QLearningSolver(episodes=20, seed=11, device_order="random").solve(
            small_problem
        )
        assert a.assignment == b.assignment

    def test_dead_end_counter(self, small_problem):
        result = QLearningSolver(episodes=30, seed=9).solve(small_problem)
        assert result.extra["dead_ends"] >= 0

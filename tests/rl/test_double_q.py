"""Tests for Double Q-learning."""

from __future__ import annotations

import math

import pytest

from repro.model.instances import random_instance
from repro.rl.double_q import DoubleQLearningSolver
from repro.rl.qlearning import QLearningSolver
from repro.solvers.greedy import RandomFeasibleSolver


class TestDoubleQ:
    def test_feasible_output(self, small_problem):
        result = DoubleQLearningSolver(episodes=60, seed=1).solve(small_problem)
        assert result.feasible

    def test_feasible_on_tight(self, tight_problem):
        result = DoubleQLearningSolver(episodes=80, seed=2).solve(tight_problem)
        assert result.feasible

    def test_best_episode_is_min_of_curve(self, small_problem):
        result = DoubleQLearningSolver(episodes=60, seed=3).solve(small_problem)
        curve = [c for c in result.extra["episode_costs"] if not math.isnan(c)]
        assert result.objective_value == pytest.approx(min(curve))

    def test_beats_random_search(self):
        dq_total, rand_total = 0.0, 0.0
        for seed in range(4):
            problem = random_instance(25, 4, tightness=0.8, seed=seed)
            dq_total += DoubleQLearningSolver(episodes=120, seed=seed).solve(
                problem
            ).objective_value
            rand_total += RandomFeasibleSolver(seed=seed).solve(problem).objective_value
        assert dq_total < rand_total

    def test_comparable_to_single_q(self, small_problem):
        double = DoubleQLearningSolver(episodes=100, seed=4).solve(small_problem)
        single = QLearningSolver(episodes=100, seed=4).solve(small_problem)
        ratio = double.objective_value / single.objective_value
        assert 0.75 <= ratio <= 1.25

    def test_two_tables_populated(self, small_problem):
        result = DoubleQLearningSolver(episodes=60, seed=5).solve(small_problem)
        assert result.extra["q_states"] > 0

    def test_deterministic(self, small_problem):
        a = DoubleQLearningSolver(episodes=40, seed=6).solve(small_problem)
        b = DoubleQLearningSolver(episodes=40, seed=6).solve(small_problem)
        assert a.assignment == b.assignment

    def test_registered(self):
        from repro.solvers.registry import get_solver

        assert isinstance(get_solver("double_q", episodes=10), DoubleQLearningSolver)

"""Tests for schedules and feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.rl.env import AssignmentEnv
from repro.rl.features import feature_dim, state_features
from repro.rl.schedules import ConstantSchedule, ExponentialDecay, LinearDecay


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.3)
        assert schedule(0) == schedule(1000) == 0.3

    def test_exponential_decay_monotone_to_floor(self):
        schedule = ExponentialDecay(1.0, 0.05, rate=0.1)
        values = [schedule(step) for step in range(0, 200, 10)]
        assert values[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[-1] >= 0.05

    def test_exponential_start_below_end_rejected(self):
        with pytest.raises(ValidationError):
            ExponentialDecay(0.01, 0.5, rate=1.0)

    def test_linear_decay_endpoints(self):
        schedule = LinearDecay(1.0, 0.0, steps=10)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(5) == pytest.approx(0.5)
        assert schedule(10) == 0.0
        assert schedule(999) == 0.0

    def test_linear_zero_steps_rejected(self):
        with pytest.raises(ValidationError):
            LinearDecay(1.0, 0.0, steps=0)


class TestFeatures:
    def test_dimension(self, small_problem):
        env = AssignmentEnv(small_problem)
        env.reset()
        features = state_features(env)
        assert features.shape == (feature_dim(small_problem.n_servers),)

    def test_all_finite_and_bounded(self, small_problem):
        env = AssignmentEnv(small_problem)
        env.reset()
        while not env.done:
            features = state_features(env)
            assert np.all(np.isfinite(features))
            # delays and residual fractions are normalized
            m = small_problem.n_servers
            assert np.all(features[: 2 * m] >= 0.0)
            assert np.all(features[: 2 * m] <= 1.0)
            env.step(int(env.feasible_actions()[0]))

    def test_progress_feature_increases(self, small_problem):
        env = AssignmentEnv(small_problem)
        env.reset()
        first = state_features(env)[-1]
        env.step(int(env.feasible_actions()[0]))
        if not env.done:
            second = state_features(env)[-1]
            assert second > first

    def test_residual_features_shrink_after_assignment(self, small_problem):
        env = AssignmentEnv(small_problem)
        env.reset()
        m = small_problem.n_servers
        before = state_features(env)[m : 2 * m].sum()
        env.step(int(env.feasible_actions()[0]))
        if not env.done:
            after = state_features(env)[m : 2 * m].sum()
            assert after < before

"""Tests for the sequential-assignment MDP environment."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.model.instances import random_instance
from repro.model.problem import AssignmentProblem
from repro.rl.env import AssignmentEnv
from tests.strategies import small_problems


@pytest.fixture
def env(small_problem):
    return AssignmentEnv(small_problem)


class TestLifecycle:
    def test_reset_state(self, env):
        env.reset()
        assert env.t == 0
        assert not env.done
        assert np.all(env.vector == -1)
        assert np.allclose(env.residual, env.problem.capacity)

    def test_episode_length_equals_devices(self, env):
        env.reset()
        steps = 0
        while not env.done:
            actions = env.feasible_actions()
            env.step(int(actions[0]))
            steps += 1
        assert steps <= env.n_steps
        result = env.rollout_result()
        assert result.steps == steps

    def test_device_order_is_permutation(self, env):
        assert sorted(env.order.tolist()) == list(range(env.problem.n_devices))

    def test_default_order_decreasing_demand(self, small_problem):
        env = AssignmentEnv(small_problem)
        demands = np.mean(small_problem.demand, axis=1)[env.order]
        assert np.all(np.diff(demands) <= 1e-12)

    def test_custom_order(self, small_problem):
        order = np.arange(small_problem.n_devices)[::-1]
        env = AssignmentEnv(small_problem, device_order=order)
        assert env.current_device == small_problem.n_devices - 1

    def test_invalid_order_rejected(self, small_problem):
        with pytest.raises(ValidationError):
            AssignmentEnv(small_problem, device_order=[0] * small_problem.n_devices)

    def test_step_after_done_rejected(self, env):
        env.reset()
        while not env.done:
            env.step(int(env.feasible_actions()[0]))
        with pytest.raises(ValidationError):
            env.step(0)

    def test_rollout_result_requires_done(self, env):
        env.reset()
        with pytest.raises(ValidationError):
            env.rollout_result()


class TestMasking:
    def test_mask_excludes_full_servers(self):
        problem = AssignmentProblem(
            delay=[[1.0, 2.0], [1.0, 2.0]],
            demand=[10.0, 10.0],
            capacity=[10.0, 10.0],
        )
        env = AssignmentEnv(problem)
        env.reset()
        env.step(0)  # first device fills server 0
        assert list(env.feasible_actions()) == [1]

    def test_masked_action_raises(self):
        problem = AssignmentProblem(
            delay=[[1.0, 2.0], [1.0, 2.0]],
            demand=[10.0, 10.0],
            capacity=[10.0, 10.0],
        )
        env = AssignmentEnv(problem)
        env.reset()
        env.step(0)
        with pytest.raises(ValidationError, match="masked"):
            env.step(0)

    def test_unmasked_env_allows_overload_with_penalty(self):
        problem = AssignmentProblem(
            delay=[[1e-3, 2e-3], [1e-3, 2e-3]],
            demand=[10.0, 10.0],
            capacity=[10.0, 10.0],
        )
        env = AssignmentEnv(problem, mask_infeasible=False, overload_penalty=10.0)
        env.reset()
        _, reward_ok, _, _ = env.step(0)
        _, reward_overload, _, _ = env.step(0)  # second device overloads server 0
        assert reward_overload < reward_ok - 1.0

    def test_dead_end_terminates_with_penalty(self):
        # first device fits on both; once it takes server 0's last slot,
        # the bigger second device fits nowhere -> dead end
        problem = AssignmentProblem(
            delay=[[1.0, 1.0], [1.0, 1.0]],
            demand=[[5.0, 5.0], [8.0, 8.0]],
            capacity=[8.0, 5.0],
        )
        env = AssignmentEnv(problem, device_order=[0, 1])
        env.reset()
        _, reward, done, info = env.step(0)
        assert done
        assert info.get("dead_end")
        assert reward <= AssignmentEnv.DEAD_END_REWARD
        result = env.rollout_result()
        assert result.dead_end
        assert not result.feasible


class TestRewards:
    def test_rewards_are_negative_normalized_delay(self, small_problem):
        env = AssignmentEnv(small_problem)
        env.reset()
        device = env.current_device
        actions = env.feasible_actions()
        action = int(actions[0])
        _, reward, _, _ = env.step(action)
        expected = -small_problem.normalized_delay()[device, action]
        assert reward == pytest.approx(expected)

    def test_episode_return_orders_like_total_delay(self, small_problem):
        """Lower total delay <-> higher return for complete episodes."""
        def roll(policy):
            env = AssignmentEnv(small_problem)
            env.reset()
            total_reward = 0.0
            while not env.done:
                actions = env.feasible_actions()
                total_reward += env.step(policy(env, actions))[1]
            return total_reward, env.rollout_result().total_delay

        greedy_return, greedy_delay = roll(
            lambda env, acts: int(acts[np.argmin(env.problem.delay[env.current_device, acts])])
        )
        worst_return, worst_delay = roll(
            lambda env, acts: int(acts[np.argmax(env.problem.delay[env.current_device, acts])])
        )
        assert greedy_delay < worst_delay
        assert greedy_return > worst_return


class TestStateKey:
    def test_key_is_hashable_and_stable(self, env):
        env.reset()
        key = env.state_key()
        assert hash(key) == hash(env.state_key())

    def test_key_changes_with_progress(self, env):
        env.reset()
        first = env.state_key()
        env.step(int(env.feasible_actions()[0]))
        assert env.state_key() != first

    def test_bucket_count_bounds_key_values(self, small_problem):
        env = AssignmentEnv(small_problem, load_buckets=3)
        env.reset()
        while not env.done:
            _, buckets = env.state_key()
            assert all(0 <= b <= 2 for b in buckets)
            env.step(int(env.feasible_actions()[0]))


@settings(max_examples=25, deadline=None)
@given(problem=small_problems(), seed=st.integers(0, 1000))
def test_property_masked_episodes_never_overload(problem, seed):
    """Any action sequence drawn from feasible_actions yields loads within
    capacity — the masking guarantee."""
    rng = np.random.default_rng(seed)
    env = AssignmentEnv(problem)
    env.reset()
    while not env.done:
        actions = env.feasible_actions()
        env.step(int(actions[rng.integers(actions.size)]))
    result = env.rollout_result()
    if not result.dead_end:
        assert result.feasible
    # even on dead ends, the partial loads respect capacity
    loads = np.zeros(problem.n_servers)
    placed = result.vector >= 0
    np.add.at(
        loads,
        result.vector[placed],
        problem.demand[np.flatnonzero(placed), result.vector[placed]],
    )
    assert np.all(loads <= problem.capacity + 1e-9)

"""Tests for the bandit and REINFORCE solvers."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.model.instances import random_instance
from repro.rl.bandit import BanditSolver
from repro.rl.reinforce import ReinforceSolver
from repro.solvers.greedy import RandomFeasibleSolver


class TestBandit:
    def test_feasible_output(self, small_problem):
        result = BanditSolver(rounds=60, seed=1).solve(small_problem)
        assert result.feasible

    def test_feasible_on_tight(self, tight_problem):
        result = BanditSolver(rounds=80, seed=2).solve(tight_problem)
        assert result.feasible

    def test_beats_random_search(self):
        bandit_total, rand_total = 0.0, 0.0
        for seed in range(4):
            problem = random_instance(25, 4, tightness=0.8, seed=seed)
            bandit_total += BanditSolver(rounds=100, seed=seed).solve(
                problem
            ).objective_value
            rand_total += RandomFeasibleSolver(seed=seed).solve(problem).objective_value
        assert bandit_total < rand_total

    def test_episode_costs_recorded(self, small_problem):
        result = BanditSolver(rounds=30, seed=3).solve(small_problem)
        assert len(result.extra["episode_costs"]) == 30

    def test_deterministic(self, small_problem):
        a = BanditSolver(rounds=40, seed=4).solve(small_problem)
        b = BanditSolver(rounds=40, seed=4).solve(small_problem)
        assert a.assignment == b.assignment

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            BanditSolver(rounds=0)
        with pytest.raises(ValidationError):
            BanditSolver(exploration=-1.0)


class TestReinforce:
    def test_feasible_output(self, small_problem):
        result = ReinforceSolver(episodes=50, seed=1).solve(small_problem)
        assert result.feasible

    def test_feasible_on_tight(self, tight_problem):
        result = ReinforceSolver(episodes=60, seed=2).solve(tight_problem)
        assert result.feasible

    def test_episode_costs_recorded(self, small_problem):
        result = ReinforceSolver(episodes=25, seed=3).solve(small_problem)
        assert len(result.extra["episode_costs"]) == 25

    def test_best_episode_is_min_of_curve(self, small_problem):
        result = ReinforceSolver(episodes=60, seed=4).solve(small_problem)
        curve = [c for c in result.extra["episode_costs"] if not math.isnan(c)]
        assert result.objective_value == pytest.approx(min(curve))

    def test_learning_improves_over_random_policy(self):
        """Average episode cost in the last quarter of training should be
        no worse than the first quarter (the policy is learning, or at
        minimum not collapsing)."""
        problem = random_instance(20, 4, tightness=0.7, seed=5)
        result = ReinforceSolver(episodes=200, seed=5).solve(problem)
        curve = [c for c in result.extra["episode_costs"] if not math.isnan(c)]
        quarter = len(curve) // 4
        assert quarter > 2
        early = sum(curve[:quarter]) / quarter
        late = sum(curve[-quarter:]) / quarter
        assert late <= early * 1.05

    def test_deterministic(self, small_problem):
        a = ReinforceSolver(episodes=30, seed=6).solve(small_problem)
        b = ReinforceSolver(episodes=30, seed=6).solve(small_problem)
        assert a.assignment == b.assignment

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            ReinforceSolver(episodes=0)
        with pytest.raises(ValidationError):
            ReinforceSolver(learning_rate=0.0)
        with pytest.raises(ValidationError):
            ReinforceSolver(baseline_decay=2.0)

"""Tests for TaccSolver — the headline algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.instances import gap_instance, random_instance, topology_instance
from repro.rl.agent import TaccSolver, polish_assignment
from repro.rl.qlearning import QLearningSolver
from repro.solvers.exact import BranchAndBoundSolver
from repro.solvers.greedy import GreedyFeasibleSolver, greedy_feasible_assignment


class TestTaccSolver:
    def test_feasible_output(self, small_problem):
        result = TaccSolver(episodes=60, seed=1).solve(small_problem)
        assert result.feasible

    def test_feasible_on_tight_correlated(self, tight_problem):
        result = TaccSolver(episodes=80, seed=2).solve(tight_problem)
        assert result.feasible
        assert result.assignment.overloaded_servers() == []

    def test_near_optimal_on_small_instances(self):
        """The paper's claim: near-optimal assignments.  Demand <= 5% mean
        gap to branch-and-bound across seeds."""
        gaps = []
        for seed in range(4):
            problem = random_instance(15, 4, tightness=0.8, seed=seed)
            optimum = BranchAndBoundSolver().solve(problem).objective_value
            tacc = TaccSolver(episodes=150, seed=seed).solve(problem).objective_value
            gaps.append(tacc / optimum - 1.0)
        assert np.mean(gaps) <= 0.05

    def test_outperforms_greedy_baseline(self):
        """The paper's other claim: beats the state-of-the-art heuristic."""
        tacc_total, greedy_total = 0.0, 0.0
        for seed in range(4):
            problem = gap_instance(30, 5, "c", seed=seed)
            tacc_total += TaccSolver(episodes=150, seed=seed).solve(problem).objective_value
            greedy_total += GreedyFeasibleSolver().solve(problem).objective_value
        assert tacc_total < greedy_total

    def test_at_least_matches_plain_qlearning(self):
        tacc_total, plain_total = 0.0, 0.0
        for seed in range(4):
            problem = random_instance(30, 5, tightness=0.85, seed=seed)
            tacc_total += TaccSolver(episodes=100, seed=seed).solve(problem).objective_value
            plain_total += QLearningSolver(episodes=100, seed=seed).solve(
                problem
            ).objective_value
        assert tacc_total <= plain_total + 1e-9

    def test_works_on_topology_instance(self, topo_problem):
        result = TaccSolver(episodes=80, seed=3).solve(topo_problem)
        assert result.feasible

    def test_polish_flag_changes_nothing_when_already_optimal(self):
        problem = random_instance(8, 3, tightness=0.6, seed=4)
        polished = TaccSolver(episodes=200, seed=4, polish=True).solve(problem)
        optimum = BranchAndBoundSolver().solve(problem).objective_value
        assert polished.objective_value <= optimum * 1.02

    def test_polish_never_hurts(self, small_problem):
        on = TaccSolver(episodes=50, seed=5, polish=True).solve(small_problem)
        off = TaccSolver(episodes=50, seed=5, polish=False).solve(small_problem)
        assert on.objective_value <= off.objective_value + 1e-12

    def test_deterministic_given_seed(self, small_problem):
        a = TaccSolver(episodes=40, seed=6).solve(small_problem)
        b = TaccSolver(episodes=40, seed=6).solve(small_problem)
        assert a.assignment == b.assignment

    def test_registry_name(self):
        assert TaccSolver.name == "tacc"


class TestPolishAssignment:
    def test_improves_or_preserves(self, small_problem):
        start = greedy_feasible_assignment(small_problem)
        before = start.total_delay()
        polished = polish_assignment(small_problem, start.vector)
        after = float(
            np.sum(
                small_problem.delay[np.arange(small_problem.n_devices), polished]
            )
        )
        assert after <= before + 1e-12

    def test_preserves_feasibility(self, tight_problem):
        from repro.model.solution import Assignment
        from repro.solvers.greedy import feasible_start

        start = feasible_start(tight_problem)
        polished = polish_assignment(tight_problem, start.vector)
        assert Assignment(tight_problem, polished).is_feasible()

    def test_does_not_mutate_input(self, small_problem):
        start = greedy_feasible_assignment(small_problem).vector
        original = start.copy()
        polish_assignment(small_problem, start)
        assert np.all(start == original)

    def test_zero_passes_is_identity(self, small_problem):
        start = greedy_feasible_assignment(small_problem).vector
        polished = polish_assignment(small_problem, start, max_passes=0)
        assert np.all(polished == start)

"""Tests for the on-policy SARSA solver."""

from __future__ import annotations

import math

import pytest

from repro.model.instances import random_instance
from repro.rl.sarsa import SarsaSolver
from repro.solvers.greedy import RandomFeasibleSolver


class TestSarsa:
    def test_feasible_output(self, small_problem):
        result = SarsaSolver(episodes=60, seed=1).solve(small_problem)
        assert result.feasible

    def test_feasible_on_tight(self, tight_problem):
        result = SarsaSolver(episodes=80, seed=2).solve(tight_problem)
        assert result.feasible

    def test_best_episode_is_min_of_curve(self, small_problem):
        result = SarsaSolver(episodes=60, seed=3).solve(small_problem)
        curve = [c for c in result.extra["episode_costs"] if not math.isnan(c)]
        assert result.objective_value == pytest.approx(min(curve))

    def test_beats_random_search(self):
        sarsa_total, rand_total = 0.0, 0.0
        for seed in range(4):
            problem = random_instance(25, 4, tightness=0.8, seed=seed)
            sarsa_total += SarsaSolver(episodes=120, seed=seed).solve(
                problem
            ).objective_value
            rand_total += RandomFeasibleSolver(seed=seed).solve(problem).objective_value
        assert sarsa_total < rand_total

    def test_deterministic(self, small_problem):
        a = SarsaSolver(episodes=40, seed=4).solve(small_problem)
        b = SarsaSolver(episodes=40, seed=4).solve(small_problem)
        assert a.assignment == b.assignment

    def test_registered(self):
        from repro.solvers.registry import get_solver

        solver = get_solver("sarsa", episodes=10)
        assert isinstance(solver, SarsaSolver)

    def test_q_table_populated(self, small_problem):
        result = SarsaSolver(episodes=40, seed=5).solve(small_problem)
        assert result.extra["q_states"] > 0

    def test_comparable_to_qlearning(self, small_problem):
        """On-policy vs off-policy should land in the same quality band on
        easy instances (within 25% of each other)."""
        from repro.rl.qlearning import QLearningSolver

        sarsa = SarsaSolver(episodes=100, seed=6).solve(small_problem)
        qlearn = QLearningSolver(episodes=100, seed=6).solve(small_problem)
        ratio = sarsa.objective_value / qlearn.objective_value
        assert 0.75 <= ratio <= 1.25

"""Deeper structural checks of the deterministic topology families."""

from __future__ import annotations

import pytest

from repro.topology.generators import attach_iot_devices, edge_hierarchy, fat_tree, grid
from repro.topology.graph import CORE_REGION, NodeKind
from repro.topology.placement import place_edge_servers
from repro.topology.routing import dijkstra, shortest_path


def hops(link) -> float:
    return 1.0


class TestFatTreeStructure:
    def test_tier_counts(self):
        k = 4
        graph = fat_tree(k)
        half = k // 2
        # tiers by y-position: core 0.95, agg 0.6, edge 0.25
        core = [n for n in graph.nodes() if n.position[1] == pytest.approx(0.95)]
        agg = [n for n in graph.nodes() if n.position[1] == pytest.approx(0.6)]
        edge = [n for n in graph.nodes() if n.position[1] == pytest.approx(0.25)]
        assert len(core) == half * half
        assert len(agg) == k * half
        assert len(edge) == k * half

    def test_edge_switch_degrees(self):
        k = 4
        graph = fat_tree(k)
        edge = [n for n in graph.nodes() if n.position[1] == pytest.approx(0.25)]
        for node in edge:
            # each edge switch uplinks to all k/2 aggs in its pod
            assert graph.degree(node.node_id) == k // 2

    def test_any_two_edge_switches_within_four_hops(self):
        """The fat tree's defining property: edge→agg→core→agg→edge."""
        graph = fat_tree(4)
        edge = [
            n.node_id for n in graph.nodes() if n.position[1] == pytest.approx(0.25)
        ]
        source = edge[0]
        distance, _ = dijkstra(graph, source, hops)
        for target in edge[1:]:
            assert distance[target] <= 4

    def test_larger_k(self):
        graph = fat_tree(6)
        assert graph.n_nodes == 9 + 36  # (k/2)^2 core + k*k pod switches
        assert graph.is_connected()


class TestHierarchyStructure:
    def test_leaf_count(self):
        graph = edge_hierarchy(depth=4, fanout=2)
        leaves = [n for n in graph.nodes() if graph.degree(n.node_id) == 1]
        assert len(leaves) == 2**3

    def test_root_to_leaf_distance_is_depth(self):
        depth, fanout = 4, 3
        graph = edge_hierarchy(depth=depth, fanout=fanout)
        root = 0
        distance, _ = dijkstra(graph, root, hops)
        assert max(distance.values()) == depth - 1

    def test_sibling_leaves_route_through_parent(self):
        """Two leaves under one parent are 2 hops apart; across subtrees
        they must climb to a shared ancestor."""
        graph = edge_hierarchy(depth=3, fanout=2)
        # nodes: 0 root; 1,2 mid; 3,4 under 1; 5,6 under 2
        same = shortest_path(graph, 3, 4, hops)
        cross = shortest_path(graph, 3, 5, hops)
        assert same.hops == 2
        assert cross.hops == 4

    def test_single_level_is_one_node(self):
        graph = edge_hierarchy(depth=1, fanout=5)
        assert graph.n_nodes == 1


class TestGridStructure:
    def test_corner_edge_center_degrees(self):
        graph = grid(3, 3)
        degrees = sorted(graph.degree(n) for n in graph.node_ids())
        assert degrees.count(2) == 4  # corners
        assert degrees.count(3) == 4  # edges
        assert degrees.count(4) == 1  # center

    def test_manhattan_distance_in_hops(self):
        graph = grid(4, 4)
        ids = graph.node_ids()
        # node layout is row-major
        path = shortest_path(graph, ids[0], ids[15], hops)
        assert path.hops == 6  # (3 rows + 3 cols)

    def test_rectangular(self):
        graph = grid(2, 5)
        assert graph.n_nodes == 10
        assert graph.n_links == 2 * 4 + 5 * 1


class TestRegionLabels:
    def test_hierarchy_subtrees_are_regions(self):
        graph = edge_hierarchy(depth=3, fanout=3)
        root = 0
        assert graph.region_of(root) == CORE_REGION
        # one region per top-level subtree (plus the core label),
        # and every deeper router inherits its subtree's label
        assert graph.regions(NodeKind.ROUTER) == [CORE_REGION, 0, 1, 2]
        for child in graph.neighbors(root):
            region = graph.region_of(child)
            for grandchild in graph.neighbors(child):
                if grandchild != root:
                    assert graph.region_of(grandchild) == region

    def test_fat_tree_pods_are_regions(self):
        k = 4
        graph = fat_tree(k)
        assert graph.regions(NodeKind.ROUTER) == [CORE_REGION] + list(range(k))
        core = [n for n in graph.nodes(NodeKind.ROUTER) if n.region == CORE_REGION]
        assert len(core) == (k // 2) ** 2

    def test_devices_inherit_gateway_region(self):
        graph = edge_hierarchy(depth=3, fanout=2)
        attach_iot_devices(graph, 20, seed=3)
        for node in graph.nodes(NodeKind.IOT_DEVICE):
            gateways = list(graph.neighbors(node.node_id))
            assert len(gateways) == 1
            assert node.region == graph.region_of(gateways[0])

    def test_servers_inherit_host_region(self):
        graph = fat_tree(4)
        place_edge_servers(graph, 4, strategy="spread", seed=1)
        for node in graph.nodes(NodeKind.EDGE_SERVER):
            hosts = list(graph.neighbors(node.node_id))
            assert len(hosts) == 1
            assert node.region == graph.region_of(hosts[0])

"""Tests for the probe-based delay estimator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.model.instances import random_instance
from repro.topology.measurement import ProbeDelayEstimator, noisy_problem


class TestProbeDelayEstimator:
    def test_zero_jitter_is_exact(self, small_problem):
        estimator = ProbeDelayEstimator(probes=1, jitter_sigma=0.0)
        estimate = estimator.estimate(small_problem.delay, seed=1)
        assert np.array_equal(estimate, small_problem.delay)

    def test_estimates_positive(self, small_problem):
        estimator = ProbeDelayEstimator(probes=3, jitter_sigma=0.8)
        estimate = estimator.estimate(small_problem.delay, seed=2)
        assert np.all(estimate > 0)

    def test_unbiased_in_expectation(self):
        """Averaging many probes converges to the truth (mu correction)."""
        truth = np.full((4, 3), 10e-3)
        estimator = ProbeDelayEstimator(probes=20_000, jitter_sigma=0.5)
        estimate = estimator.estimate(truth, seed=3)
        assert np.allclose(estimate, truth, rtol=0.03)

    def test_more_probes_reduce_error(self, small_problem):
        few = ProbeDelayEstimator(probes=1, jitter_sigma=0.5)
        many = ProbeDelayEstimator(probes=25, jitter_sigma=0.5)
        errors_few = np.mean(
            [few.relative_error(small_problem.delay, seed=s) for s in range(20)]
        )
        errors_many = np.mean(
            [many.relative_error(small_problem.delay, seed=s) for s in range(20)]
        )
        assert errors_many < errors_few

    def test_more_jitter_increases_error(self, small_problem):
        calm = ProbeDelayEstimator(probes=3, jitter_sigma=0.1)
        wild = ProbeDelayEstimator(probes=3, jitter_sigma=1.0)
        errors_calm = np.mean(
            [calm.relative_error(small_problem.delay, seed=s) for s in range(20)]
        )
        errors_wild = np.mean(
            [wild.relative_error(small_problem.delay, seed=s) for s in range(20)]
        )
        assert errors_wild > errors_calm

    def test_deterministic_under_seed(self, small_problem):
        estimator = ProbeDelayEstimator(probes=3, jitter_sigma=0.4)
        a = estimator.estimate(small_problem.delay, seed=7)
        b = estimator.estimate(small_problem.delay, seed=7)
        assert np.array_equal(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            ProbeDelayEstimator(probes=0)
        with pytest.raises(ValidationError):
            ProbeDelayEstimator(jitter_sigma=-0.1)

    @settings(max_examples=20, deadline=None)
    @given(sigma=st.floats(0.0, 1.5), probes=st.integers(1, 10),
           seed=st.integers(0, 10_000))
    def test_property_shape_and_positivity(self, sigma, probes, seed):
        problem = random_instance(6, 3, seed=seed % 100)
        estimator = ProbeDelayEstimator(probes=probes, jitter_sigma=sigma)
        estimate = estimator.estimate(problem.delay, seed=seed)
        assert estimate.shape == problem.delay.shape
        assert np.all(estimate > 0)
        assert np.all(np.isfinite(estimate))


class TestNoisyProblem:
    def test_only_delays_change(self, small_problem):
        noisy = noisy_problem(small_problem, probes=2, jitter_sigma=0.5, seed=1)
        assert not np.allclose(noisy.delay, small_problem.delay)
        assert np.array_equal(noisy.demand, small_problem.demand)
        assert np.array_equal(noisy.capacity, small_problem.capacity)

    def test_graph_backing_dropped(self, topo_problem):
        noisy = noisy_problem(topo_problem, seed=2)
        assert noisy.graph is None
        assert noisy.devices is None

    def test_solutions_transfer_between_views(self, small_problem):
        """A vector feasible on the estimate is feasible on the truth
        (demands/capacities are shared)."""
        from repro.model.solution import Assignment
        from repro.solvers.greedy import feasible_start

        noisy = noisy_problem(small_problem, probes=1, jitter_sigma=0.8, seed=3)
        solved_on_noisy = feasible_start(noisy)
        on_truth = Assignment(small_problem, solved_on_noisy.vector)
        assert on_truth.is_feasible()

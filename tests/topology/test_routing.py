"""Tests for shortest-path routing, including a networkx oracle."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.topology.generators import random_geometric, waxman
from repro.topology.graph import NetworkGraph, NodeKind
from repro.topology.routing import all_pairs_delay, dijkstra, routing_paths, shortest_path


def line_graph(weights):
    """A path graph 0-1-2-... with given link latencies."""
    graph = NetworkGraph()
    nodes = [graph.add_node(NodeKind.ROUTER, (i, 0.0)) for i in range(len(weights) + 1)]
    for i, w in enumerate(weights):
        graph.add_link(nodes[i], nodes[i + 1], latency_s=w, bandwidth_bps=1e9)
    return graph, nodes


def latency(link):
    return link.latency_s


class TestDijkstra:
    def test_line_distances(self):
        graph, nodes = line_graph([1.0, 2.0, 3.0])
        distance, _ = dijkstra(graph, nodes[0], latency)
        assert distance[nodes[0]] == 0.0
        assert distance[nodes[1]] == 1.0
        assert distance[nodes[3]] == 6.0

    def test_picks_cheaper_of_two_routes(self):
        graph = NetworkGraph()
        a, b, c = (graph.add_node(NodeKind.ROUTER) for _ in range(3))
        graph.add_link(a, c, latency_s=10.0, bandwidth_bps=1e9)
        graph.add_link(a, b, latency_s=1.0, bandwidth_bps=1e9)
        graph.add_link(b, c, latency_s=1.0, bandwidth_bps=1e9)
        distance, predecessor = dijkstra(graph, a, latency)
        assert distance[c] == 2.0
        assert predecessor[c] == b

    def test_unreachable_nodes_absent(self):
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.ROUTER)
        b = graph.add_node(NodeKind.ROUTER)
        distance, _ = dijkstra(graph, a, latency)
        assert b not in distance

    def test_source_not_in_predecessor(self):
        graph, nodes = line_graph([1.0])
        _, predecessor = dijkstra(graph, nodes[0], latency)
        assert nodes[0] not in predecessor


class TestShortestPath:
    def test_path_nodes_in_order(self):
        graph, nodes = line_graph([1.0, 1.0])
        path = shortest_path(graph, nodes[0], nodes[2], latency)
        assert path.nodes == (nodes[0], nodes[1], nodes[2])
        assert path.cost == 2.0
        assert path.hops == 2

    def test_path_to_self(self):
        graph, nodes = line_graph([1.0])
        path = shortest_path(graph, nodes[0], nodes[0], latency)
        assert path.nodes == (nodes[0],)
        assert path.cost == 0.0

    def test_disconnected_raises_routing_error(self):
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.ROUTER)
        b = graph.add_node(NodeKind.ROUTER)
        with pytest.raises(RoutingError) as excinfo:
            shortest_path(graph, a, b, latency)
        assert excinfo.value.source == a
        assert excinfo.value.target == b

    def test_links_resolution(self):
        graph, nodes = line_graph([1.0, 2.0])
        path = shortest_path(graph, nodes[0], nodes[2], latency)
        links = path.links(graph)
        assert [l.latency_s for l in links] == [1.0, 2.0]


class TestAllPairsDelay:
    def test_matches_pairwise(self):
        graph = random_geometric(15, seed=3)
        ids = graph.node_ids()
        sources, targets = ids[:5], ids[5:9]
        matrix = all_pairs_delay(graph, sources, targets, latency)
        for i, s in enumerate(sources):
            for j, t in enumerate(targets):
                assert matrix[i, j] == pytest.approx(
                    shortest_path(graph, s, t, latency).cost
                )

    def test_symmetric_on_undirected(self):
        graph = random_geometric(12, seed=4)
        ids = graph.node_ids()[:6]
        forward = all_pairs_delay(graph, ids, ids, latency)
        assert np.allclose(forward, forward.T)

    def test_zero_diagonal(self):
        graph = random_geometric(10, seed=5)
        ids = graph.node_ids()[:5]
        matrix = all_pairs_delay(graph, ids, ids, latency)
        assert np.allclose(np.diag(matrix), 0.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_matches_networkx(self, seed):
        """Independent oracle: our Dijkstra equals networkx's."""
        graph = waxman(14, seed=seed)
        oracle = nx.Graph()
        for link in graph.links():
            oracle.add_edge(link.u, link.v, weight=link.latency_s)
        ids = graph.node_ids()
        ours, _ = dijkstra(graph, ids[0], latency)
        theirs = nx.single_source_dijkstra_path_length(oracle, ids[0])
        assert set(ours) == set(theirs)
        for node in theirs:
            assert ours[node] == pytest.approx(theirs[node])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_triangle_inequality(self, seed):
        """d(a, c) <= d(a, b) + d(b, c) for shortest-path metrics."""
        graph = random_geometric(12, seed=seed)
        ids = graph.node_ids()
        matrix = all_pairs_delay(graph, ids, ids, latency)
        n = len(ids)
        for a in range(0, n, 3):
            for b in range(1, n, 4):
                for c in range(2, n, 5):
                    assert matrix[a, c] <= matrix[a, b] + matrix[b, c] + 1e-12


class TestRoutingPaths:
    def test_all_paths_end_at_target(self):
        graph = random_geometric(15, seed=6)
        ids = graph.node_ids()
        target = ids[-1]
        paths = routing_paths(graph, ids[:5], target, latency)
        for source in ids[:5]:
            assert paths[source].nodes[0] == source
            assert paths[source].nodes[-1] == target

    def test_costs_match_shortest_path(self):
        graph = random_geometric(15, seed=7)
        ids = graph.node_ids()
        target = ids[-1]
        paths = routing_paths(graph, ids[:4], target, latency)
        for source in ids[:4]:
            assert paths[source].cost == pytest.approx(
                shortest_path(graph, source, target, latency).cost
            )

    def test_consecutive_nodes_are_linked(self):
        graph = random_geometric(15, seed=8)
        ids = graph.node_ids()
        paths = routing_paths(graph, ids[:5], ids[-1], latency)
        for path in paths.values():
            for u, v in zip(path.nodes, path.nodes[1:]):
                assert graph.has_link(u, v)

"""Tests for topology visualization helpers."""

from __future__ import annotations

import pytest

from repro.model.instances import topology_instance
from repro.topology.generators import barabasi_albert, grid, random_geometric
from repro.topology.graph import NodeKind
from repro.topology.visualize import (
    degree_histogram,
    path_length_profile,
    summarize_topology,
    to_graphviz,
)


class TestSummarize:
    def test_mentions_every_present_kind(self, topo_problem):
        text = summarize_topology(topo_problem.graph)
        assert "router" in text
        assert "edge_server" in text
        assert "iot_device" in text

    def test_includes_link_statistics(self):
        graph = random_geometric(15, seed=1)
        text = summarize_topology(graph)
        assert "latency (ms)" in text
        assert "bandwidth (Mbps)" in text

    def test_empty_kind_omitted(self):
        graph = random_geometric(10, seed=2)
        text = summarize_topology(graph)
        assert "iot_device" not in text


class TestGraphviz:
    def test_dot_structure(self):
        graph = grid(2, 2)
        dot = to_graphviz(graph)
        assert dot.startswith("graph topology {")
        assert dot.rstrip().endswith("}")
        assert dot.count(" -- ") == graph.n_links
        for node in graph.nodes():
            assert f"n{node.node_id} [" in dot

    def test_positions_pinned(self):
        graph = grid(2, 2)
        dot = to_graphviz(graph)
        assert 'pos="' in dot
        assert '!"' in dot

    def test_writes_file(self, tmp_path):
        graph = grid(2, 3)
        path = tmp_path / "topo.dot"
        dot = to_graphviz(graph, path)
        assert path.read_text() == dot

    def test_kinds_styled_differently(self, topo_problem):
        dot = to_graphviz(topo_problem.graph)
        assert "lightblue" in dot     # routers
        assert "lightgreen" in dot    # servers
        assert "shape=point" in dot   # devices


class TestDegreeHistogram:
    def test_counts_sum_to_nodes(self):
        graph = random_geometric(20, seed=3)
        histogram = degree_histogram(graph)
        assert sum(histogram.values()) == graph.n_nodes

    def test_kind_filter(self, topo_problem):
        histogram = degree_histogram(topo_problem.graph, NodeKind.IOT_DEVICE)
        # every device has exactly one access link
        assert set(histogram) == {1}

    def test_barabasi_heavy_tail_visible(self):
        graph = barabasi_albert(80, attach=2, seed=4)
        histogram = degree_histogram(graph)
        assert max(histogram) >= 8  # hubs exist


class TestPathLengthProfile:
    def test_profile_keys_and_sanity(self, topo_problem):
        profile = path_length_profile(topo_problem.graph)
        assert set(profile) == {"mean_hops", "min_hops", "max_hops", "p95_hops"}
        assert 1 <= profile["min_hops"] <= profile["mean_hops"] <= profile["max_hops"]

    def test_empty_without_devices(self):
        graph = random_geometric(10, seed=5)
        assert path_length_profile(graph) == {}

    def test_hierarchy_deeper_than_geometric(self):
        geo = topology_instance(
            family="random_geometric", n_routers=40, n_devices=20, n_servers=3, seed=6
        )
        tree = topology_instance(
            family="edge_hierarchy", n_routers=40, n_devices=20, n_servers=3, seed=6
        )
        assert (
            path_length_profile(tree.graph)["max_hops"]
            >= path_length_profile(geo.graph)["min_hops"]
        )

"""Tests for the delay models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.topology.delay import (
    EuclideanDelayModel,
    HopCountDelayModel,
    TransmissionDelayModel,
    delay_matrix,
    path_delay,
)
from repro.topology.generators import random_geometric
from repro.topology.graph import Link, NetworkGraph, NodeKind
from repro.topology.routing import shortest_path


@pytest.fixture
def two_hop():
    """device - router - server, with known link attributes."""
    graph = NetworkGraph()
    device = graph.add_node(NodeKind.IOT_DEVICE, (0.0, 0.0))
    router = graph.add_node(NodeKind.ROUTER, (0.5, 0.0))
    server = graph.add_node(NodeKind.EDGE_SERVER, (1.0, 0.0))
    graph.add_link(device, router, latency_s=2e-3, bandwidth_bps=1e6, processing_s=1e-4)
    graph.add_link(router, server, latency_s=1e-3, bandwidth_bps=1e9, processing_s=5e-5)
    return graph, device, server


class TestTransmissionDelayModel:
    def test_link_weight_components(self):
        model = TransmissionDelayModel(packet_bits=1e6)
        link = Link(0, 1, latency_s=1e-3, bandwidth_bps=1e9, processing_s=1e-4)
        # 1 ms propagation + 1 ms transmission + 0.1 ms processing
        assert model.link_weight(link) == pytest.approx(2.1e-3)

    def test_matrix_is_routed_path_delay(self, two_hop):
        graph, device, server = two_hop
        model = TransmissionDelayModel(packet_bits=8000)
        matrix = model.matrix(graph, [device], [server])
        expected = shortest_path(graph, device, server, model.link_weight).cost
        assert matrix[0, 0] == pytest.approx(expected)

    def test_bigger_packets_cost_more(self, two_hop):
        graph, device, server = two_hop
        small = TransmissionDelayModel(packet_bits=1000).matrix(graph, [device], [server])
        large = TransmissionDelayModel(packet_bits=100_000).matrix(graph, [device], [server])
        assert large[0, 0] > small[0, 0]

    def test_rejects_nonpositive_packet(self):
        with pytest.raises(ValidationError):
            TransmissionDelayModel(packet_bits=0)


class TestHopCountDelayModel:
    def test_counts_hops(self, two_hop):
        graph, device, server = two_hop
        model = HopCountDelayModel(seconds_per_hop=1.0)
        matrix = model.matrix(graph, [device], [server])
        assert matrix[0, 0] == pytest.approx(2.0)

    def test_blind_to_link_attributes(self):
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.ROUTER)
        b = graph.add_node(NodeKind.ROUTER)
        c = graph.add_node(NodeKind.ROUTER)
        graph.add_link(a, b, latency_s=100.0, bandwidth_bps=1.0)
        graph.add_link(b, c, latency_s=1e-9, bandwidth_bps=1e12)
        model = HopCountDelayModel(seconds_per_hop=1e-3)
        matrix = model.matrix(graph, [a], [b, c])
        assert matrix[0, 0] == pytest.approx(1e-3)
        assert matrix[0, 1] == pytest.approx(2e-3)


class TestEuclideanDelayModel:
    def test_proportional_to_distance(self):
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.IOT_DEVICE, (0.0, 0.0))
        b = graph.add_node(NodeKind.EDGE_SERVER, (3.0, 4.0))
        model = EuclideanDelayModel(seconds_per_unit=1.0, floor_s=0.0)
        matrix = model.matrix(graph, [a], [b])
        assert matrix[0, 0] == pytest.approx(5.0)

    def test_ignores_topology_entirely(self):
        """No links at all — the model still produces a matrix."""
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.IOT_DEVICE, (0.0, 0.0))
        b = graph.add_node(NodeKind.EDGE_SERVER, (1.0, 0.0))
        matrix = EuclideanDelayModel().matrix(graph, [a], [b])
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] > 0

    def test_floor_applies_at_zero_distance(self):
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.IOT_DEVICE, (0.5, 0.5))
        b = graph.add_node(NodeKind.EDGE_SERVER, (0.5, 0.5))
        model = EuclideanDelayModel(floor_s=1e-4)
        assert model.matrix(graph, [a], [b])[0, 0] == pytest.approx(1e-4)


class TestDelayMatrixHelper:
    def test_defaults_to_transmission(self):
        graph = random_geometric(10, seed=1)
        ids = graph.node_ids()
        default = delay_matrix(graph, ids[:3], ids[3:6])
        explicit = TransmissionDelayModel().matrix(graph, ids[:3], ids[3:6])
        assert np.allclose(default, explicit)

    def test_all_entries_positive_between_distinct_nodes(self):
        graph = random_geometric(10, seed=2)
        ids = graph.node_ids()
        matrix = delay_matrix(graph, ids[:4], ids[4:8])
        assert np.all(matrix > 0)


class TestPathDelay:
    def test_matches_manual_sum(self, two_hop):
        graph, device, server = two_hop
        bits = 8000.0
        total = path_delay(graph, (device, 1, server), bits)
        expected = (2e-3 + bits / 1e6 + 1e-4) + (1e-3 + bits / 1e9 + 5e-5)
        assert total == pytest.approx(expected)

    def test_single_node_path_is_zero(self, two_hop):
        graph, device, _ = two_hop
        assert path_delay(graph, (device,), 8000.0) == 0.0

"""Tests for topology generators."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError, ValidationError
from repro.topology.generators import (
    ACCESS,
    BACKBONE,
    TOPOLOGY_FAMILIES,
    LinkProfile,
    apply_oversubscription,
    attach_iot_devices,
    barabasi_albert,
    edge_hierarchy,
    ensure_connected,
    fat_tree,
    grid,
    make_topology,
    random_geometric,
    tier_crossing_links,
    watts_strogatz,
    waxman,
)
from repro.topology.graph import NetworkGraph, NodeKind


class TestLinkProfile:
    def test_latency_scales_with_distance(self):
        profile = LinkProfile(1e-3, 2e-3, 1e9, 0.0)
        assert profile.latency(0.0) == pytest.approx(1e-3)
        assert profile.latency(1.0) == pytest.approx(3e-3)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            LinkProfile(1e-3, 0.0, 0.0, 0.0)


class TestEnsureConnected:
    def test_connects_two_islands(self):
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.ROUTER, (0.0, 0.0))
        b = graph.add_node(NodeKind.ROUTER, (0.1, 0.0))
        c = graph.add_node(NodeKind.ROUTER, (1.0, 1.0))
        graph.add_link(a, b, 1e-3, 1e9)
        ensure_connected(graph)
        assert graph.is_connected()

    def test_noop_on_connected(self):
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.ROUTER)
        b = graph.add_node(NodeKind.ROUTER)
        graph.add_link(a, b, 1e-3, 1e9)
        links_before = graph.n_links
        ensure_connected(graph)
        assert graph.n_links == links_before


@pytest.mark.parametrize("family", sorted(TOPOLOGY_FAMILIES))
class TestAllFamilies:
    def test_connected(self, family):
        graph = make_topology(family, 30, seed=1)
        assert graph.is_connected()

    def test_only_routers(self, family):
        graph = make_topology(family, 30, seed=1)
        assert all(n.kind == NodeKind.ROUTER for n in graph.nodes())

    def test_positions_in_unit_square(self, family):
        graph = make_topology(family, 30, seed=1)
        for node in graph.nodes():
            assert 0.0 <= node.position[0] <= 1.0
            assert 0.0 <= node.position[1] <= 1.0

    def test_deterministic_under_seed(self, family):
        first = make_topology(family, 25, seed=9)
        second = make_topology(family, 25, seed=9)
        assert first.n_nodes == second.n_nodes
        assert first.n_links == second.n_links
        assert [l.latency_s for l in first.links()] == [
            l.latency_s for l in second.links()
        ]

    def test_positive_link_latencies(self, family):
        graph = make_topology(family, 25, seed=2)
        for link in graph.links():
            assert link.latency_s > 0
            assert link.bandwidth_bps > 0


class TestSpecificFamilies:
    def test_grid_shape(self):
        graph = grid(3, 4)
        assert graph.n_nodes == 12
        assert graph.n_links == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_square_default(self):
        assert grid(3).n_nodes == 9

    def test_hierarchy_node_count(self):
        graph = edge_hierarchy(depth=3, fanout=2)
        assert graph.n_nodes == 1 + 2 + 4

    def test_hierarchy_is_tree(self):
        graph = edge_hierarchy(depth=4, fanout=3)
        assert graph.n_links == graph.n_nodes - 1

    def test_fat_tree_sizes(self):
        graph = fat_tree(k=4)
        # (k/2)^2 core + k * k agg+edge
        assert graph.n_nodes == 4 + 16

    def test_fat_tree_rejects_odd_k(self):
        with pytest.raises(ValidationError):
            fat_tree(k=3)

    def test_watts_strogatz_rejects_odd_neighbors(self):
        with pytest.raises(ValidationError):
            watts_strogatz(10, ring_neighbors=3)

    def test_barabasi_has_hubs(self):
        graph = barabasi_albert(60, attach=2, seed=5)
        degrees = sorted(graph.degree(n) for n in graph.node_ids())
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_waxman_alpha_increases_density(self):
        sparse = waxman(40, alpha=0.1, seed=3)
        dense = waxman(40, alpha=0.9, seed=3)
        assert dense.n_links > sparse.n_links

    def test_geometric_radius_increases_density(self):
        small = random_geometric(40, radius=0.2, seed=3)
        large = random_geometric(40, radius=0.5, seed=3)
        assert large.n_links > small.n_links

    def test_single_router_allowed(self):
        graph = random_geometric(1, seed=0)
        assert graph.n_nodes == 1
        assert graph.is_connected()

    def test_unknown_family_raises(self):
        with pytest.raises(TopologyError):
            make_topology("ring_of_fire", 10)


class TestAttachIoTDevices:
    def test_adds_devices_with_access_links(self):
        graph = random_geometric(20, seed=1)
        devices = attach_iot_devices(graph, 15, seed=2)
        assert len(devices) == 15
        for device in devices:
            assert graph.node(device).kind == NodeKind.IOT_DEVICE
            assert graph.degree(device) == 1
            gateway = graph.neighbors(device)[0]
            assert graph.node(gateway).kind == NodeKind.ROUTER

    def test_nearest_strategy_picks_closest_router(self):
        graph = NetworkGraph()
        near = graph.add_node(NodeKind.ROUTER, (0.0, 0.0))
        far = graph.add_node(NodeKind.ROUTER, (1.0, 1.0))
        graph.add_link(near, far, 1e-3, 1e9)
        # deterministic check over many devices: each attaches to the
        # router nearer its sampled position
        devices = attach_iot_devices(graph, 30, seed=3, strategy="nearest")
        for device in devices:
            gateway = graph.neighbors(device)[0]
            dx, dy = graph.node(device).position
            to_near = math.hypot(dx, dy)
            to_far = math.hypot(dx - 1.0, dy - 1.0)
            expected = near if to_near <= to_far else far
            assert gateway == expected

    def test_random_strategy_spreads(self):
        graph = random_geometric(10, seed=4)
        devices = attach_iot_devices(graph, 50, seed=5, strategy="random")
        gateways = {graph.neighbors(d)[0] for d in devices}
        assert len(gateways) > 1

    def test_access_profile_used(self):
        graph = random_geometric(5, seed=6)
        devices = attach_iot_devices(graph, 3, seed=7)
        for device in devices:
            link = graph.incident_links(device)[0]
            assert link.bandwidth_bps == ACCESS.bandwidth_bps

    def test_no_routers_raises(self):
        graph = NetworkGraph()
        graph.add_node(NodeKind.EDGE_SERVER)
        with pytest.raises(TopologyError):
            attach_iot_devices(graph, 2)

    def test_unknown_strategy_rejected(self):
        graph = random_geometric(5, seed=8)
        with pytest.raises(ValidationError):
            attach_iot_devices(graph, 2, strategy="teleport")


class TestOversubscription:
    def test_hierarchy_has_tier_crossing_links(self):
        graph = make_topology("edge_hierarchy", 25, seed=3)
        crossing = tier_crossing_links(graph)
        assert crossing
        for link in crossing:
            assert graph.node(link.u).region != graph.node(link.v).region

    def test_unlabeled_graph_has_no_crossings(self):
        graph = random_geometric(15, seed=3)
        assert tier_crossing_links(graph) == []

    def test_factor_thins_only_crossing_links(self):
        graph = make_topology("edge_hierarchy", 25, seed=3)
        crossing = {frozenset((l.u, l.v)) for l in tier_crossing_links(graph)}
        before = {frozenset((l.u, l.v)): l.bandwidth_bps for l in graph.links()}
        thinned = apply_oversubscription(graph, 4.0)
        assert thinned == len(crossing)
        for link in graph.links():
            key = frozenset((link.u, link.v))
            expected = before[key] / 4.0 if key in crossing else before[key]
            assert link.bandwidth_bps == pytest.approx(expected)

    def test_factor_one_is_exact_noop(self):
        graph = make_topology("edge_hierarchy", 25, seed=3)
        before = {(l.u, l.v): (l.latency_s, l.bandwidth_bps) for l in graph.links()}
        assert apply_oversubscription(graph, 1.0) == 0
        after = {(l.u, l.v): (l.latency_s, l.bandwidth_bps) for l in graph.links()}
        assert before == after

    def test_factor_below_one_rejected(self):
        graph = make_topology("edge_hierarchy", 25, seed=3)
        with pytest.raises(ValidationError):
            apply_oversubscription(graph, 0.5)


@settings(max_examples=15, deadline=None)
@given(
    family=st.sampled_from(sorted(TOPOLOGY_FAMILIES)),
    n=st.integers(min_value=5, max_value=60),
    seed=st.integers(0, 10_000),
)
def test_property_every_family_always_connected(family, n, seed):
    """The repair pass must make any generated backbone routable."""
    graph = make_topology(family, n, seed=seed)
    assert graph.is_connected()
    assert graph.n_nodes >= 1

"""Tests for the network graph model."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError, ValidationError
from repro.topology.graph import Link, NetworkGraph, NodeKind


@pytest.fixture
def triangle():
    """Three routers in a cycle."""
    graph = NetworkGraph()
    a = graph.add_node(NodeKind.ROUTER, (0.0, 0.0))
    b = graph.add_node(NodeKind.ROUTER, (1.0, 0.0))
    c = graph.add_node(NodeKind.ROUTER, (0.0, 1.0))
    graph.add_link(a, b, latency_s=1e-3, bandwidth_bps=1e9)
    graph.add_link(b, c, latency_s=2e-3, bandwidth_bps=1e9)
    graph.add_link(c, a, latency_s=3e-3, bandwidth_bps=1e9)
    return graph, (a, b, c)


class TestNodes:
    def test_sequential_ids(self):
        graph = NetworkGraph()
        assert graph.add_node(NodeKind.ROUTER) == 0
        assert graph.add_node(NodeKind.ROUTER) == 1

    def test_explicit_id_respected_and_continued(self):
        graph = NetworkGraph()
        assert graph.add_node(NodeKind.ROUTER, node_id=10) == 10
        assert graph.add_node(NodeKind.ROUTER) == 11

    def test_duplicate_id_rejected(self):
        graph = NetworkGraph()
        graph.add_node(NodeKind.ROUTER, node_id=0)
        with pytest.raises(ValidationError):
            graph.add_node(NodeKind.ROUTER, node_id=0)

    def test_kind_filter(self, triangle):
        graph, _ = triangle
        graph.add_node(NodeKind.IOT_DEVICE)
        assert len(graph.nodes(NodeKind.ROUTER)) == 3
        assert len(graph.nodes(NodeKind.IOT_DEVICE)) == 1
        assert len(graph.nodes()) == 4

    def test_missing_node_raises(self):
        graph = NetworkGraph()
        with pytest.raises(TopologyError):
            graph.node(99)

    def test_move_node_updates_position(self, triangle):
        graph, (a, _, _) = triangle
        graph.move_node(a, (0.5, 0.5))
        assert graph.node(a).position == (0.5, 0.5)

    def test_node_ids_sorted(self, triangle):
        graph, (a, b, c) = triangle
        assert graph.node_ids() == sorted([a, b, c])


class TestLinks:
    def test_link_is_bidirectional(self, triangle):
        graph, (a, b, _) = triangle
        assert graph.link(a, b) is graph.link(b, a)

    def test_self_loop_rejected(self):
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.ROUTER)
        with pytest.raises(ValidationError):
            graph.add_link(a, a, 1e-3, 1e9)

    def test_duplicate_link_rejected(self, triangle):
        graph, (a, b, _) = triangle
        with pytest.raises(ValidationError):
            graph.add_link(a, b, 1e-3, 1e9)

    def test_link_to_missing_node_rejected(self, triangle):
        graph, (a, _, _) = triangle
        with pytest.raises(TopologyError):
            graph.add_link(a, 99, 1e-3, 1e9)

    def test_missing_link_raises(self):
        graph = NetworkGraph()
        a = graph.add_node(NodeKind.ROUTER)
        b = graph.add_node(NodeKind.ROUTER)
        with pytest.raises(TopologyError):
            graph.link(a, b)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError):
            Link(0, 1, latency_s=-1.0, bandwidth_bps=1e9)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            Link(0, 1, latency_s=0.0, bandwidth_bps=0.0)

    def test_other_endpoint(self):
        link = Link(3, 7, 1e-3, 1e9)
        assert link.other(3) == 7
        assert link.other(7) == 3
        with pytest.raises(TopologyError):
            link.other(5)

    def test_links_listed_once(self, triangle):
        graph, _ = triangle
        assert len(graph.links()) == 3
        assert graph.n_links == 3

    def test_remove_link(self, triangle):
        graph, (a, b, _) = triangle
        graph.remove_link(a, b)
        assert not graph.has_link(a, b)
        assert not graph.has_link(b, a)
        with pytest.raises(TopologyError):
            graph.remove_link(a, b)

    def test_degree_and_neighbors(self, triangle):
        graph, (a, b, c) = triangle
        assert graph.degree(a) == 2
        assert set(graph.neighbors(a)) == {b, c}


class TestLinksOnPath:
    def test_resolves_in_order(self, triangle):
        graph, (a, b, c) = triangle
        links = graph.links_on_path([a, b, c])
        assert [link.latency_s for link in links] == [1e-3, 2e-3]

    def test_single_node_path_has_no_links(self, triangle):
        graph, (a, _, _) = triangle
        assert graph.links_on_path([a]) == []

    def test_empty_path_rejected(self, triangle):
        graph, _ = triangle
        with pytest.raises(ValidationError):
            graph.links_on_path([])

    def test_missing_node_raises_topology_error(self, triangle):
        graph, (a, _, _) = triangle
        with pytest.raises(TopologyError):
            graph.links_on_path([a, 99])

    def test_missing_edge_raises_topology_error(self, triangle):
        graph, (a, b, _) = triangle
        d = graph.add_node(NodeKind.ROUTER)
        with pytest.raises(TopologyError):
            graph.links_on_path([a, b, d])


class TestConnectivity:
    def test_triangle_is_connected(self, triangle):
        graph, _ = triangle
        assert graph.is_connected()

    def test_isolated_node_disconnects(self, triangle):
        graph, _ = triangle
        graph.add_node(NodeKind.ROUTER)
        assert not graph.is_connected()
        assert len(graph.connected_components()) == 2

    def test_empty_graph_is_connected(self):
        assert NetworkGraph().is_connected()

    def test_components_partition_nodes(self, triangle):
        graph, _ = triangle
        graph.add_node(NodeKind.ROUTER)
        components = graph.connected_components()
        all_nodes = set()
        for component in components:
            assert not (all_nodes & component)
            all_nodes |= component
        assert all_nodes == set(graph.node_ids())


class TestCopy:
    def test_copy_is_independent(self, triangle):
        graph, (a, b, _) = triangle
        clone = graph.copy()
        clone.remove_link(a, b)
        assert graph.has_link(a, b)
        assert not clone.has_link(a, b)

    def test_copy_preserves_structure(self, triangle):
        graph, _ = triangle
        clone = graph.copy()
        assert clone.n_nodes == graph.n_nodes
        assert clone.n_links == graph.n_links

    def test_copy_continues_id_sequence(self, triangle):
        graph, _ = triangle
        clone = graph.copy()
        assert clone.add_node(NodeKind.ROUTER) == graph.n_nodes


class TestRegions:
    def test_unlabeled_graph_has_no_regions(self, triangle):
        graph, (a, _, _) = triangle
        assert not graph.has_regions()
        assert graph.regions() == []
        assert graph.region_of(a) is None

    def test_set_region_stamps_and_lists(self, triangle):
        graph, (a, b, c) = triangle
        graph.set_region(a, 0)
        graph.set_region(b, 1)
        graph.set_region(c, 1)
        assert graph.has_regions()
        assert graph.regions() == [0, 1]
        assert graph.region_of(c) == 1

    def test_set_region_none_clears(self, triangle):
        graph, (a, _, _) = triangle
        graph.set_region(a, 3)
        graph.set_region(a, None)
        assert not graph.has_regions()

    def test_regions_filter_by_kind(self, triangle):
        graph, (a, _, _) = triangle
        graph.set_region(a, 0)
        device = graph.add_node(NodeKind.IOT_DEVICE, region=7)
        assert graph.regions(NodeKind.IOT_DEVICE) == [7]
        assert graph.regions(NodeKind.ROUTER) == [0]
        assert graph.region_of(device) == 7

    def test_copy_preserves_regions(self, triangle):
        graph, (a, _, _) = triangle
        graph.set_region(a, 4)
        assert graph.copy().region_of(a) == 4

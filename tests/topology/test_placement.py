"""Tests for edge-server placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TopologyError, ValidationError
from repro.topology.delay import TransmissionDelayModel
from repro.topology.generators import random_geometric
from repro.topology.graph import NodeKind
from repro.topology.placement import PLACEMENT_STRATEGIES, place_edge_servers
from repro.topology.routing import all_pairs_delay


@pytest.mark.parametrize("strategy", sorted(PLACEMENT_STRATEGIES))
class TestAllStrategies:
    def test_adds_requested_servers(self, strategy):
        graph = random_geometric(20, seed=1)
        servers = place_edge_servers(graph, 4, seed=2, strategy=strategy)
        assert len(servers) == 4
        for server in servers:
            assert graph.node(server).kind == NodeKind.EDGE_SERVER

    def test_each_server_attached_to_router(self, strategy):
        graph = random_geometric(20, seed=1)
        servers = place_edge_servers(graph, 3, seed=2, strategy=strategy)
        for server in servers:
            neighbors = graph.neighbors(server)
            assert len(neighbors) == 1
            assert graph.node(neighbors[0]).kind == NodeKind.ROUTER

    def test_distinct_host_routers(self, strategy):
        graph = random_geometric(20, seed=3)
        servers = place_edge_servers(graph, 5, seed=4, strategy=strategy)
        hosts = {graph.neighbors(s)[0] for s in servers}
        assert len(hosts) == 5

    def test_deterministic_under_seed(self, strategy):
        first = random_geometric(15, seed=5)
        second = random_geometric(15, seed=5)
        servers_a = place_edge_servers(first, 3, seed=6, strategy=strategy)
        servers_b = place_edge_servers(second, 3, seed=6, strategy=strategy)
        hosts_a = [first.neighbors(s)[0] for s in servers_a]
        hosts_b = [second.neighbors(s)[0] for s in servers_b]
        assert hosts_a == hosts_b


class TestStrategySemantics:
    def test_degree_picks_highest_degree_routers(self):
        graph = random_geometric(25, seed=7)
        servers = place_edge_servers(graph, 3, seed=8, strategy="degree")
        hosts = [graph.neighbors(s)[0] for s in servers]
        routers = graph.node_ids(NodeKind.ROUTER)
        # account for the +1 degree the server link added to hosts
        degree = {
            r: graph.degree(r) - (1 if r in hosts else 0) for r in routers
        }
        threshold = sorted(degree.values(), reverse=True)[2]
        for host in hosts:
            assert degree[host] >= threshold

    def test_spread_beats_random_on_coverage(self):
        """k-center placement should cover the graph at least as well as
        random placement (max distance to nearest server)."""
        model = TransmissionDelayModel()
        worst_spread, worst_random = [], []
        for seed in range(5):
            graph_a = random_geometric(30, seed=seed)
            graph_b = random_geometric(30, seed=seed)
            routers = graph_a.node_ids(NodeKind.ROUTER)
            spread = place_edge_servers(graph_a, 3, seed=seed, strategy="spread")
            random_hosts = place_edge_servers(graph_b, 3, seed=seed, strategy="random")
            for graph, servers, bucket in (
                (graph_a, spread, worst_spread),
                (graph_b, random_hosts, worst_random),
            ):
                matrix = all_pairs_delay(graph, routers, servers, model.link_weight)
                bucket.append(float(np.max(np.min(matrix, axis=1))))
        assert np.mean(worst_spread) <= np.mean(worst_random) + 1e-12

    def test_medoid_minimizes_mean_distance_vs_random(self):
        model = TransmissionDelayModel()
        mean_medoid, mean_random = [], []
        for seed in range(5):
            graph_a = random_geometric(30, seed=seed)
            graph_b = random_geometric(30, seed=seed)
            routers = graph_a.node_ids(NodeKind.ROUTER)
            medoid = place_edge_servers(graph_a, 3, seed=seed, strategy="medoid")
            random_hosts = place_edge_servers(graph_b, 3, seed=seed, strategy="random")
            for graph, servers, bucket in (
                (graph_a, medoid, mean_medoid),
                (graph_b, random_hosts, mean_random),
            ):
                matrix = all_pairs_delay(graph, routers, servers, model.link_weight)
                bucket.append(float(np.mean(np.min(matrix, axis=1))))
        assert np.mean(mean_medoid) <= np.mean(mean_random) + 1e-12


class TestErrors:
    def test_more_servers_than_routers(self):
        graph = random_geometric(3, seed=9)
        with pytest.raises(TopologyError):
            place_edge_servers(graph, 10)

    def test_unknown_strategy(self):
        graph = random_geometric(5, seed=10)
        with pytest.raises(ValidationError):
            place_edge_servers(graph, 2, strategy="astrology")

    def test_zero_servers(self):
        graph = random_geometric(5, seed=11)
        with pytest.raises(ValidationError):
            place_edge_servers(graph, 0)

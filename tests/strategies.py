"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.faults.policies import RetryPolicy
from repro.model.instances import ensure_feasible_capacity
from repro.model.problem import AssignmentProblem
from repro.netem import NetemRule, NetemScript


@st.composite
def small_problems(
    draw,
    max_devices: int = 8,
    max_servers: int = 4,
    force_feasible: bool = True,
):
    """Random small :class:`AssignmentProblem` instances.

    Delays and demands are drawn uniformly; capacities start at a
    random tightness and are relaxed to certified feasibility when
    ``force_feasible`` (the default, since most solver properties are
    stated for feasible instances).
    """
    n = draw(st.integers(min_value=2, max_value=max_devices))
    m = draw(st.integers(min_value=2, max_value=max_servers))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    tightness = draw(st.floats(min_value=0.3, max_value=0.9))
    rng = np.random.default_rng(seed)
    delay = rng.uniform(1e-3, 20e-3, size=(n, m))
    demand = rng.uniform(5.0, 25.0, size=(n, m))
    capacity = np.full(m, float(np.sum(np.mean(demand, axis=1))) / (m * tightness))
    capacity = np.maximum(capacity, float(np.max(np.min(demand, axis=1))))
    problem = AssignmentProblem(delay=delay, demand=demand, capacity=capacity)
    if force_feasible:
        ensure_feasible_capacity(problem)
    return problem


@st.composite
def retry_policies(draw, backoff: "str | None" = None):
    """Valid :class:`RetryPolicy` instances across the whole knob space.

    ``backoff`` pins the mode; ``None`` draws it, so mode-agnostic
    properties (boundedness, retry caps) cover both shapes.
    """
    jitter = draw(st.floats(min_value=0.0, max_value=1.0))
    if backoff is None:
        backoff = draw(st.sampled_from(["decorrelated", "exponential"]))
    return RetryPolicy(
        max_retries=draw(st.integers(min_value=0, max_value=10)),
        timeout_s=draw(st.floats(min_value=1e-3, max_value=5.0)),
        base_delay_s=draw(st.floats(min_value=1e-4, max_value=0.5)),
        # monotone growth needs multiplier >= 1 + jitter (enforced by the
        # policy itself for the exponential mode); draw from the valid
        # region only
        multiplier=draw(st.floats(min_value=1.0 + jitter, max_value=8.0)),
        max_delay_s=draw(st.floats(min_value=0.5, max_value=30.0)),
        jitter=jitter,
        backoff=backoff,
    )


#: edge patterns a netem rule may carry — a mix of exact edges,
#: one-sided wildcards and the catch-all
_NETEM_EDGES = (
    "*", "*->shard-0", "*->shard-1", "router->*",
    "router->shard-0", "client->server",
)


@st.composite
def netem_rules(draw):
    """Valid :class:`NetemRule` instances across every kind."""
    kind = draw(st.sampled_from(
        ["drop", "delay", "duplicate", "reorder", "partition", "slow"]
    ))
    duration_s = draw(st.one_of(
        st.none(), st.floats(min_value=0.1, max_value=10.0)
    ))
    return NetemRule(
        kind=kind,
        edge=draw(st.sampled_from(_NETEM_EDGES)),
        direction=draw(st.sampled_from(["forward", "reverse", "both"])),
        p=draw(st.floats(min_value=0.0, max_value=1.0)),
        delay_s=draw(st.floats(min_value=0.0, max_value=0.5)),
        jitter_s=draw(st.floats(min_value=0.0, max_value=0.5)),
        # reorder validation requires extra_s > 0
        extra_s=draw(st.floats(min_value=1e-6, max_value=0.5)),
        factor=draw(st.floats(min_value=0.25, max_value=8.0)),
        at_s=draw(st.floats(min_value=0.0, max_value=5.0)),
        duration_s=duration_s,
    )


@st.composite
def netem_scripts(draw, max_rules: int = 6):
    """Valid :class:`NetemScript` instances (possibly empty)."""
    return NetemScript(
        rules=tuple(draw(st.lists(netem_rules(), max_size=max_rules))),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        name=draw(st.sampled_from(["netem", "gray", "chaos-a"])),
    )


@st.composite
def assignment_vectors(draw, problem: AssignmentProblem):
    """A complete (not necessarily feasible) assignment vector."""
    return np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=problem.n_servers - 1),
                min_size=problem.n_devices,
                max_size=problem.n_devices,
            )
        ),
        dtype=np.int64,
    )

"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.faults.policies import RetryPolicy
from repro.model.instances import ensure_feasible_capacity
from repro.model.problem import AssignmentProblem


@st.composite
def small_problems(
    draw,
    max_devices: int = 8,
    max_servers: int = 4,
    force_feasible: bool = True,
):
    """Random small :class:`AssignmentProblem` instances.

    Delays and demands are drawn uniformly; capacities start at a
    random tightness and are relaxed to certified feasibility when
    ``force_feasible`` (the default, since most solver properties are
    stated for feasible instances).
    """
    n = draw(st.integers(min_value=2, max_value=max_devices))
    m = draw(st.integers(min_value=2, max_value=max_servers))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    tightness = draw(st.floats(min_value=0.3, max_value=0.9))
    rng = np.random.default_rng(seed)
    delay = rng.uniform(1e-3, 20e-3, size=(n, m))
    demand = rng.uniform(5.0, 25.0, size=(n, m))
    capacity = np.full(m, float(np.sum(np.mean(demand, axis=1))) / (m * tightness))
    capacity = np.maximum(capacity, float(np.max(np.min(demand, axis=1))))
    problem = AssignmentProblem(delay=delay, demand=demand, capacity=capacity)
    if force_feasible:
        ensure_feasible_capacity(problem)
    return problem


@st.composite
def retry_policies(draw):
    """Valid :class:`RetryPolicy` instances across the whole knob space."""
    jitter = draw(st.floats(min_value=0.0, max_value=1.0))
    return RetryPolicy(
        max_retries=draw(st.integers(min_value=0, max_value=10)),
        timeout_s=draw(st.floats(min_value=1e-3, max_value=5.0)),
        base_delay_s=draw(st.floats(min_value=1e-4, max_value=0.5)),
        # monotone growth needs multiplier >= 1 + jitter (enforced by the
        # policy itself); draw from the valid region only
        multiplier=draw(st.floats(min_value=1.0 + jitter, max_value=8.0)),
        max_delay_s=draw(st.floats(min_value=0.5, max_value=30.0)),
        jitter=jitter,
    )


@st.composite
def assignment_vectors(draw, problem: AssignmentProblem):
    """A complete (not necessarily feasible) assignment vector."""
    return np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=problem.n_servers - 1),
                min_size=problem.n_devices,
                max_size=problem.n_devices,
            )
        ),
        dtype=np.int64,
    )

"""The request-path swallowed-exception lint, and the tree it guards."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint_except_pass import (  # noqa: E402
    REQUEST_PATH_ROOTS,
    check_source,
    check_tree,
)


class TestRule:
    def test_flags_except_exception_pass(self):
        source = "try:\n    x()\nexcept Exception:\n    pass\n"
        (violation,) = check_source(source)
        assert ":3:" in violation

    def test_flags_bare_except_pass(self):
        source = "try:\n    x()\nexcept:\n    pass\n"
        assert len(check_source(source)) == 1

    def test_flags_ellipsis_body_and_tuple_types(self):
        source = "try:\n    x()\nexcept (ValueError, Exception):\n    ...\n"
        assert len(check_source(source)) == 1

    def test_narrow_swallow_is_legal(self):
        source = "try:\n    x()\nexcept ValueError:\n    pass\n"
        assert check_source(source) == []

    def test_broad_handler_that_acts_is_legal(self):
        source = (
            "try:\n    x()\nexcept Exception as exc:\n"
            "    log(exc)\n    raise\n"
        )
        assert check_source(source) == []


class TestSpanRule:
    def test_flags_start_span_outside_with(self):
        source = "span = recorder.start_span('serve/request', ctx)\n"
        (violation,) = check_source(source)
        assert "start_span" in violation and ":1:" in violation

    def test_with_bound_start_span_is_legal(self):
        source = (
            "with recorder.start_span('serve/request', ctx) as span:\n"
            "    span.event('dequeued')\n"
        )
        assert check_source(source) == []

    def test_async_with_bound_start_span_is_legal(self):
        source = (
            "async def f():\n"
            "    async with recorder.start_span('x', ctx) as span:\n"
            "        pass\n"
        )
        assert check_source(source) == []

    def test_flags_start_manual_outside_harness_files(self):
        source = "span = recorder.start_manual('client/request', ctx)\n"
        (violation,) = check_source(source, "src/repro/serve/service.py")
        assert "start_manual" in violation

    def test_start_manual_legal_in_measurement_harnesses(self):
        source = "span = recorder.start_manual('client/request', ctx)\n"
        assert check_source(source, "src/repro/serve/loadtest.py") == []
        assert check_source(source, "src/repro/shard/harness.py") == []

    def test_with_does_not_bless_a_nested_start_span(self):
        # the with-item is lock(); the span call inside the body still leaks
        source = (
            "with lock():\n"
            "    span = recorder.start_span('x', ctx)\n"
        )
        assert len(check_source(source)) == 1


class TestRequestPathIsClean:
    def test_no_swallowed_exceptions_on_the_request_path(self):
        roots = [
            str(REPO_ROOT / root)
            for root in REQUEST_PATH_ROOTS
            if (REPO_ROOT / root).exists()
        ]
        assert roots, "request-path packages moved; update the lint"
        assert check_tree(roots) == []

"""End-to-end chaos runs: dispatch policies over one fault timeline."""

from __future__ import annotations

import pytest

from repro.faults import FaultScenario, RetryPolicy, simulate_with_faults
from repro.model.instances import topology_instance
from repro.solvers.greedy import feasible_start


@pytest.fixture(scope="module")
def chaos_setup():
    """A small topology-backed assignment plus a crash on its busiest server."""
    problem = topology_instance(
        n_routers=15,
        n_devices=12,
        n_servers=3,
        tightness=0.6,
        seed=11,
        deadline_s=0.05,
    )
    assignment = feasible_start(problem)
    busiest = int(assignment.loads().argmax())
    scenario = FaultScenario.single_crash(busiest, at_s=2.0, repair_at_s=4.0)
    return assignment, scenario, busiest


def run(assignment, scenario, mode, **kwargs):
    kwargs.setdefault("policy", RetryPolicy(max_retries=3, timeout_s=0.2))
    return simulate_with_faults(
        assignment, scenario, duration_s=5.0, seed=3, mode=mode,
        drain_s=10.0, window_s=1.0, **kwargs,
    )


class TestChaosRun:
    def test_no_faults_means_no_fault_metrics(self, chaos_setup):
        assignment, _, _ = chaos_setup
        report = run(assignment, FaultScenario(name="calm"), "failover")
        assert report.tasks_lost == 0
        assert report.timeouts == 0 and report.retries == 0
        assert report.goodput == pytest.approx(1.0)
        # every window of the timeline is perfect too
        assert all(g == pytest.approx(1.0) for _, g in report.goodput_timeline)

    def test_none_policy_loses_the_crash_windows(self, chaos_setup):
        assignment, scenario, _ = chaos_setup
        report = run(assignment, scenario, "none")
        assert report.tasks_lost > 0
        assert report.goodput < 1.0
        assert report.tasks_created == report.tasks_completed + report.tasks_lost

    def test_failover_recovers_goodput(self, chaos_setup):
        assignment, scenario, _ = chaos_setup
        none = run(assignment, scenario, "none")
        failover = run(assignment, scenario, "failover")
        assert failover.failovers > 0
        assert failover.goodput > none.goodput
        assert failover.goodput >= 0.95
        assert failover.tasks_lost < none.tasks_lost
        # identical offered load: the comparison is apples to apples
        assert failover.tasks_created == none.tasks_created

    def test_retry_spends_budget_on_a_dead_server(self, chaos_setup):
        assignment, scenario, _ = chaos_setup
        report = run(assignment, scenario, "retry")
        assert report.retries > 0
        # per-task attempts are bounded by the policy's budget
        assert report.retries <= report.tasks_created * 3

    def test_deterministic_replay(self, chaos_setup):
        assignment, scenario, _ = chaos_setup
        a = run(assignment, scenario, "failover")
        b = run(assignment, scenario, "failover")
        assert a.as_dict() == b.as_dict()

    def test_requeue_crash_policy_conserves_tasks(self, chaos_setup):
        assignment, scenario, _ = chaos_setup
        report = run(assignment, scenario, "none", crash_policy="requeue")
        # parked tasks finish after repair instead of being dropped
        drop = run(assignment, scenario, "none")
        assert report.tasks_lost <= drop.tasks_lost

    def test_partial_assignment_rejected(self, chaos_setup):
        from repro.errors import ValidationError
        from repro.model.solution import Assignment

        assignment, scenario, _ = chaos_setup
        partial = Assignment(assignment.problem)
        with pytest.raises(ValidationError):
            simulate_with_faults(partial, scenario)

    def test_matrix_problem_rejected(self):
        from repro.errors import ValidationError
        from repro.model.instances import random_instance

        problem = random_instance(6, 2, tightness=0.5, seed=1)
        assignment = feasible_start(problem)
        with pytest.raises(ValidationError):
            simulate_with_faults(assignment, FaultScenario())

    def test_link_degradation_inflates_latency(self, chaos_setup):
        from repro.faults import FaultEventSpec

        assignment, _, _ = chaos_setup
        calm = run(assignment, FaultScenario(name="calm"), "none")
        events = tuple(
            FaultEventSpec(
                at_s=0.0, kind="link_degrade", u=link.u, v=link.v,
                factor=0.5, extra_latency_s=0.005,
            )
            for link in assignment.problem.graph.links()
        )
        degraded = run(
            assignment,
            FaultScenario(events=events, name="soggy-links"),
            "none",
            policy=RetryPolicy(max_retries=0, timeout_s=None),
        )
        assert degraded.mean_network_latency_ms > calm.mean_network_latency_ms

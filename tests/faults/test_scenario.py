"""Scenario description: validation, ordering, serialization, builders."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import SerializationError, ValidationError
from repro.faults import FaultEventSpec, FaultScenario, compose

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestFaultEventSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            FaultEventSpec(at_s=1.0, kind="meteor_strike", server=0)

    def test_server_kinds_need_a_server(self):
        with pytest.raises(ValidationError):
            FaultEventSpec(at_s=1.0, kind="server_crash")

    def test_link_kinds_need_endpoints(self):
        with pytest.raises(ValidationError):
            FaultEventSpec(at_s=1.0, kind="link_degrade", u=3)

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            FaultEventSpec(at_s=-0.1, kind="server_crash", server=0)

    def test_slowdown_needs_positive_factor(self):
        with pytest.raises(ValidationError):
            FaultEventSpec(at_s=1.0, kind="server_slowdown", server=0, factor=0.0)

    def test_dict_round_trip_drops_defaults(self):
        spec = FaultEventSpec(at_s=2.0, kind="server_crash", server=3)
        payload = spec.to_dict()
        assert payload == {"at_s": 2.0, "kind": "server_crash", "server": 3}
        assert FaultEventSpec.from_dict(payload) == spec


class TestFaultScenario:
    def test_events_sorted_by_time(self):
        scenario = FaultScenario(events=(
            FaultEventSpec(at_s=9.0, kind="server_repair", server=0),
            FaultEventSpec(at_s=3.0, kind="server_crash", server=0),
        ))
        assert [e.at_s for e in scenario.events] == [3.0, 9.0]
        assert len(scenario) == 2

    def test_json_round_trip(self):
        scenario = FaultScenario.single_crash(2, at_s=10.0, repair_at_s=22.0)
        assert FaultScenario.from_json(scenario.to_json()) == scenario

    def test_file_round_trip(self, tmp_path):
        scenario = FaultScenario(events=(
            FaultEventSpec(at_s=8.0, kind="link_degrade", u=3, v=7,
                           factor=0.1, extra_latency_s=0.02, jitter_s=0.005,
                           duration_s=12.0),
        ), name="degrade")
        path = scenario.save(tmp_path / "s.json")
        assert FaultScenario.load(path) == scenario

    def test_invalid_json_raises_serialization_error(self):
        with pytest.raises(SerializationError):
            FaultScenario.from_json("not json")
        with pytest.raises(SerializationError):
            FaultScenario.from_json('{"no_events": true}')

    def test_shifted(self):
        scenario = FaultScenario.single_crash(1, at_s=5.0, repair_at_s=9.0)
        shifted = scenario.shifted(10.0)
        assert [e.at_s for e in shifted.events] == [15.0, 19.0]
        assert [e.kind for e in shifted.events] == [e.kind for e in scenario.events]

    def test_compose_merges_and_sorts(self):
        a = FaultScenario.single_crash(0, at_s=20.0)
        b = FaultScenario.single_crash(1, at_s=5.0)
        merged = compose(a, b, name="both")
        assert merged.name == "both"
        assert [e.at_s for e in merged.events] == [5.0, 20.0]

    def test_single_crash_requires_repair_after_crash(self):
        with pytest.raises(ValidationError):
            FaultScenario.single_crash(0, at_s=10.0, repair_at_s=10.0)

    def test_random_stays_within_horizon(self):
        scenario = FaultScenario.random(n_servers=3, horizon_s=50.0, seed=1)
        assert all(e.at_s < 50.0 for e in scenario.events)
        crashes = [e for e in scenario.events if e.kind == "server_crash"]
        repairs = [e for e in scenario.events if e.kind == "server_repair"]
        assert len(repairs) <= len(crashes)

    def test_random_slowdowns_present_when_enabled(self):
        scenario = FaultScenario.random(
            n_servers=4, horizon_s=400.0, seed=2,
            crash_rate_hz=0.05, slowdown_prob=0.5,
        )
        kinds = {e.kind for e in scenario.events}
        assert "server_slowdown" in kinds

    def test_committed_example_scenario_loads(self):
        scenario = FaultScenario.load(
            REPO_ROOT / "examples" / "scenarios" / "crash_busiest.json"
        )
        kinds = [e.kind for e in scenario.events]
        assert kinds == ["server_crash", "server_repair"]
        crash, repair = scenario.events
        assert repair.at_s > crash.at_s
        assert crash.server == repair.server

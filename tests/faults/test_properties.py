"""Property-based invariants of the retry/timeout machinery."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from tests.strategies import retry_policies


@settings(max_examples=100, deadline=None)
@given(
    policy=retry_policies(),
    attempt=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_backoff_is_bounded(policy, attempt, seed):
    """Every backoff lands in (0, max_delay_s] whatever the jitter draw."""
    delay = policy.backoff_s(attempt, np.random.default_rng(seed))
    assert 0.0 < delay <= policy.max_delay_s


@settings(max_examples=100, deadline=None)
@given(
    policy=retry_policies(backoff="exponential"),
    attempt=st.integers(min_value=0, max_value=20),
    seed_early=st.integers(min_value=0, max_value=2**31 - 1),
    seed_late=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_backoff_is_monotone_in_attempt(policy, attempt, seed_early, seed_late):
    """A later attempt never backs off less than an earlier one, even when
    the earlier draw got maximal jitter and the later one got none —
    guaranteed by the constructor's ``multiplier >= 1 + jitter``.
    Exponential-mode only: decorrelated jitter forgets the attempt
    number on purpose (that's what decorrelates the herd)."""
    early = policy.backoff_s(attempt, np.random.default_rng(seed_early))
    late = policy.backoff_s(attempt + 1, np.random.default_rng(seed_late))
    assert late >= early - 1e-12


@settings(max_examples=100, deadline=None)
@given(
    policy=retry_policies(backoff="decorrelated"),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_draws=st.integers(min_value=1, max_value=10),
)
def test_decorrelated_backoff_chains_within_envelope(policy, seed, n_draws):
    """Chained decorrelated draws stay in [base, min(cap, 3·prev)] and the
    same seed reproduces the identical chain."""
    def chain(rng):
        prev = None
        out = []
        for _ in range(n_draws):
            delay = policy.backoff_s(0, rng, prev_delay_s=prev)
            out.append(delay)
            prev = delay
        return out

    draws = chain(np.random.default_rng(seed))
    prev = policy.base_delay_s
    for delay in draws:
        assert policy.base_delay_s - 1e-12 <= delay <= policy.max_delay_s
        assert delay <= max(policy.base_delay_s, 3.0 * prev) + 1e-12
        prev = delay
    assert draws == chain(np.random.default_rng(seed))


@settings(max_examples=50, deadline=None)
@given(policy=retry_policies())
def test_retries_never_exceed_cap(policy):
    """Counting attempts through should_retry stops exactly at max_retries."""
    retries_done = 0
    while policy.should_retry(retries_done):
        retries_done += 1
        assert retries_done <= policy.max_retries
    assert retries_done == policy.max_retries


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=12
    ),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=12),
)
def test_cancelled_timeouts_never_fire(delays, cancel_mask):
    """A cancelled event must never run, no matter where it sits in the heap."""
    sim = Simulator()
    fired: list[int] = []
    events = [
        sim.schedule(delay, (lambda i=i: fired.append(i)))
        for i, delay in enumerate(delays)
    ]
    cancelled = {
        i for i, (event, cancel) in enumerate(zip(events, cancel_mask))
        if cancel
    }
    for i in cancelled:
        events[i].cancel()
    sim.run()
    assert set(fired) == set(range(len(delays))) - cancelled

"""The injector turns inert scenarios into scheduled component calls."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.faults import FaultEventSpec, FaultInjector, FaultScenario
from repro.model.entities import EdgeServer
from repro.sim.engine import Simulator
from repro.sim.server import EdgeServerQueue


def make_queues(sim, n=2):
    return {
        i: EdgeServerQueue(
            sim,
            EdgeServer(server_id=i, node_id=i, capacity=100.0, service_rate=10.0),
            rng=np.random.default_rng(i),
            service="deterministic",
        )
        for i in range(n)
    }


class TestFaultInjector:
    def test_crash_and_repair_fire_at_their_times(self):
        sim = Simulator()
        queues = make_queues(sim)
        scenario = FaultScenario.single_crash(1, at_s=2.0, repair_at_s=5.0)
        fired = []
        injector = FaultInjector(
            sim, scenario, queues, on_event=lambda s: fired.append((sim.now, s.kind))
        )
        injector.arm()
        sim.run(until=3.0)
        assert not queues[1].is_up and queues[0].is_up
        sim.run(until=6.0)
        assert queues[1].is_up
        assert fired == [(2.0, "server_crash"), (5.0, "server_repair")]
        assert injector.events_fired == 2

    def test_slowdown_with_duration_auto_restores(self):
        sim = Simulator()
        queues = make_queues(sim, n=1)
        scenario = FaultScenario(events=(
            FaultEventSpec(at_s=1.0, kind="server_slowdown", server=0,
                           factor=0.25, duration_s=2.0),
        ))
        FaultInjector(sim, scenario, queues).arm()
        sim.run(until=1.5)
        assert queues[0].speed_factor == 0.25
        sim.run(until=4.0)
        assert queues[0].speed_factor == 1.0

    def test_crash_with_duration_auto_recovers(self):
        sim = Simulator()
        queues = make_queues(sim, n=1)
        scenario = FaultScenario(events=(
            FaultEventSpec(at_s=1.0, kind="server_crash", server=0, duration_s=2.0),
        ))
        FaultInjector(sim, scenario, queues).arm()
        sim.run(until=2.0)
        assert not queues[0].is_up
        sim.run(until=4.0)
        assert queues[0].is_up

    def test_arm_is_idempotent(self):
        sim = Simulator()
        queues = make_queues(sim, n=1)
        scenario = FaultScenario.single_crash(0, at_s=1.0)
        fired = []
        injector = FaultInjector(
            sim, scenario, queues, on_event=lambda s: fired.append(s.kind)
        )
        injector.arm()
        injector.arm()
        sim.run(until=2.0)
        assert fired == ["server_crash"]

    def test_unknown_server_target_rejected(self):
        sim = Simulator()
        queues = make_queues(sim, n=2)
        scenario = FaultScenario.single_crash(7, at_s=1.0)
        with pytest.raises(SimulationError):
            FaultInjector(sim, scenario, queues)

    def test_link_fault_without_fabric_rejected(self):
        sim = Simulator()
        queues = make_queues(sim, n=1)
        scenario = FaultScenario(events=(
            FaultEventSpec(at_s=1.0, kind="link_degrade", u=0, v=1, factor=0.5),
        ))
        with pytest.raises(SimulationError):
            FaultInjector(sim, scenario, queues, fabric=None)

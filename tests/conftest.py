"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.model.instances import gap_instance, random_instance, topology_instance


@pytest.fixture
def tiny_problem():
    """6 devices x 3 servers, loose capacity — brute-forceable."""
    return random_instance(6, 3, tightness=0.6, seed=101)


@pytest.fixture
def small_problem():
    """12 devices x 3 servers, moderate tightness."""
    return random_instance(12, 3, tightness=0.75, seed=202)


@pytest.fixture
def tight_problem():
    """20 devices x 4 servers at 0.9 tightness — stresses feasibility logic."""
    return gap_instance(20, 4, klass="d", seed=303)


@pytest.fixture(scope="session")
def topo_problem():
    """A topology-backed instance shared across tests (session-scoped:
    building topology + routing is the slow part, and tests only read it)."""
    return topology_instance(
        family="random_geometric",
        n_routers=25,
        n_devices=20,
        n_servers=4,
        tightness=0.7,
        seed=404,
        deadline_s=0.05,
    )

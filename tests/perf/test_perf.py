"""Perf subsystem: probes, history ledger, regression gate, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.errors import ReproError
from repro.perf import (
    PROBES,
    append_record,
    baseline_record,
    check_against_baseline,
    compare_to_baseline,
    load_history,
    make_record,
    measure,
    probe_names,
    record_run,
)

# the two cheapest probes — every test here should stay sub-second
_QUICK = ["solve_greedy", "sim_short"]


class TestMeasure:
    def test_measures_requested_subset(self):
        results = measure(_QUICK, repeats=1)
        assert sorted(results) == sorted(_QUICK)
        assert all(value > 0.0 for value in results.values())

    def test_default_runs_all_probes(self):
        assert probe_names() == list(PROBES)

    def test_unknown_probe_raises(self):
        with pytest.raises(ReproError, match="unknown perf probes"):
            measure(["solve_greedy", "nope"], repeats=1)

    def test_bad_repeats_raises(self):
        with pytest.raises(ReproError, match="repeats"):
            measure(_QUICK, repeats=0)

    def test_serve_probes_registered(self):
        assert "serve_loadtest_p99" in PROBES
        assert "serve_throughput" in PROBES

    def test_shard_probes_registered(self):
        assert "shard_loadtest_p99" in PROBES
        assert "shard_route_throughput" in PROBES

    def test_value_returning_probe_reports_its_value(self, monkeypatch):
        from repro.perf import probes as probes_mod

        values = iter([9.0, 0.25, 0.5, 0.75])  # warm-up, then 3 repeats
        monkeypatch.setitem(probes_mod.PROBES, "value_probe", lambda: next(values))
        results = measure(["value_probe"], repeats=3)
        assert results["value_probe"] == 0.25  # min of returns, not wall time

    def test_serve_loadtest_p99_reports_latency_not_runtime(self):
        import time

        started = time.perf_counter()
        results = measure(["serve_loadtest_p99"], repeats=1)
        wall = time.perf_counter() - started
        # the probe's number is a per-request percentile: far below the
        # wall time of running the whole loadtest twice (warm-up + once)
        assert 0.0 < results["serve_loadtest_p99"] < wall / 2


class TestHistory:
    def _record(self, **overrides):
        record = make_record({"solve_greedy": 0.01}, repeats=1, baseline=False)
        record.update(overrides)
        return record

    def test_make_record_shape(self):
        record = self._record()
        assert record["probes"] == {"solve_greedy": 0.01}
        assert record["repeats"] == 1
        assert isinstance(record["git_sha"], str)
        assert isinstance(record["fingerprint"], str)
        assert "T" in record["recorded_at"]

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        append_record(path, self._record(tag="a"))
        append_record(path, self._record(tag="b"))
        records = load_history(path)
        assert [r["tag"] for r in records] == ["a", "b"]

    def test_load_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_baseline_prefers_last_marked_record(self):
        records = [
            self._record(tag="old", baseline=True),
            self._record(tag="marked", baseline=True),
            self._record(tag="latest"),
        ]
        assert baseline_record(records)["tag"] == "marked"

    def test_baseline_falls_back_to_last_record(self):
        records = [self._record(tag="a"), self._record(tag="b")]
        assert baseline_record(records)["tag"] == "b"
        assert baseline_record([]) is None

    def test_record_run_measures_and_appends(self, tmp_path):
        path = tmp_path / "history.jsonl"
        record = record_run(path, probes=_QUICK, repeats=1, baseline=True)
        assert sorted(record["probes"]) == sorted(_QUICK)
        assert load_history(path) == [record]
        assert json.loads(path.read_text().splitlines()[0]) == record


class TestGate:
    def _baseline(self):
        return make_record({"solve_greedy": 0.1, "sim_short": 0.2}, repeats=1,
                           baseline=True)

    def test_within_allowance_passes(self):
        rows = compare_to_baseline(self._baseline(),
                                   {"solve_greedy": 0.12}, max_regression=0.5)
        (row,) = rows
        assert row["ratio"] == pytest.approx(1.2)
        assert not row["regressed"]

    def test_breach_detected(self):
        (row,) = compare_to_baseline(self._baseline(),
                                     {"solve_greedy": 0.2}, max_regression=0.5)
        assert row["regressed"]

    def test_negative_allowance_fails_everything(self):
        rows = compare_to_baseline(
            self._baseline(),
            {"solve_greedy": 0.0001, "sim_short": 0.0001},
            max_regression=-1.0,
        )
        assert all(row["regressed"] for row in rows)

    def test_new_probe_is_skipped(self):
        rows = compare_to_baseline(self._baseline(),
                                   {"brand_new": 1.0}, max_regression=0.5)
        assert rows == []

    def test_check_against_recorded_history(self, tmp_path):
        path = tmp_path / "history.jsonl"
        record_run(path, probes=_QUICK, repeats=1, baseline=True)
        result = check_against_baseline(path, probes=_QUICK, repeats=1,
                                        max_regression=10.0)
        assert result["regressions"] == []
        breached = check_against_baseline(path, probes=_QUICK, repeats=1,
                                          max_regression=-1.0)
        assert len(breached["regressions"]) == len(_QUICK)

    def test_check_without_history_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no perf history"):
            check_against_baseline(tmp_path / "absent.jsonl", probes=_QUICK,
                                   repeats=1)


class TestCli:
    def test_record_check_list_round_trip(self, tmp_path, capsys):
        history = str(tmp_path / "history.jsonl")
        assert main(["perf", "record", "--history", history, "--probes",
                     ",".join(_QUICK), "--repeats", "1", "--baseline"]) == 0
        assert main(["perf", "check", "--history", history, "--probes",
                     ",".join(_QUICK), "--repeats", "1",
                     "--max-regression", "10.0"]) == 0
        assert "perf check passed" in capsys.readouterr().out
        assert main(["perf", "list", "--history", history]) == 0

    def test_breached_check_exits_3(self, tmp_path, capsys):
        history = str(tmp_path / "history.jsonl")
        main(["perf", "record", "--history", history, "--probes",
              "solve_greedy", "--repeats", "1", "--baseline"])
        code = main(["perf", "check", "--history", history, "--probes",
                     "solve_greedy", "--repeats", "1",
                     "--max-regression", "-1.0"])
        assert code == 3
        assert "perf check FAILED" in capsys.readouterr().out

    def test_list_without_history_fails(self, tmp_path):
        assert main(["perf", "list", "--history",
                     str(tmp_path / "absent.jsonl")]) == 1

"""Tests for canonical hashing and cache-key stability."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine.hashing import canonical_json, code_fingerprint, job_key, sha256_hex
from repro.engine.jobspec import JobSpec
from repro.errors import EngineError


def spec(**overrides) -> JobSpec:
    base = dict(
        experiment="f2",
        fn="repro.experiments.f2_devices:cell",
        params={"n_devices": 10, "solver_kwargs": {"tacc": {"episodes": 15}}},
        seed=42,
        label="f2 n=10",
    )
    base.update(overrides)
    return JobSpec(**base)


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_nan_and_inf_are_spelled_out(self):
        text = canonical_json({"x": math.nan, "y": math.inf, "z": -math.inf})
        assert '"nan"' in text and '"inf"' in text and '"-inf"' in text
        # and deterministically so
        assert text == canonical_json({"z": -math.inf, "y": math.inf, "x": math.nan})

    def test_tuples_and_lists_equal(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_numpy_scalars(self):
        assert canonical_json(np.int64(3)) == canonical_json(3)
        assert canonical_json(np.float64(0.5)) == canonical_json(0.5)

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(EngineError):
            canonical_json(object())

    def test_sha256_hex_is_stable(self):
        assert sha256_hex("abc") == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )


class TestJobKey:
    def test_deterministic_across_calls(self):
        assert job_key(spec()) == job_key(spec())

    def test_label_excluded(self):
        assert job_key(spec(label="a")) == job_key(spec(label="b"))

    def test_params_change_key(self):
        assert job_key(spec()) != job_key(spec(params={"n_devices": 11}))

    def test_nested_kwargs_change_key(self):
        other = spec(
            params={"n_devices": 10, "solver_kwargs": {"tacc": {"episodes": 16}}}
        )
        assert job_key(spec()) != job_key(other)

    def test_seed_changes_key(self):
        assert job_key(spec()) != job_key(spec(seed=43))

    def test_fn_changes_key(self):
        assert job_key(spec()) != job_key(spec(fn="repro.experiments.f3_servers:cell"))

    def test_fingerprint_changes_key(self):
        assert job_key(spec()) != job_key(spec(), fingerprint="other-code-generation")

    def test_default_fingerprint_tracks_version(self):
        assert code_fingerprint().startswith("repro-")
        assert "/cache-v" in code_fingerprint()

"""Tests for the content-addressed result cache."""

from __future__ import annotations

import json

from repro.engine.cache import NullCache, ResultCache
from repro.engine.hashing import job_key
from repro.engine.jobspec import JobSpec

SPEC = JobSpec(
    experiment="syn",
    fn="repro.engine.synthetic:cpu_cell",
    params={"iterations": 10},
    seed=5,
)
ROWS = [{"cell": 0, "seed": 5, "value": 0.25}]


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = job_key(SPEC)
        assert cache.get(key) is None  # cold
        cache.put(key, SPEC, ROWS)
        assert cache.get(key) == ROWS
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1
        assert len(cache) == 1

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = job_key(SPEC)
        path = cache.put(key, SPEC, ROWS)
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"

    def test_entry_self_describes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = job_key(SPEC)
        entry = json.loads(cache.put(key, SPEC, ROWS).read_text())
        assert entry["experiment"] == "syn"
        assert entry["seed"] == 5
        assert entry["params"] == {"iterations": 10}
        assert entry["rows"] == ROWS

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = job_key(SPEC)
        path = cache.put(key, SPEC, ROWS)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # removed so a recompute can replace it

    def test_tampered_rows_fail_checksum(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = job_key(SPEC)
        path = cache.put(key, SPEC, ROWS)
        entry = json.loads(path.read_text())
        entry["rows"][0]["value"] = 0.999  # silent bit-flip
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_wrong_structure_is_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = job_key(SPEC)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]))  # not an entry dict
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_hit_ratio(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = job_key(SPEC)
        cache.get(key)
        cache.put(key, SPEC, ROWS)
        cache.get(key)
        assert cache.stats.hit_ratio == 0.5

    def test_empty_stats_ratio_is_zero(self):
        assert NullCache().stats.hit_ratio == 0.0


class TestNullCache:
    def test_never_hits_never_writes(self, tmp_path):
        cache = NullCache()
        key = job_key(SPEC)
        cache.put(key, SPEC, ROWS)
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        assert len(cache) == 0

"""Tests for the throttled progress reporter."""

from __future__ import annotations

import io

from repro.engine.progress import ProgressReporter


class TestProgressReporter:
    def test_final_update_always_emits(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=2, stream=stream, min_interval_s=999.0)
        reporter.update()
        reporter.update(cached=True)
        lines = stream.getvalue().strip().splitlines()
        assert lines[-1].startswith("engine: 2/2 jobs (cached 1, failed 0)")

    def test_throttles_intermediate_updates(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=100, stream=stream, min_interval_s=999.0)
        for _ in range(99):
            reporter.update()
        # nothing but the first line (emitted at interval start) so far
        assert len(stream.getvalue().strip().splitlines()) <= 1
        reporter.update()
        assert "100/100" in stream.getvalue()

    def test_disabled_reporter_is_silent(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, enabled=False, stream=stream)
        reporter.update(failed=True)
        assert stream.getvalue() == ""
        assert reporter.failed == 1  # still counts

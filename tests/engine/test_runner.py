"""Tests for the cache-aware engine front door (run_jobs)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.engine import EngineOptions, JobSpec, ResultCache, job_key, run_jobs
from repro.errors import EngineError


def specs(n: int = 4) -> "list[JobSpec]":
    return [
        JobSpec(
            experiment="syn",
            fn="repro.engine.synthetic:cpu_cell",
            params={"iterations": 400, "cell": i},
            seed=50 + i,
            label=f"cpu {i}",
        )
        for i in range(n)
    ]


class TestRunJobs:
    def test_default_options_serial_uncached(self):
        rows = run_jobs(specs(3))
        assert len(rows) == 3
        assert [r[0]["cell"] for r in rows] == [0, 1, 2]

    def test_serial_parallel_cached_identical(self, tmp_path):
        grid = specs(6)
        serial = run_jobs(grid, EngineOptions(jobs=1))
        parallel = run_jobs(
            grid, EngineOptions(jobs=4, cache_dir=tmp_path / "cache")
        )
        cached = EngineOptions(jobs=4, cache_dir=tmp_path / "cache")
        second = run_jobs(grid, cached)
        assert serial == parallel == second
        assert cached.last_report.cache.hits == 6
        assert cached.last_report.cache.hit_ratio == 1.0

    def test_no_cache_overrides_cache_dir(self, tmp_path):
        options = EngineOptions(jobs=1, cache_dir=tmp_path / "cache", no_cache=True)
        run_jobs(specs(2), options)
        assert not (tmp_path / "cache").exists()
        assert options.last_report.cache.hits == 0

    def test_corrupt_entry_recomputed_not_returned(self, tmp_path):
        grid = specs(2)
        options = EngineOptions(jobs=1, cache_dir=tmp_path / "cache")
        first = run_jobs(grid, options)
        # flip a value inside one entry without updating its checksum
        cache = ResultCache(tmp_path / "cache")
        path = cache.path_for(job_key(grid[0]))
        entry = json.loads(path.read_text())
        entry["rows"][0]["value"] = -123.0
        path.write_text(json.dumps(entry))
        again = EngineOptions(jobs=1, cache_dir=tmp_path / "cache")
        second = run_jobs(grid, again)
        assert second == first  # the poisoned value never surfaces
        assert again.last_report.cache.corrupt == 1
        assert again.last_report.cache.hits == 1  # the untouched entry

    def test_failures_raise_engine_error_listing_jobs(self):
        grid = specs(1) + [
            JobSpec(
                experiment="syn",
                fn="repro.engine.synthetic:failing_cell",
                seed=9,
                label="boom",
            )
        ]
        with pytest.raises(EngineError, match="boom"):
            run_jobs(grid, EngineOptions(jobs=1))

    def test_partial_results_cached_before_failure(self, tmp_path):
        grid = specs(2) + [
            JobSpec(experiment="syn", fn="repro.engine.synthetic:failing_cell", seed=1)
        ]
        options = EngineOptions(jobs=1, cache_dir=tmp_path / "cache")
        with pytest.raises(EngineError):
            run_jobs(grid, options)
        # the two good cells were persisted, so a fixed re-run resumes
        retry = EngineOptions(jobs=1, cache_dir=tmp_path / "cache")
        rows = run_jobs(grid[:2], retry)
        assert len(rows) == 2
        assert retry.last_report.cache.hits == 2

    def test_rejects_nonpositive_jobs(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            run_jobs(specs(1), EngineOptions(jobs=0))

    def test_report_fields(self, tmp_path):
        options = EngineOptions(jobs=2, cache_dir=tmp_path / "cache")
        run_jobs(specs(4), options)
        report = options.last_report
        assert report.scheduled == 4
        assert report.completed == 4
        assert report.failed == 0
        assert report.workers == 2
        assert 0.0 <= report.worker_utilization <= 1.0
        summary = report.summary()
        assert "4 jobs" in summary and "cache hits: 0" in summary

    def test_obs_counters_recorded(self, tmp_path):
        with obs.observed() as session:
            options = EngineOptions(jobs=1, cache_dir=tmp_path / "cache")
            run_jobs(specs(3), options)
            run_jobs(specs(3), EngineOptions(jobs=1, cache_dir=tmp_path / "cache"))
            snapshot = session.snapshot()
        counters = snapshot["counters"]
        assert counters["engine/jobs_scheduled"] == 6.0
        assert counters["engine/jobs_completed"] == 6.0
        assert counters["engine/cache_misses"] == 3.0
        assert counters["engine/cache_hits"] == 3.0
        assert "engine/job_runtime_s" in snapshot["timers"]


class TestExperimentDeterminism:
    """A real experiment produces identical tables on every engine path."""

    def test_f2_serial_vs_parallel_vs_cached(self, tmp_path, monkeypatch):
        from repro.experiments import configs, f2_devices
        from repro.experiments.configs import Scale

        micro = Scale(
            repeats=2,
            params={"n_devices": [8], "n_servers": 2, "n_routers": 10},
            solver_kwargs={
                "tacc": {"episodes": 10},
                "qlearning": {"episodes": 10},
                "annealing": {"steps": 200},
                "genetic": {"population": 6, "generations": 4},
            },
        )
        monkeypatch.setattr(
            configs, "_CONFIGS", {"f2": {"quick": micro, "full": micro}}
        )
        serial = f2_devices.run("quick", seed=3)
        parallel = f2_devices.run(
            "quick",
            seed=3,
            engine=EngineOptions(jobs=4, cache_dir=tmp_path / "cache"),
        )
        cached = EngineOptions(jobs=4, cache_dir=tmp_path / "cache")
        second = f2_devices.run("quick", seed=3, engine=cached)
        assert serial.rows == parallel.rows == second.rows
        assert serial.columns == parallel.columns
        assert cached.last_report.cache.hit_ratio == 1.0

"""Cross-process telemetry equality: serial and pooled runs agree.

The ISSUE-4 acceptance test: a real experiment grid run with
``--jobs 2 --obs`` must report the same merged solver/sim totals as a
serial run.  Counters and histograms compare exactly (the cells are
deterministic and two worker states merge commutatively); timers
compare structurally (sample counts), since their values are
wall-clock.
"""

from __future__ import annotations

from repro import obs
from repro.engine import EngineOptions, JobSpec, run_jobs
from repro.experiments.configs import Scale

#: micro f5 config: 2 repeat cells, tiny topology, short DES replay —
#: exercises both solver/* and sim/* instruments in a few seconds
_MICRO_F5 = Scale(
    repeats=2,
    params={
        "rate_scales": [1.5],
        "n_devices": 8,
        "n_servers": 2,
        "n_routers": 10,
        "duration_s": 4.0,
        "deadline_s": 0.04,
    },
    solver_kwargs={
        "tacc": {"episodes": 10},
        "qlearning": {"episodes": 10},
        "annealing": {"steps": 200},
        "genetic": {"population": 6, "generations": 4},
    },
)


def _run_f5(monkeypatch, engine):
    from repro.experiments import configs, f5_deadline

    monkeypatch.setattr(
        configs, "_CONFIGS", {"f5": {"quick": _MICRO_F5, "full": _MICRO_F5}}
    )
    with obs.observed() as session:
        table = f5_deadline.run("quick", seed=5, engine=engine)
        return table, session.snapshot(), session.spans()


def _prefixed(group: dict, prefixes=("solver/", "sim/", "rl/")) -> dict:
    return {
        key: value
        for key, value in group.items()
        if key.startswith(prefixes)
    }


class TestSerialParallelObsEquality:
    def test_f5_serial_equals_two_workers(self, monkeypatch):
        serial_table, serial, serial_spans = _run_f5(monkeypatch, engine=None)
        parallel_table, parallel, parallel_spans = _run_f5(
            monkeypatch, engine=EngineOptions(jobs=2)
        )
        # the rows themselves are identical — determinism baseline
        assert serial_table.rows == parallel_table.rows

        # counters: exact equality, solver/sim/rl instruments all present
        serial_counters = _prefixed(serial["counters"])
        parallel_counters = _prefixed(parallel["counters"])
        assert serial_counters, "expected solver/sim counters to be collected"
        assert any(key.startswith("solver/") for key in serial_counters)
        assert any(key.startswith("sim/") for key in serial_counters)
        assert serial_counters == parallel_counters

        # histograms: full summaries agree (count, sum, quantiles) —
        # DES observations are virtual-time, hence deterministic
        serial_hists = _prefixed(serial["histograms"])
        parallel_hists = _prefixed(parallel["histograms"])
        assert serial_hists, "expected sim histograms to be collected"
        assert serial_hists == parallel_hists

        # timers: wall-clock values differ run to run, but the sample
        # structure (which timers exist, how many samples each) must match
        serial_timers = _prefixed(serial["timers"])
        parallel_timers = _prefixed(parallel["timers"])
        assert set(serial_timers) == set(parallel_timers)
        for key, summary in serial_timers.items():
            assert summary["count"] == parallel_timers[key]["count"], key

        # gauges are last-write-wins; presence must agree
        assert set(_prefixed(serial["gauges"])) == set(_prefixed(parallel["gauges"]))

        # worker span trees are adopted into the parent tracer
        assert len(serial_spans) == len(parallel_spans) > 0
        assert sorted(span.name for span in serial_spans) == sorted(
            span.name for span in parallel_spans
        )

    def test_cache_hits_contribute_no_samples(self, tmp_path, monkeypatch):
        engine = EngineOptions(jobs=2, cache_dir=tmp_path / "cache")
        _run_f5(monkeypatch, engine=engine)
        with obs.observed() as session:
            from repro.experiments import f5_deadline

            f5_deadline.run("quick", seed=5, engine=engine)
            cached = session.snapshot()
        assert engine.last_report.cache.hit_ratio == 1.0
        # everything came from the cache: no cells ran, no solver/sim samples
        assert not _prefixed(cached["counters"])
        assert not _prefixed(cached["histograms"])


class TestEngineLedgerEvents:
    def _specs(self):
        return [
            JobSpec(
                experiment="ledger-test",
                fn="repro.engine.synthetic:cpu_cell",
                params={"iterations": 300, "cell": index},
                seed=index,
                label=f"cell {index}",
            )
            for index in range(3)
        ]

    def test_engine_emits_lifecycle_events(self, tmp_path):
        from repro.obs import runtime as obs_runtime
        from repro.obs.ledger import read_ledger

        path = tmp_path / "ledger.jsonl"
        with obs_runtime.ledgered(path, run_id="t"):
            run_jobs(self._specs(), EngineOptions(jobs=1))
        events = [record["event"] for record in read_ledger(path)]
        assert events[0] == "run_start"
        assert events[-1] == "run_end"
        assert events.count("job_start") == 3
        assert events.count("job_end") == 3

    def test_serial_and_pooled_ledgers_agree(self, tmp_path):
        from collections import Counter

        from repro.obs import runtime as obs_runtime
        from repro.obs.ledger import read_ledger

        counts = {}
        for label, jobs in (("serial", 1), ("pooled", 2)):
            path = tmp_path / f"{label}.jsonl"
            with obs_runtime.ledgered(path, run_id=label):
                run_jobs(self._specs(), EngineOptions(jobs=jobs))
            counts[label] = Counter(r["event"] for r in read_ledger(path))
        assert counts["serial"] == counts["pooled"]

    def test_cache_hits_logged(self, tmp_path):
        from repro.obs import runtime as obs_runtime
        from repro.obs.ledger import read_ledger

        engine = EngineOptions(jobs=1, cache_dir=tmp_path / "cache")
        run_jobs(self._specs(), engine)
        path = tmp_path / "ledger.jsonl"
        with obs_runtime.ledgered(path, run_id="t"):
            run_jobs(self._specs(), engine)
        events = [record["event"] for record in read_ledger(path)]
        assert events.count("cache_hit") == 3
        assert events.count("job_start") == 0


class TestEngineProfiling:
    def test_profile_collected_and_merged(self):
        options = EngineOptions(jobs=2, profile=True)
        run_jobs(
            [
                JobSpec(
                    experiment="profile-test",
                    fn="repro.engine.synthetic:cpu_cell",
                    params={"iterations": 300, "cell": index},
                    seed=index,
                )
                for index in range(2)
            ],
            options,
        )
        assert options.last_profile
        assert any("execute_spec" in key for key in options.last_profile)
        for ncalls, tottime, cumtime in options.last_profile.values():
            assert ncalls >= 1 and tottime >= 0.0 and cumtime >= 0.0

    def test_profiled_runs_are_cache_compatible(self, tmp_path):
        spec = JobSpec(
            experiment="profile-test",
            fn="repro.engine.synthetic:cpu_cell",
            params={"iterations": 300, "cell": 1},
            seed=1,
        )
        profiled = EngineOptions(jobs=1, cache_dir=tmp_path / "c", profile=True)
        plain = EngineOptions(jobs=1, cache_dir=tmp_path / "c")
        first = run_jobs([spec], profiled)
        second = run_jobs([spec], plain)
        assert first == second
        assert plain.last_report.cache.hits == 1

"""Tests for the worker pool: inline vs forked, failures, timeouts."""

from __future__ import annotations

import pytest

from repro.engine.jobspec import JobSpec
from repro.engine.pool import run_jobs_pooled


def cpu_specs(n: int) -> "list[JobSpec]":
    return [
        JobSpec(
            experiment="syn",
            fn="repro.engine.synthetic:cpu_cell",
            params={"iterations": 500, "cell": i},
            seed=100 + i,
            label=f"cpu {i}",
        )
        for i in range(n)
    ]


class TestRunJobsPooled:
    def test_inline_results_in_spec_order(self):
        outcomes = run_jobs_pooled(cpu_specs(4), workers=1)
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert all(o.ok for o in outcomes)
        assert [o.rows[0]["cell"] for o in outcomes] == [0, 1, 2, 3]

    def test_pooled_matches_inline(self):
        specs = cpu_specs(6)
        inline = run_jobs_pooled(specs, workers=1)
        pooled = run_jobs_pooled(specs, workers=4)
        assert [o.rows for o in inline] == [o.rows for o in pooled]

    def test_on_outcome_fires_once_per_job(self):
        seen = []
        run_jobs_pooled(cpu_specs(5), workers=2, on_outcome=lambda o: seen.append(o.index))
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_failure_is_captured_not_raised(self):
        specs = cpu_specs(1) + [
            JobSpec(experiment="syn", fn="repro.engine.synthetic:failing_cell", seed=9)
        ]
        outcomes = run_jobs_pooled(specs, workers=2)
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert "synthetic failure (seed 9)" in outcomes[1].error

    def test_failure_in_inline_mode(self):
        spec = JobSpec(experiment="syn", fn="repro.engine.synthetic:failing_cell", seed=3)
        (outcome,) = run_jobs_pooled([spec], workers=1)
        assert not outcome.ok
        assert "RuntimeError" in outcome.error

    @pytest.mark.parametrize("workers", [1, 2])
    def test_timeout_interrupts_hanging_cell(self, workers):
        specs = [
            JobSpec(
                experiment="syn",
                fn="repro.engine.synthetic:failing_cell",
                params={"hang_s": 30.0},
                seed=1,
                label="hang",
            )
        ] * workers  # at least one per worker mode
        outcomes = run_jobs_pooled(specs, workers=workers, timeout_s=0.2)
        assert all(not o.ok for o in outcomes)
        assert all("timeout" in o.error.lower() for o in outcomes)
        assert all(o.duration_s < 5.0 for o in outcomes)

    def test_durations_recorded(self):
        (outcome,) = run_jobs_pooled(cpu_specs(1), workers=1)
        assert outcome.duration_s >= 0.0
        assert outcome.queue_wait_s >= 0.0

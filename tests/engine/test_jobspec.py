"""Tests for JobSpec resolution and row normalization."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine.jobspec import (
    JobSpec,
    execute_spec,
    finite_or_nan,
    normalize_rows,
    normalize_value,
)
from repro.errors import EngineError, ValidationError


class TestJobSpec:
    def test_requires_module_colon_callable(self):
        with pytest.raises(ValidationError):
            JobSpec(experiment="x", fn="no_colon_here")

    def test_requires_dict_params(self):
        with pytest.raises(ValidationError):
            JobSpec(experiment="x", fn="m:f", params=[1, 2])

    def test_resolve_finds_cell(self):
        spec = JobSpec(experiment="syn", fn="repro.engine.synthetic:cpu_cell")
        assert callable(spec.resolve())

    def test_resolve_unknown_module(self):
        spec = JobSpec(experiment="syn", fn="repro.no_such_module:cell")
        with pytest.raises(EngineError):
            spec.resolve()

    def test_resolve_unknown_attribute(self):
        spec = JobSpec(experiment="syn", fn="repro.engine.synthetic:no_such_cell")
        with pytest.raises(EngineError):
            spec.resolve()

    def test_resolve_non_callable(self):
        spec = JobSpec(experiment="syn", fn="repro.engine.jobspec:JobSpec.__doc__")
        with pytest.raises(EngineError):
            spec.resolve()

    def test_describe_prefers_label(self):
        spec = JobSpec(experiment="f2", fn="m:f", label="f2 n=10 r=0")
        assert spec.describe() == "f2 n=10 r=0"
        bare = JobSpec(experiment="f2", fn="repro.engine.synthetic:cpu_cell")
        assert "f2" in bare.describe()

    def test_execute_spec_runs_and_normalizes(self):
        spec = JobSpec(
            experiment="syn",
            fn="repro.engine.synthetic:cpu_cell",
            params={"iterations": 100, "cell": 3},
            seed=7,
        )
        rows = execute_spec(spec)
        assert rows == execute_spec(spec)
        assert rows[0]["cell"] == 3
        assert isinstance(rows[0]["value"], float)


class TestNormalize:
    def test_numpy_scalars_become_native(self):
        assert normalize_value(np.int64(4)) == 4
        assert type(normalize_value(np.int64(4))) is int
        assert type(normalize_value(np.float64(0.5))) is float
        assert normalize_value(np.bool_(True)) is True

    def test_tuples_become_lists(self):
        assert normalize_value((1, np.int32(2))) == [1, 2]

    def test_passthrough_scalars(self):
        for value in ("s", True, 3, 2.5, None):
            assert normalize_value(value) == value

    def test_rejects_non_scalar(self):
        with pytest.raises(EngineError):
            normalize_value(object())

    def test_normalize_rows_shape_checks(self):
        with pytest.raises(ValidationError):
            normalize_rows({"not": "a list"})
        with pytest.raises(ValidationError):
            normalize_rows(["not a dict"])
        assert normalize_rows([{"a": np.float32(1.0)}]) == [{"a": 1.0}]

    def test_finite_or_nan(self):
        assert finite_or_nan(2.0) == 2.0
        assert math.isnan(finite_or_nan(math.inf))
        assert math.isnan(finite_or_nan(math.nan))

"""ServiceState: protocol ops, epochs, and the snapshot/swap handshake."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InfeasibleSolutionError, ValidationError
from repro.model.instances import random_instance
from repro.model.solution import UNASSIGNED
from repro.serve.state import ServiceState


@pytest.fixture
def state():
    return ServiceState(random_instance(20, 4, tightness=0.6, seed=5))


class TestProtocolOps:
    def test_assign_then_release_roundtrip(self, state):
        server = state.assign(3)
        assert 0 <= server < state.problem.n_servers
        assert state.release(3) == server
        assert state.vector[3] == UNASSIGNED

    def test_double_assign_is_protocol_misuse(self, state):
        state.assign(3)
        with pytest.raises(InfeasibleSolutionError, match="already assigned"):
            state.assign(3)

    def test_out_of_range_device_rejected(self, state):
        with pytest.raises(ValidationError, match="out of range"):
            state.assign(99)

    def test_stats_shape(self, state):
        state.assign(0)
        stats = state.stats()
        assert stats["active_devices"] == 1
        assert stats["assigns_total"] == 1
        assert stats["releases_total"] == 0
        assert stats["epoch"] == 1
        assert stats["total_delay_ms"] > 0
        assert 0.0 <= stats["mean_utilization"] <= stats["max_utilization"] <= 1.0


class TestEpochAndSwap:
    def test_every_mutation_bumps_epoch(self, state):
        assert state.epoch == 0
        state.assign(0)
        state.assign(1)
        state.release(0)
        assert state.epoch == 3

    def test_swap_applies_when_epoch_unchanged(self, state):
        state.assign(0)
        epoch, vector = state.snapshot()
        moved = vector.copy()
        moved[0] = (moved[0] + 1) % state.problem.n_servers
        assert state.try_swap(epoch, moved)
        assert state.vector[0] == moved[0]
        assert state.epoch == epoch + 1

    def test_stale_swap_rejected(self, state):
        state.assign(0)
        epoch, vector = state.snapshot()
        state.assign(1)  # interleaved mutation invalidates the snapshot
        assert not state.try_swap(epoch, vector)

    def test_swap_vector_length_validated(self, state):
        epoch, _ = state.snapshot()
        with pytest.raises(ValidationError, match="length"):
            state.try_swap(epoch, np.zeros(3, dtype=np.int64))

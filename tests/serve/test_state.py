"""ServiceState: protocol ops, epochs, and the snapshot/swap handshake."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InfeasibleSolutionError, ValidationError
from repro.model.instances import random_instance
from repro.model.solution import UNASSIGNED
from repro.serve.state import ServiceState


@pytest.fixture
def state():
    return ServiceState(random_instance(20, 4, tightness=0.6, seed=5))


class TestProtocolOps:
    def test_assign_then_release_roundtrip(self, state):
        server = state.assign(3)
        assert 0 <= server < state.problem.n_servers
        assert state.release(3) == server
        assert state.vector[3] == UNASSIGNED

    def test_double_assign_is_protocol_misuse(self, state):
        state.assign(3)
        with pytest.raises(InfeasibleSolutionError, match="already assigned"):
            state.assign(3)

    def test_out_of_range_device_rejected(self, state):
        with pytest.raises(ValidationError, match="out of range"):
            state.assign(99)

    def test_stats_shape(self, state):
        state.assign(0)
        stats = state.stats()
        assert stats["active_devices"] == 1
        assert stats["assigns_total"] == 1
        assert stats["releases_total"] == 0
        assert stats["epoch"] == 1
        assert stats["total_delay_ms"] > 0
        assert 0.0 <= stats["mean_utilization"] <= stats["max_utilization"] <= 1.0


class TestEpochAndSwap:
    def test_every_mutation_bumps_epoch(self, state):
        assert state.epoch == 0
        state.assign(0)
        state.assign(1)
        state.release(0)
        assert state.epoch == 3

    def test_swap_applies_when_epoch_unchanged(self, state):
        state.assign(0)
        epoch, vector = state.snapshot()
        moved = vector.copy()
        moved[0] = (moved[0] + 1) % state.problem.n_servers
        assert state.try_swap(epoch, moved)
        assert state.vector[0] == moved[0]
        assert state.epoch == epoch + 1

    def test_stale_swap_rejected(self, state):
        state.assign(0)
        epoch, vector = state.snapshot()
        state.assign(1)  # interleaved mutation invalidates the snapshot
        assert not state.try_swap(epoch, vector)

    def test_swap_vector_length_validated(self, state):
        epoch, _ = state.snapshot()
        with pytest.raises(ValidationError, match="length"):
            state.try_swap(epoch, np.zeros(3, dtype=np.int64))


class TestIncrementalTotalDelay:
    def test_tracks_recomputation_through_mutations(self, state):
        rng = np.random.default_rng(11)
        held: "list[int]" = []
        for _ in range(200):
            if held and rng.random() < 0.45:
                state.release(held.pop(int(rng.integers(len(held)))))
            else:
                candidates = [d for d in range(state.problem.n_devices)
                              if d not in held]
                if not candidates:
                    continue
                device = candidates[int(rng.integers(len(candidates)))]
                state.assign(device)
                held.append(device)
            assert state.total_delay_s == pytest.approx(
                state.recompute_total_delay_s(), rel=1e-12, abs=1e-15
            )

    def test_swap_reanchors_the_sum(self, state):
        state.assign(0)
        state.assign(1)
        epoch, vector = state.snapshot()
        moved = vector.copy()
        moved[0] = (moved[0] + 1) % state.problem.n_servers
        assert state.try_swap(epoch, moved)
        assert state.total_delay_s == pytest.approx(
            state.recompute_total_delay_s(), rel=1e-12
        )

    def test_empty_state_has_zero_delay(self, state):
        assert state.total_delay_s == 0.0
        state.assign(2)
        state.release(2)
        assert state.total_delay_s == pytest.approx(0.0, abs=1e-12)


class TestMigrateOut:
    def test_releases_requested_devices_on_matching_epoch(self, state):
        state.assign(0)
        state.assign(1)
        state.assign(2)
        released = state.migrate_out([0, 2], state.epoch)
        assert released == [0, 2]
        assert state.vector[0] == UNASSIGNED
        assert state.vector[2] == UNASSIGNED
        assert state.vector[1] != UNASSIGNED
        assert state.total_delay_s == pytest.approx(
            state.recompute_total_delay_s(), rel=1e-12
        )

    def test_stale_epoch_rejected(self, state):
        state.assign(0)
        epoch = state.epoch
        state.assign(1)  # foreground traffic invalidates the snapshot
        assert state.migrate_out([0], epoch) is None
        assert state.vector[0] != UNASSIGNED

    def test_unassigned_devices_skipped_not_errors(self, state):
        state.assign(0)
        released = state.migrate_out([0, 5, 99999], state.epoch)
        assert released == [0]

    def test_empty_batch_is_a_noop(self, state):
        state.assign(0)
        epoch = state.epoch
        assert state.migrate_out([5], epoch) == []
        assert state.epoch == epoch  # nothing held, nothing swapped

"""Micro-batcher flush triggers: size, deadline, drain."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.batcher import FLUSH_REASONS, MicroBatcher


def run(coro):
    return asyncio.run(coro)


class TestFlushTriggers:
    def test_size_flush(self):
        async def scenario():
            queue: asyncio.Queue = asyncio.Queue()
            for item in range(8):
                queue.put_nowait(item)
            batcher = MicroBatcher(queue, max_batch=4, max_wait_s=10.0)
            return await batcher.next_batch()

        batch, reason = run(scenario())
        assert batch == [0, 1, 2, 3]
        assert reason == "size"

    def test_deadline_flush_releases_partial_batch(self):
        async def scenario():
            queue: asyncio.Queue = asyncio.Queue()
            queue.put_nowait("only")
            batcher = MicroBatcher(queue, max_batch=64, max_wait_s=0.01)
            return await batcher.next_batch()

        batch, reason = run(scenario())
        assert batch == ["only"]
        assert reason == "deadline"

    def test_drain_flush_on_close(self):
        async def scenario():
            queue: asyncio.Queue = asyncio.Queue()
            queue.put_nowait("pending")
            batcher = MicroBatcher(queue, max_batch=64, max_wait_s=10.0)
            await batcher.close()
            first = await batcher.next_batch()
            second = await batcher.next_batch()
            return first, second

        first, second = run(scenario())
        assert first == (["pending"], "drain")
        assert second is None

    def test_close_with_empty_queue_returns_none(self):
        async def scenario():
            queue: asyncio.Queue = asyncio.Queue()
            batcher = MicroBatcher(queue, max_batch=4, max_wait_s=10.0)
            await batcher.close()
            return await batcher.next_batch()

        assert run(scenario()) is None

    def test_order_is_fifo_across_batches(self):
        async def scenario():
            queue: asyncio.Queue = asyncio.Queue()
            for item in range(10):
                queue.put_nowait(item)
            batcher = MicroBatcher(queue, max_batch=3, max_wait_s=0.001)
            await batcher.close()
            seen = []
            while (flushed := await batcher.next_batch()) is not None:
                seen.extend(flushed[0])
            return seen

        assert run(scenario()) == list(range(10))

    def test_reasons_catalog(self):
        assert FLUSH_REASONS == ("size", "deadline", "drain")


class TestValidation:
    def test_bad_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(asyncio.Queue(), max_batch=0)

    def test_bad_max_wait(self):
        with pytest.raises(ValueError, match="max_wait_s"):
            MicroBatcher(asyncio.Queue(), max_wait_s=-1.0)

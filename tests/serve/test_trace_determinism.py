"""Enabling tracing never changes results — only observes them.

The tracing PR's regression gate: the span recorder must not feed back
into scheduling or state.  Traced and untraced runs of the same seeded
workload produce identical assignment vectors, statuses, wire bytes,
and cached-experiment row bytes, across the serial, parallel-engine,
and sharded paths.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import replace

import numpy as np

from repro.engine import EngineOptions, JobSpec, run_jobs
from repro.model.instances import random_instance, topology_instance
from repro.obs import runtime as obs_runtime
from repro.obs.trace import load_trace_dir, new_trace_id
from repro.serve import (
    AssignmentService,
    InProcessClient,
    Request,
    ServiceConfig,
    drive_trace,
    generate_trace,
)
from repro.shard.backend import CircuitBreaker, InProcessBackend
from repro.shard.partition import build_plan
from repro.shard.router import ShardRouter


def run(coro):
    return asyncio.run(coro)


async def _serve_trace(problem, trace):
    service = AssignmentService(
        problem, ServiceConfig(max_batch=16, max_wait_s=0.0005,
                               max_queue=100_000)
    )
    await service.start()
    try:
        responses = await drive_trace(InProcessClient(service), trace)
    finally:
        await service.stop()
    return service.state.vector, [r.status for r in responses]


async def _shard_trace(problem, trace, n_shards=3):
    plan = build_plan(problem, n_shards)
    services, backends = {}, {}
    for spec in plan.shards:
        service = AssignmentService(
            plan.subproblem(problem, spec.name), ServiceConfig(max_wait_s=0.0)
        )
        await service.start()
        services[spec.name] = service
        backends[spec.name] = InProcessBackend(
            spec.name, service, CircuitBreaker()
        )
    router = ShardRouter(plan, backends)
    await router.start()
    recorder = obs_runtime.spans()
    try:
        statuses = []
        for request in trace:
            if recorder.enabled:
                context = recorder.new_context(
                    new_trace_id(0, int(request.id))
                )
                request = replace(request, trace=context.to_dict())
            statuses.append((await router.request(request)).status)
        vectors = {
            spec.name: services[spec.name].state.vector.tolist()
            for spec in plan.shards
        }
    finally:
        await router.stop()
        for service in services.values():
            await service.stop()
    return vectors, statuses


class TestServePath:
    def test_traced_run_matches_untraced(self, tmp_path):
        problem = random_instance(40, 5, tightness=0.7, seed=2)
        trace = generate_trace(problem.n_devices, 400, seed=3)
        plain_vector, plain_statuses = run(_serve_trace(problem, trace))
        with obs_runtime.traced(tmp_path, "service"):
            traced_vector, traced_statuses = run(_serve_trace(problem, trace))
        assert traced_statuses == plain_statuses
        np.testing.assert_array_equal(traced_vector, plain_vector)
        assert load_trace_dir(tmp_path)  # the traced run really traced

    def test_sampling_rate_does_not_change_results(self, tmp_path):
        problem = random_instance(30, 4, tightness=0.7, seed=5)
        trace = generate_trace(problem.n_devices, 200, seed=5)
        results = []
        for sample, label in ((1.0, "all"), (0.25, "some"), (0.0, "none")):
            with obs_runtime.traced(tmp_path / label, "service",
                                    sample=sample):
                vector, statuses = run(_serve_trace(problem, trace))
            results.append((vector.tolist(), statuses))
        assert results[0] == results[1] == results[2]


class TestShardedPath:
    def test_traced_cluster_matches_untraced(self, tmp_path):
        problem = topology_instance(
            family="edge_hierarchy", n_routers=40, n_devices=60,
            n_servers=8, tightness=0.7, seed=3,
        )
        trace = generate_trace(problem.n_devices, 300, seed=7)
        plain = run(_shard_trace(problem, trace))
        with obs_runtime.traced(tmp_path, "router"):
            traced = run(_shard_trace(problem, trace))
        assert traced == plain
        assert load_trace_dir(tmp_path)


class TestWireBytes:
    def test_untraced_request_bytes_are_unchanged(self):
        # pinned: an untraced request must serialize with no trace key
        # at all, so untraced runs emit byte-identical protocol lines
        request = Request(op="assign", id=7, device=12, priority="high")
        line = json.dumps(request.to_dict(), sort_keys=True)
        assert line == (
            '{"device": 12, "id": 7, "op": "assign", "priority": "high"}'
        )

    def test_stripping_the_trace_field_restores_the_bytes(self):
        plain = Request(op="assign", id=7, device=12)
        traced = Request(op="assign", id=7, device=12,
                         trace={"trace_id": "t1", "span_id": "c:1"})
        stripped = dict(traced.to_dict())
        assert stripped.pop("trace") == {"trace_id": "t1", "span_id": "c:1"}
        assert stripped == plain.to_dict()


class TestEngineRows:
    SPECS = [
        JobSpec(
            experiment="syn",
            fn="repro.engine.synthetic:cpu_cell",
            params={"iterations": 1000, "cell": cell},
            seed=cell,
        )
        for cell in range(4)
    ]

    @staticmethod
    def _row_bytes(engine):
        return json.dumps(run_jobs(TestEngineRows.SPECS, engine),
                          sort_keys=True)

    def test_serial_and_parallel_rows_unchanged_by_tracing(self, tmp_path):
        baseline = {
            jobs: self._row_bytes(EngineOptions(jobs=jobs, progress=False))
            for jobs in (1, 2)
        }
        with obs_runtime.traced(tmp_path, "engine"):
            for jobs in (1, 2):
                traced = self._row_bytes(
                    EngineOptions(jobs=jobs, progress=False)
                )
                assert traced == baseline[jobs]

    def test_cached_entry_bytes_unchanged_by_tracing(self, tmp_path):
        def cache_bytes(cache_dir):
            run_jobs(self.SPECS, EngineOptions(
                jobs=1, cache_dir=cache_dir, progress=False
            ))
            return sorted(
                (path.name, path.read_bytes())
                for path in cache_dir.rglob("*.json")
            )

        plain = cache_bytes(tmp_path / "plain")
        with obs_runtime.traced(tmp_path / "spans", "engine"):
            traced = cache_bytes(tmp_path / "traced")
        assert traced == plain

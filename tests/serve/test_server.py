"""TCP front end: pipelining, malformed lines, clean shutdown."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ReproError, ValidationError
from repro.model.instances import random_instance
from repro.serve import (
    AssignmentService,
    Request,
    ServiceConfig,
    TCPServer,
    decode_response,
    open_client,
)


def run(coro):
    return asyncio.run(coro)


async def _started_stack():
    problem = random_instance(30, 4, tightness=0.6, seed=8)
    service = AssignmentService(problem, ServiceConfig(max_queue=1000))
    await service.start()
    server = TCPServer(service)  # port 0: ephemeral
    await server.start()
    return service, server


class TestEndToEnd:
    def test_assign_release_stats_over_tcp(self):
        async def scenario():
            service, server = await _started_stack()
            client = await open_client(server.host, server.port)
            try:
                assign = await client.request(Request(op="assign", device=3))
                release = await client.request(Request(op="release", device=3))
                stats = await client.request(Request(op="stats"))
            finally:
                await client.close()
                await server.stop()
                await service.stop()
            return assign, release, stats

        assign, release, stats = run(scenario())
        assert assign.ok and assign.server is not None
        assert release.ok and release.server == assign.server
        assert stats.stats["assigns_total"] == 1
        assert stats.stats["releases_total"] == 1

    def test_pipelined_requests_matched_by_id(self):
        async def scenario():
            service, server = await _started_stack()
            client = await open_client(server.host, server.port)
            try:
                futures = [
                    client.send(Request(op="assign", device=device))
                    for device in range(10)
                ]
                await client.flush()
                responses = await asyncio.gather(*futures)
            finally:
                await client.close()
                await server.stop()
                await service.stop()
            return responses

        responses = run(scenario())
        assert [r.status for r in responses] == ["ok"] * 10
        assert len({r.id for r in responses}) == 10  # every id distinct

    def test_malformed_line_answered_not_dropped(self):
        async def scenario():
            service, server = await _started_stack()
            reader, writer = await asyncio.open_connection(server.host, server.port)
            try:
                writer.write(b"this is not json\n")
                writer.write(b'{"id": 5, "op": "assign", "device": 1}\n')
                await writer.drain()
                garbled = decode_response(await reader.readline())
                answered = decode_response(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
                await server.stop()
                await service.stop()
            return garbled, answered

        garbled, answered = run(scenario())
        assert garbled.status == "error"
        assert garbled.id == 0  # unmatchable line gets the null id
        assert answered.id == 5 and answered.ok

    def test_clean_shutdown_under_open_connection(self):
        async def scenario():
            service, server = await _started_stack()
            client = await open_client(server.host, server.port)
            response = await client.request(Request(op="assign", device=0))
            await server.stop()  # server goes first, connection still open
            await service.stop()
            await client.close()
            return response

        assert run(scenario()).ok


class TestClientEdges:
    def test_open_client_unreachable_raises(self):
        async def scenario():
            with pytest.raises(ReproError, match="cannot connect"):
                await open_client("127.0.0.1", 1)  # nothing listens on port 1

        run(scenario())

    def test_close_fails_pending_futures(self):
        async def scenario():
            service, server = await _started_stack()
            client = await open_client(server.host, server.port)
            # a future the server will never answer (we close first)
            await server.stop()
            await service.stop()
            future = client.send(Request(op="stats"))
            await client.close()
            return await future

        response = run(scenario())
        assert response.status == "error"

    def test_send_before_connect_rejected(self):
        async def scenario():
            from repro.serve import TCPClient

            with pytest.raises(ValidationError, match="not connected"):
                TCPClient().send(Request(op="stats"))

        run(scenario())

    def test_send_after_close_is_transport_failure(self):
        # a connection torn down under a concurrent sender must look
        # like the peer dying (OSError), not like an API misuse — the
        # shard backend relies on this to spill over instead of erroring
        async def scenario():
            service, server = await _started_stack()
            client = await open_client(server.host, server.port)
            await client.close()
            with pytest.raises(ConnectionResetError, match="closed"):
                client.send(Request(op="stats"))
            await server.stop()
            await service.stop()

        run(scenario())

    def test_send_fails_fast_after_peer_drops_connection(self):
        # once the dispatcher has observed the peer's death, a send
        # must raise immediately — a write into the dead transport
        # would otherwise create a future nothing resolves, burning a
        # full request timeout per attempt before the breaker trips
        async def scenario():
            async def slam_the_door(reader, writer):
                writer.close()

            server = await asyncio.start_server(
                slam_the_door, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await open_client("127.0.0.1", port)
            try:
                for _ in range(200):  # wait for the dispatcher's EOF
                    if client._dead:
                        break
                    await asyncio.sleep(0.005)
                assert client._dead
                with pytest.raises(ConnectionResetError, match="closed"):
                    client.send(Request(op="stats"))
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_server_requires_started_service(self):
        async def scenario():
            problem = random_instance(10, 3, tightness=0.5, seed=1)
            service = AssignmentService(problem)
            with pytest.raises(ValidationError, match="start the service"):
                await TCPServer(service).start()

        run(scenario())

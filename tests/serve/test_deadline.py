"""Deadline helpers: stamping, budget arithmetic, bounded awaits."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import DeadlineExceededError, ValidationError
from repro.serve.deadline import bounded, deadline_ms_in, expired, remaining_s


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    def __init__(self, t: float = 100.0):
        self.t = t

    def __call__(self):
        return self.t


class TestBudgetArithmetic:
    def test_deadline_is_absolute_epoch_ms(self):
        clock = FakeClock(t=100.0)
        assert deadline_ms_in(250.0, clock=clock) == 100.0 * 1e3 + 250.0

    def test_budget_must_be_positive(self):
        with pytest.raises(ValidationError):
            deadline_ms_in(0.0)

    def test_remaining_shrinks_with_the_clock(self):
        clock = FakeClock(t=100.0)
        deadline = deadline_ms_in(500.0, clock=clock)
        assert remaining_s(deadline, clock=clock) == pytest.approx(0.5)
        clock.t = 100.4
        assert remaining_s(deadline, clock=clock) == pytest.approx(0.1)
        clock.t = 101.0
        assert remaining_s(deadline, clock=clock) == pytest.approx(-0.5)

    def test_unset_deadline_never_expires(self):
        assert remaining_s(None) is None
        assert not expired(None)

    def test_expired_flips_exactly_at_zero(self):
        clock = FakeClock(t=100.0)
        deadline = deadline_ms_in(500.0, clock=clock)
        assert not expired(deadline, clock=clock)
        clock.t = 100.5
        assert expired(deadline, clock=clock)


class TestBounded:
    def test_plain_await_without_bounds(self):
        async def value():
            return 42

        async def scenario():
            return await bounded(value())

        assert run(scenario()) == 42

    def test_pre_expired_deadline_fails_fast_without_running(self):
        ran = []

        async def work():
            ran.append(True)

        async def scenario():
            clock = FakeClock(t=100.0)
            deadline = deadline_ms_in(100.0, clock=clock)
            clock.t = 101.0
            with pytest.raises(DeadlineExceededError, match="passed"):
                await bounded(work(), deadline_ms=deadline, clock=clock)
            await asyncio.sleep(0)

        run(scenario())
        assert ran == []  # the coroutine was cancelled, not awaited

    def test_budget_converts_timeout_to_typed_error(self):
        async def scenario():
            deadline = deadline_ms_in(20.0)
            with pytest.raises(DeadlineExceededError, match="no answer"):
                await bounded(asyncio.sleep(5.0), deadline_ms=deadline,
                              where="test await")

        run(scenario())

    def test_fixed_timeout_tightens_a_loose_deadline(self):
        async def scenario():
            deadline = deadline_ms_in(60_000.0)
            with pytest.raises(DeadlineExceededError):
                await bounded(asyncio.sleep(5.0), deadline_ms=deadline,
                              timeout_s=0.02)

        run(scenario())

    def test_result_passes_through_within_budget(self):
        async def value():
            return "ok"

        async def scenario():
            return await bounded(value(), deadline_ms=deadline_ms_in(1000.0),
                                 timeout_s=1.0)

        assert run(scenario()) == "ok"

"""RetryingClient and RetryBudget: bounded, budgeted, deadline-aware."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.protocol import Request, Response
from repro.serve.retry import (
    RetryBudget,
    RetryingClient,
    decorrelated_jitter_s,
)
from repro.utils.rng import make_rng


def run(coro):
    return asyncio.run(coro)


class ScriptedClient:
    """An inner client answering from a fixed status script."""

    def __init__(self, statuses, retry_after_ms=None):
        self.statuses = list(statuses)
        self.retry_after_ms = retry_after_ms
        self.requests: "list[Request]" = []

    async def request(self, request: Request) -> Response:
        self.requests.append(request)
        status = self.statuses.pop(0) if self.statuses else "ok"
        return Response(
            id=request.id, status=status,
            retry_after_ms=self.retry_after_ms if status == "rejected"
            else None,
        )

    async def flush(self) -> None:
        pass

    async def close(self) -> None:
        pass


class TestDecorrelatedJitter:
    def test_draw_stays_in_the_envelope(self):
        rng = make_rng(7)
        prev = 0.01
        for _ in range(200):
            draw = decorrelated_jitter_s(prev, 0.01, 0.5, rng)
            assert 0.01 <= draw <= max(0.5, 3 * prev)
            assert draw <= 0.5
            prev = draw

    def test_cap_binds(self):
        class One:
            def random(self):
                return 1.0

        assert decorrelated_jitter_s(10.0, 0.01, 0.5, One()) == 0.5


class TestRetryBudget:
    def test_spend_denied_when_empty(self):
        budget = RetryBudget(initial=1.0, earn_per_request=0.0, cap=1.0)
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent_total == 1
        assert budget.denied_total == 1

    def test_requests_earn_fractional_tokens_up_to_cap(self):
        budget = RetryBudget(initial=0.0, earn_per_request=0.5, cap=1.0)
        assert not budget.try_spend()
        budget.earn()
        budget.earn()
        budget.earn()  # capped: still exactly one token
        assert budget.tokens == 1.0
        assert budget.try_spend()
        assert not budget.try_spend()


class TestRetryingClient:
    def test_retries_until_ok(self):
        inner = ScriptedClient(["rejected", "timeout", "ok"])
        client = RetryingClient(inner, max_attempts=3,
                                base_backoff_s=1e-4, max_backoff_s=1e-3)
        response = run(client.request(Request(op="assign", device=0)))
        assert response.ok
        assert client.retries_total == 2
        assert len(inner.requests) == 3

    def test_terminal_statuses_are_not_retried(self):
        inner = ScriptedClient(["error"])
        client = RetryingClient(inner, max_attempts=3, base_backoff_s=1e-4)
        response = run(client.request(Request(op="assign", device=0)))
        assert response.status == "error"
        assert len(inner.requests) == 1

    def test_attempt_cap_binds(self):
        inner = ScriptedClient(["rejected"] * 10)
        client = RetryingClient(inner, max_attempts=3,
                                base_backoff_s=1e-4, max_backoff_s=1e-3)
        response = run(client.request(Request(op="assign", device=0)))
        assert response.status == "rejected"
        assert len(inner.requests) == 3

    def test_first_attempt_stamps_one_shared_deadline(self):
        inner = ScriptedClient(["rejected", "ok"])
        client = RetryingClient(inner, max_attempts=3, base_backoff_s=1e-4,
                                max_backoff_s=1e-3,
                                deadline_budget_ms=5_000.0)
        run(client.request(Request(op="assign", device=0)))
        deadlines = {r.deadline_ms for r in inner.requests}
        assert len(deadlines) == 1  # retries inherit, never re-stamp
        assert None not in deadlines

    def test_expired_deadline_stops_the_sequence(self):
        inner = ScriptedClient(["rejected"] * 5)
        client = RetryingClient(inner, max_attempts=5, base_backoff_s=1e-4)
        request = Request(op="assign", device=0, deadline_ms=0.001)
        response = run(client.request(request))
        assert response.status == "rejected"
        assert len(inner.requests) == 1  # no budget left: no retry

    def test_exhausted_budget_sheds_instead_of_retrying(self):
        inner = ScriptedClient(["timeout"] * 5)
        client = RetryingClient(
            inner, max_attempts=5, base_backoff_s=1e-4,
            budget=RetryBudget(initial=1.0, earn_per_request=0.0, cap=1.0),
        )
        response = run(client.request(Request(op="assign", device=0)))
        assert response.status == "timeout"
        assert len(inner.requests) == 2  # one retry, then the budget said no

    def test_server_retry_hint_floors_the_backoff(self):
        inner = ScriptedClient(["rejected", "ok"], retry_after_ms=30.0)
        client = RetryingClient(inner, max_attempts=2,
                                base_backoff_s=1e-4, max_backoff_s=1e-3)

        async def scenario():
            loop = asyncio.get_running_loop()
            started = loop.time()
            await client.request(Request(op="assign", device=0))
            return loop.time() - started

        assert run(scenario()) >= 0.03

    def test_seeded_backoff_is_reproducible(self):
        def draws(seed):
            client = RetryingClient(ScriptedClient([]), seed=seed,
                                    name="loadgen")
            rng = client._rng
            return [rng.random() for _ in range(5)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

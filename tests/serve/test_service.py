"""AssignmentService: determinism vs the serial baseline, backpressure, reopt."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.model.instances import random_instance
from repro.serve import (
    AssignmentService,
    InProcessClient,
    Request,
    ServiceConfig,
    drive_trace,
    generate_trace,
    replay_serial,
)


def run(coro):
    return asyncio.run(coro)


async def _serve_trace(problem, trace, config):
    service = AssignmentService(problem, config)
    await service.start()
    try:
        responses = await drive_trace(InProcessClient(service), trace)
    finally:
        await service.stop()
    return service, responses


class TestBatchedEqualsSerial:
    """The acceptance-criteria equivalence: batching never changes results."""

    @pytest.mark.parametrize("max_batch,max_wait_s", [(1, 0.0), (7, 0.0005), (64, 0.002)])
    def test_vector_and_statuses_identical(self, max_batch, max_wait_s):
        problem = random_instance(40, 5, tightness=0.7, seed=2)
        trace = generate_trace(problem.n_devices, 600, seed=3)
        serial_vector, serial_statuses = replay_serial(problem, trace)
        config = ServiceConfig(
            max_batch=max_batch, max_wait_s=max_wait_s, max_queue=100_000
        )
        service, responses = run(_serve_trace(problem, trace, config))
        assert [r.status for r in responses] == serial_statuses
        np.testing.assert_array_equal(service.state.vector, serial_vector)

    def test_responses_keep_request_ids(self):
        problem = random_instance(20, 4, tightness=0.6, seed=1)
        trace = generate_trace(problem.n_devices, 100, seed=1)
        _, responses = run(_serve_trace(problem, trace, ServiceConfig(max_queue=1000)))
        assert [r.id for r in responses] == [r.id for r in trace]

    def test_tight_instance_still_equivalent(self):
        # an under-provisioned cluster (12 unit-demand slots for 30
        # devices, trace occupancy up to 27): infeasible assigns must
        # replay identically too
        from repro.model.problem import AssignmentProblem

        rng = np.random.default_rng(7)
        problem = AssignmentProblem(
            delay=rng.uniform(1e-3, 20e-3, size=(30, 3)),
            demand=np.ones(30),
            capacity=np.full(3, 4.0),
        )
        trace = generate_trace(
            problem.n_devices, 400, seed=9, max_active_fraction=0.9
        )
        serial_vector, serial_statuses = replay_serial(problem, trace)
        service, responses = run(
            _serve_trace(problem, trace, ServiceConfig(max_batch=16, max_queue=10_000))
        )
        assert "infeasible" in serial_statuses  # the scenario exercises failures
        assert [r.status for r in responses] == serial_statuses
        np.testing.assert_array_equal(service.state.vector, serial_vector)


class TestBackpressure:
    """At 2x the admission watermark the service sheds, never crashes."""

    def test_burst_at_twice_watermark_sheds_explicitly(self):
        problem = random_instance(200, 8, tightness=0.3, seed=4)
        config = ServiceConfig(max_queue=32, watermark=0.5, max_batch=8)
        burst = 2 * int(config.watermark * config.max_queue) + config.max_queue

        async def scenario():
            service = AssignmentService(problem, config)
            await service.start()
            # submit the whole burst without yielding: the consumer cannot
            # drain, so depth climbs exactly as fast as we submit
            futures = [
                service.submit_nowait(
                    Request(op="assign", id=i + 1, device=i, priority="low")
                )
                for i in range(burst)
            ]
            depth_at_peak = service._pending
            responses = await asyncio.gather(*futures)
            await service.stop()
            return service, depth_at_peak, responses

        service, depth_at_peak, responses = run(scenario())
        rejected = [r for r in responses if r.status == "rejected"]
        served = [r for r in responses if r.status == "ok"]
        # low priority sheds at the watermark: everything past it bounced
        assert len(served) == int(config.watermark * config.max_queue)
        assert len(rejected) == burst - len(served)
        assert depth_at_peak <= config.max_queue  # the queue stayed bounded
        assert all(r.retry_after_ms > 0 for r in rejected)
        assert all(r.detail in ("watermark", "queue_full") for r in rejected)

    def test_high_priority_survives_past_watermark(self):
        problem = random_instance(100, 8, tightness=0.3, seed=4)
        config = ServiceConfig(max_queue=16, watermark=0.5)

        async def scenario():
            service = AssignmentService(problem, config)
            await service.start()
            futures = [
                service.submit_nowait(
                    Request(op="assign", id=i + 1, device=i, priority="high")
                )
                for i in range(2 * config.max_queue)
            ]
            responses = await asyncio.gather(*futures)
            await service.stop()
            return responses

        responses = run(scenario())
        served = sum(r.status == "ok" for r in responses)
        rejected = [r for r in responses if r.status == "rejected"]
        assert served == config.max_queue  # high is shed only at the hard bound
        assert all(r.detail == "queue_full" for r in rejected)

    def test_stats_answered_even_under_full_queue(self):
        problem = random_instance(50, 4, tightness=0.5, seed=3)
        config = ServiceConfig(max_queue=8)

        async def scenario():
            service = AssignmentService(problem, config)
            await service.start()
            for i in range(8):
                service.submit_nowait(
                    Request(op="assign", id=i + 1, device=i, priority="high")
                )
            # the stats future resolves synchronously, off the batch path
            stats_future = service.submit_nowait(Request(op="stats", id=99))
            assert stats_future.done()
            stats = stats_future.result()
            await service.stop()
            return stats

        stats = run(scenario())
        assert stats.status == "ok"
        assert stats.stats["queue_depth"] == 8


class TestLifecycle:
    def test_stop_answers_everything_in_flight(self):
        problem = random_instance(30, 4, tightness=0.5, seed=6)

        async def scenario():
            service = AssignmentService(problem, ServiceConfig(max_wait_s=10.0))
            await service.start()
            futures = [
                service.submit_nowait(Request(op="assign", id=i + 1, device=i))
                for i in range(5)
            ]
            await service.stop()  # drain flush must resolve the futures
            return await asyncio.gather(*futures)

        responses = run(scenario())
        assert [r.status for r in responses] == ["ok"] * 5

    def test_submit_before_start_rejected(self):
        from repro.errors import ValidationError

        problem = random_instance(10, 3, tightness=0.5, seed=1)

        async def scenario():
            service = AssignmentService(problem)
            with pytest.raises(ValidationError, match="not started"):
                service.submit_nowait(Request(op="stats"))

        run(scenario())

    def test_double_start_rejected(self):
        from repro.errors import ValidationError

        problem = random_instance(10, 3, tightness=0.5, seed=1)

        async def scenario():
            service = AssignmentService(problem)
            await service.start()
            try:
                with pytest.raises(ValidationError, match="already started"):
                    await service.start()
            finally:
                await service.stop()

        run(scenario())


class TestReoptimization:
    """The off-path improve loop: swap on gain, reject stale snapshots."""

    @staticmethod
    def _contended_service():
        # a greedy-filled, tight instance leaves real slack for an offline
        # solver to claw back, so the reopt round has a demonstrable gain
        problem = random_instance(40, 5, tightness=0.9, seed=2)
        return AssignmentService(
            problem, ServiceConfig(rule="reserve", headroom=0.5, max_queue=10_000)
        )

    def test_reopt_swaps_and_improves_total_delay(self):
        async def scenario():
            service = self._contended_service()
            problem = service.state.problem
            trace = generate_trace(
                problem.n_devices, 300, seed=5, max_active_fraction=0.8
            )
            await service.start()
            await drive_trace(InProcessClient(service), trace)
            before = service.state.total_delay_s
            swapped = await service.reoptimize_once()
            after = service.state.total_delay_s
            await service.stop()
            return swapped, before, after, service

        swapped, before, after, service = run(scenario())
        assert swapped
        assert after < before
        assert service.reopt_swaps == 1
        assert service.reopt_gain_ms_total == pytest.approx((before - after) * 1e3)

    def test_interleaved_mutation_makes_swap_stale(self, monkeypatch):
        import threading

        import repro.serve.service as service_mod

        gate = threading.Event()
        original = service_mod._solve_snapshot

        def gated_solve(*args):
            gate.wait(timeout=10.0)
            return original(*args)

        monkeypatch.setattr(service_mod, "_solve_snapshot", gated_solve)

        async def scenario():
            service = self._contended_service()
            problem = service.state.problem
            trace = generate_trace(
                problem.n_devices, 300, seed=5, max_active_fraction=0.8
            )
            await service.start()
            client = InProcessClient(service)
            await drive_trace(client, trace)

            reopt = asyncio.create_task(service.reoptimize_once())
            await asyncio.sleep(0)  # let the reopt task take its snapshot
            # land a mutation while the solver is held at the gate
            idle = int(np.flatnonzero(service.state.vector == -1)[0])
            await client.request(Request(op="assign", device=idle))
            gate.set()
            swapped = await reopt
            await service.stop()
            return swapped, service.reopt_swaps

        swapped, swaps = run(scenario())
        assert not swapped
        assert swaps == 0

    def test_reopt_on_empty_state_keeps(self):
        async def scenario():
            service = self._contended_service()
            await service.start()
            swapped = await service.reoptimize_once()
            await service.stop()
            return swapped

        assert run(scenario()) is False

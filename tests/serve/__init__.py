"""Tests for the repro.serve online assignment service."""

"""Load generation: trace determinism, live profiles, report plumbing."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ValidationError
from repro.model.instances import random_instance
from repro.serve import (
    AssignmentService,
    InProcessClient,
    LoadTestConfig,
    ServiceConfig,
    generate_trace,
    run_loadtest,
)


def run(coro):
    return asyncio.run(coro)


class TestGenerateTrace:
    def test_same_seed_same_trace(self):
        assert generate_trace(20, 200, seed=4) == generate_trace(20, 200, seed=4)

    def test_different_seed_different_trace(self):
        assert generate_trace(20, 200, seed=4) != generate_trace(20, 200, seed=5)

    def test_releases_only_previously_assigned_devices(self):
        held = set()
        for request in generate_trace(15, 300, seed=2):
            if request.op == "assign":
                assert request.device not in held
                held.add(request.device)
            else:
                assert request.device in held
                held.remove(request.device)

    def test_occupancy_capped(self):
        held = set()
        peak = 0
        for request in generate_trace(20, 400, seed=3, max_active_fraction=0.5):
            if request.op == "assign":
                held.add(request.device)
            else:
                held.discard(request.device)
            peak = max(peak, len(held))
        assert peak <= 10

    def test_ids_are_sequential(self):
        trace = generate_trace(10, 50, seed=1)
        assert [r.id for r in trace] == list(range(1, 51))

    def test_bad_args_rejected(self):
        with pytest.raises(ValidationError):
            generate_trace(0, 10)
        with pytest.raises(ValidationError):
            generate_trace(10, 10, release_ratio=1.5)


class TestLoadTestConfig:
    def test_defaults_valid(self):
        assert LoadTestConfig().profile == "poisson"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValidationError, match="unknown profile"):
            LoadTestConfig(profile="ramp")

    def test_priority_mix_must_sum_to_one(self):
        with pytest.raises(ValidationError, match="priority_mix"):
            LoadTestConfig(priority_mix=(0.5, 0.5, 0.5))


@pytest.mark.parametrize("profile", ["poisson", "burst", "closed"])
class TestLiveProfiles:
    def test_run_completes_with_zero_errors(self, profile):
        problem = random_instance(40, 5, tightness=0.6, seed=11)
        config = LoadTestConfig(
            n_requests=200, rate_hz=20_000.0, profile=profile, concurrency=8, seed=1
        )

        async def scenario():
            service = AssignmentService(problem, ServiceConfig(max_queue=10_000))
            await service.start()
            try:
                return await run_loadtest(
                    InProcessClient(service), problem.n_devices, config
                )
            finally:
                await service.stop()

        report = run(scenario())
        assert report.n_requests == 200
        assert report.errors == 0
        assert report.statuses.get("ok", 0) > 0
        assert report.throughput_rps > 0
        assert report.latency_ms["p50"] <= report.latency_ms["p99"]
        assert report.stats is not None
        assert report.stats["queue_depth"] == 0  # fully drained at the end


class TestReport:
    @staticmethod
    def _report():
        problem = random_instance(20, 4, tightness=0.6, seed=11)
        config = LoadTestConfig(n_requests=50, rate_hz=50_000.0, seed=2)

        async def scenario():
            service = AssignmentService(problem)
            await service.start()
            try:
                return await run_loadtest(
                    InProcessClient(service), problem.n_devices, config
                )
            finally:
                await service.stop()

        return run(scenario())

    def test_text_table_has_percentiles(self):
        text = self._report().to_text()
        for needle in ("p50", "p95", "p99", "throughput"):
            assert needle in text

    def test_json_roundtrip(self, tmp_path):
        report = self._report()
        path = tmp_path / "report.json"
        report.save_json(path)
        payload = json.loads(path.read_text())
        assert payload["n_requests"] == 50
        assert set(payload["latency_ms"]) == {"mean", "p50", "p95", "p99", "max"}
        assert sum(payload["statuses"].values()) == 50
        assert sum(payload["ops"].values()) == 50

"""Admission control: watermark shedding by priority and backpressure hints."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.serve.admission import AdmissionController


class TestShedThresholds:
    def test_priority_order(self):
        control = AdmissionController(max_queue=100, watermark=0.5)
        low = control.shed_threshold("low")
        normal = control.shed_threshold("normal")
        high = control.shed_threshold("high")
        assert low == 50
        assert low < normal < high
        assert high == 100

    def test_unknown_priority_rejected(self):
        with pytest.raises(ValidationError, match="unknown priority"):
            AdmissionController().shed_threshold("urgent")


class TestCheck:
    def test_below_watermark_everyone_admitted(self):
        control = AdmissionController(max_queue=100, watermark=0.5)
        for priority in ("low", "normal", "high"):
            assert control.check(49, priority).admitted

    def test_between_watermark_and_full_sheds_low_first(self):
        control = AdmissionController(max_queue=100, watermark=0.5)
        decision = control.check(60, "low")
        assert not decision.admitted
        assert decision.reason == "watermark"
        assert control.check(60, "normal").admitted
        assert control.check(60, "high").admitted

    def test_normal_shed_above_midpoint(self):
        control = AdmissionController(max_queue=100, watermark=0.5)
        assert not control.check(80, "normal").admitted
        assert control.check(80, "high").admitted

    def test_hard_full_rejects_even_high(self):
        control = AdmissionController(max_queue=100, watermark=0.5)
        decision = control.check(100, "high")
        assert not decision.admitted
        assert decision.reason == "queue_full"

    def test_retry_after_positive_and_scales_with_excess(self):
        control = AdmissionController(
            max_queue=100, watermark=0.5, drain_rate_hz=1000.0
        )
        shallow = control.check(60, "low").retry_after_ms
        deep = control.check(100, "low").retry_after_ms
        assert shallow >= 1.0
        assert deep > shallow

    def test_totals_track_decisions(self):
        control = AdmissionController(max_queue=10, watermark=0.5)
        control.check(0, "normal")
        control.check(10, "normal")
        assert control.admitted_total == 1
        assert control.rejected_total == 1

    def test_negative_depth_rejected(self):
        with pytest.raises(ValidationError):
            AdmissionController().check(-1)


class TestDrainRateFeedback:
    def test_faster_drain_shrinks_the_hint(self):
        control = AdmissionController(
            max_queue=100, watermark=0.5, drain_rate_hz=100.0
        )
        slow = control.check(90, "low").retry_after_ms
        control.observe_drain_rate(10_000.0)
        fast = control.check(90, "low").retry_after_ms
        assert fast < slow

    def test_nonpositive_rate_ignored(self):
        control = AdmissionController(drain_rate_hz=100.0)
        control.observe_drain_rate(0.0)
        control.observe_drain_rate(-5.0)
        assert control.check(1024, "high").retry_after_ms > 0

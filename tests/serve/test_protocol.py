"""Wire-protocol encode/decode and validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import SerializationError, ValidationError
from repro.serve.protocol import (
    OPS,
    PRIORITY_CLASSES,
    STATUSES,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_line,
)


class TestRequest:
    def test_roundtrip_all_fields(self):
        request = Request(op="assign", id=7, device=12, priority="high")
        assert decode_request(encode_line(request)) == request

    def test_stats_needs_no_device(self):
        request = Request(op="stats", id=1)
        assert decode_request(encode_line(request)) == request

    def test_default_priority_omitted_on_wire(self):
        payload = json.loads(encode_line(Request(op="assign", id=1, device=0)))
        assert "priority" not in payload

    def test_unknown_op_rejected(self):
        with pytest.raises(ValidationError, match="unknown op"):
            Request(op="destroy", device=0)

    def test_unknown_priority_rejected(self):
        with pytest.raises(ValidationError, match="unknown priority"):
            Request(op="assign", device=0, priority="urgent")

    def test_assign_requires_device(self):
        with pytest.raises(ValidationError, match="device"):
            Request(op="assign")

    def test_migrate_roundtrip(self):
        request = Request(op="migrate", id=9, devices=(3, 1, 4), epoch=17)
        decoded = decode_request(encode_line(request))
        assert decoded == request
        assert decoded.devices == (3, 1, 4)
        assert decoded.epoch == 17

    def test_migrate_requires_devices_and_epoch(self):
        with pytest.raises(ValidationError, match="devices"):
            Request(op="migrate", epoch=1)
        with pytest.raises(ValidationError, match="epoch"):
            Request(op="migrate", devices=(0,))

    def test_negative_device_rejected(self):
        with pytest.raises(ValidationError, match="device"):
            Request(op="release", device=-1)

    @pytest.mark.parametrize(
        "line", [b"not json", b"[1, 2]", b'{"op": "assign"}', b'{"id": 3}']
    )
    def test_bad_lines_raise_serialization_error(self, line):
        with pytest.raises(SerializationError):
            decode_request(line)

    def test_trace_context_round_trips(self):
        request = Request(
            op="assign", id=7, device=12,
            trace={"trace_id": "3d49f874c907d8f6", "span_id": "client:1"},
        )
        decoded = decode_request(encode_line(request))
        assert decoded == request
        assert decoded.trace == {
            "trace_id": "3d49f874c907d8f6", "span_id": "client:1",
        }

    def test_untraced_request_omits_the_trace_key(self):
        payload = json.loads(encode_line(Request(op="assign", id=1, device=0)))
        assert "trace" not in payload

    def test_non_object_trace_rejected(self):
        with pytest.raises(SerializationError, match="trace must be an object"):
            decode_request(b'{"op": "stats", "id": 1, "trace": "t1"}')


class TestResponse:
    def test_roundtrip_all_fields(self):
        response = Response(
            id=7, status="rejected", retry_after_ms=12.5, detail="watermark"
        )
        assert decode_response(encode_line(response)) == response

    def test_ok_property(self):
        assert Response(id=1, status="ok").ok
        assert not Response(id=1, status="infeasible").ok

    def test_unknown_status_rejected(self):
        with pytest.raises(ValidationError, match="unknown status"):
            Response(id=1, status="maybe")

    def test_stats_payload_travels(self):
        response = Response(id=2, status="ok", stats={"devices": 4})
        assert decode_response(encode_line(response)).stats == {"devices": 4}

    def test_bad_line_raises_serialization_error(self):
        with pytest.raises(SerializationError):
            decode_response(b'{"id": 1}')


class TestConstants:
    def test_priority_order_is_degradation_order(self):
        assert PRIORITY_CLASSES == ("low", "normal", "high")

    def test_catalog_constants(self):
        assert set(OPS) == {"assign", "release", "stats", "migrate"}
        assert set(STATUSES) == {
            "ok", "rejected", "infeasible", "error", "timeout"
        }

"""Tests for argument-validation helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_in_range,
    check_matrix,
    check_nonnegative,
    check_positive,
    check_probability,
    require,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")

    def test_error_is_value_error_too(self):
        with pytest.raises(ValueError):
            require(False, "x")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="x"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive(math.nan, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_positive(math.inf, "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative(-1e-9, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, math.nan])
    def test_rejects_outside(self, value):
        with pytest.raises(ValidationError):
            check_probability(value, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0
        assert check_in_range(2.0, "x", 1.0, 2.0) == 2.0

    def test_exclusive_low(self):
        with pytest.raises(ValidationError):
            check_in_range(1.0, "x", 1.0, 2.0, low_inclusive=False)

    def test_exclusive_high(self):
        with pytest.raises(ValidationError):
            check_in_range(2.0, "x", 1.0, 2.0, high_inclusive=False)

    def test_message_shows_interval_brackets(self):
        with pytest.raises(ValidationError, match=r"\(1.*\]"):
            check_in_range(0.5, "x", 1.0, 2.0, low_inclusive=False)


class TestCheckMatrix:
    def test_converts_to_float64(self):
        out = check_matrix([[1, 2], [3, 4]], "m")
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            check_matrix([1.0, 2.0], "m")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_matrix([[1.0, math.nan]], "m")

    def test_shape_constraint(self):
        check_matrix([[1.0, 2.0]], "m", shape=(1, 2))
        with pytest.raises(ValidationError):
            check_matrix([[1.0, 2.0]], "m", shape=(2, 2))

    def test_shape_none_wildcards(self):
        check_matrix([[1.0, 2.0], [3.0, 4.0]], "m", shape=(None, 2))

    def test_nonnegative_flag(self):
        with pytest.raises(ValidationError):
            check_matrix([[-1.0]], "m", nonnegative=True)

"""Tests for statistics helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.stats import OnlineStats, mean_confidence_interval, summarize

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == pytest.approx(2.5)

    def test_empty_sample_is_nan_not_crash(self):
        summary = summarize([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_single_sample_zero_std(self):
        summary = summarize([3.0])
        assert summary.std == 0.0
        assert summary.mean == 3.0

    def test_accepts_generator(self):
        summary = summarize(x for x in (1.0, 2.0))
        assert summary.count == 2

    def test_as_dict_roundtrip_keys(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "max", "p50", "p95", "p99"}

    def test_percentile_ordering(self):
        summary = summarize(np.arange(100.0))
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum


class TestMeanConfidenceInterval:
    def test_single_sample_zero_width(self):
        mean, half = mean_confidence_interval([5.0])
        assert mean == 5.0
        assert half == 0.0

    def test_wider_at_higher_confidence(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        _, half95 = mean_confidence_interval(data, 0.95)
        _, half99 = mean_confidence_interval(data, 0.99)
        assert half99 > half95

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            mean_confidence_interval([])

    def test_bad_confidence_raises(self):
        with pytest.raises(ValidationError):
            mean_confidence_interval([1.0, 2.0], confidence=1.0)

    def test_contains_true_mean_for_tight_sample(self):
        mean, half = mean_confidence_interval([10.0, 10.1, 9.9, 10.0])
        assert mean - half <= 10.0 <= mean + half


class TestOnlineStats:
    def test_matches_numpy(self):
        data = [1.5, 2.5, 0.5, 4.0, -1.0]
        stats = OnlineStats()
        for value in data:
            stats.add(value)
        assert stats.mean == pytest.approx(np.mean(data))
        assert stats.std == pytest.approx(np.std(data, ddof=1))
        assert stats.minimum == min(data)
        assert stats.maximum == max(data)

    def test_empty_is_nan(self):
        stats = OnlineStats()
        assert math.isnan(stats.mean)
        assert stats.count == 0

    def test_single_value(self):
        stats = OnlineStats()
        stats.add(2.0)
        assert stats.variance == 0.0

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_property_welford_equals_batch(self, data):
        stats = OnlineStats()
        for value in data:
            stats.add(value)
        assert stats.mean == pytest.approx(float(np.mean(data)), rel=1e-9, abs=1e-9)
        assert stats.variance == pytest.approx(
            float(np.var(data, ddof=1)), rel=1e-6, abs=1e-6
        )

    @given(
        st.lists(finite_floats, min_size=1, max_size=30),
        st.lists(finite_floats, min_size=1, max_size=30),
    )
    def test_property_merge_equals_concatenation(self, left, right):
        a, b = OnlineStats(), OnlineStats()
        for value in left:
            a.add(value)
        for value in right:
            b.add(value)
        merged = a.merge(b)
        both = left + right
        assert merged.count == len(both)
        assert merged.mean == pytest.approx(float(np.mean(both)), rel=1e-9, abs=1e-9)
        if len(both) > 1:
            assert merged.variance == pytest.approx(
                float(np.var(both, ddof=1)), rel=1e-6, abs=1e-6
            )

    def test_merge_with_empty(self):
        a = OnlineStats()
        b = OnlineStats()
        b.add(1.0)
        assert a.merge(b).count == 1
        assert b.merge(a).count == 1

"""Tests for table rendering."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.utils.tables import format_markdown_table, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["algo", "delay"], [["greedy", 1.5]])
        lines = text.splitlines()
        assert lines[0].startswith("algo")
        assert "greedy" in lines[2]
        assert "1.500" in lines[2]

    def test_title_rendered_with_rule(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "=" * len("My Table")

    def test_bool_rendered_as_yes_no(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text
        assert "no" in text

    def test_float_format_respected(self):
        text = format_table(["x"], [[3.14159]], float_format=".1f")
        assert "3.1" in text
        assert "3.14" not in text

    def test_empty_rows_renders_header_only(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [[1]])

    def test_no_columns_raises(self):
        with pytest.raises(ValidationError):
            format_table([], [])

    def test_columns_wide_as_longest_cell(self):
        text = format_table(["x"], [["longvalue"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len("longvalue")


class TestFormatMarkdownTable:
    def test_structure(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_row_mismatch_raises(self):
        with pytest.raises(ValidationError):
            format_markdown_table(["a"], [[1, 2]])

"""Tests for atomic file writes."""

from __future__ import annotations

import pytest

from repro.utils.fileio import atomic_write_text


class TestAtomicWriteText:
    def test_writes_and_returns_path(self, tmp_path):
        target = tmp_path / "out.json"
        assert atomic_write_text(target, "{}") == target
        assert target.read_text() == "{}"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "deep")
        assert target.read_text() == "deep"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        for _ in range(3):
            atomic_write_text(target, "content")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failure_cleans_up_temp(self, tmp_path, monkeypatch):
        import repro.utils.fileio as fileio

        def boom(src, dst):
            raise OSError("simulated replace failure")

        monkeypatch.setattr(fileio.os, "replace", boom)
        with pytest.raises(OSError, match="simulated"):
            atomic_write_text(tmp_path / "out.txt", "content")
        assert list(tmp_path.iterdir()) == []  # temp removed, target absent

"""Tests for seeded-randomness helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.utils.rng import derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_returns_generator_for_int_seed(self):
        rng = make_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_same_seed_same_stream(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seed_different_stream(self):
        assert make_rng(7).random() != make_rng(8).random()

    def test_passes_generator_through_unchanged(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_none_gives_entropy_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_rejects_float_seed(self):
        with pytest.raises(ValidationError):
            make_rng(1.5)

    def test_rejects_string_seed(self):
        with pytest.raises(ValidationError):
            make_rng("seed")

    def test_accepts_numpy_integer(self):
        assert isinstance(make_rng(np.int64(3)), np.random.Generator)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "topology") == derive_seed(42, "topology")

    def test_label_changes_seed(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_parent_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_multiple_labels_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_int_labels_accepted(self):
        assert derive_seed(0, 1, 2) == derive_seed(0, 1, 2)

    def test_result_is_nonnegative_63_bit(self):
        for seed in range(20):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**63

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ValidationError):
            derive_seed("not-an-int", "x")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_property_stable_and_bounded(self, seed, label):
        first = derive_seed(seed, label)
        second = derive_seed(seed, label)
        assert first == second
        assert 0 <= first < 2**63

    def test_no_trivial_collision_between_adjacent_seeds(self):
        values = {derive_seed(s, "lbl") for s in range(1000)}
        assert len(values) == 1000


class TestSpawnRngs:
    def test_one_generator_per_label(self):
        rngs = spawn_rngs(5, "a", "b", "c")
        assert len(rngs) == 3

    def test_streams_are_independent(self):
        a, b = spawn_rngs(5, "a", "b")
        assert a.random() != b.random()

    def test_reproducible(self):
        first = spawn_rngs(5, "a")[0].random()
        second = spawn_rngs(5, "a")[0].random()
        assert first == second

"""Tests for the terminal chart renderer."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.experiments.harness import ResultTable
from repro.utils.ascii_plot import line_chart, series_from_table


class TestLineChart:
    def test_renders_all_series_markers(self):
        chart = line_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20,
            height=8,
        )
        assert "o" in chart
        assert "x" in chart
        assert "o a" in chart and "x b" in chart  # legend

    def test_title_and_labels(self):
        chart = line_chart(
            {"s": [(0, 0), (10, 5)]},
            title="My Chart",
            x_label="episodes",
            y_label="cost",
        )
        assert chart.splitlines()[0] == "My Chart"
        assert "x: episodes" in chart
        assert "y: cost" in chart

    def test_axis_extremes_labelled(self):
        chart = line_chart({"s": [(2.0, 10.0), (8.0, 50.0)]}, width=20, height=6)
        assert "50" in chart
        assert "10" in chart
        assert "2" in chart
        assert "8" in chart

    def test_extreme_points_land_on_extreme_rows(self):
        chart = line_chart({"s": [(0, 0), (1, 1)]}, width=10, height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert "o" in rows[0]    # max y on top row
        assert "o" in rows[-1]   # min y on bottom row

    def test_nan_points_skipped(self):
        chart = line_chart({"s": [(0, 1), (1, math.nan), (2, 3)]}, width=12, height=5)
        plot_rows = [line for line in chart.splitlines() if "|" in line]
        assert sum(row.count("o") for row in plot_rows) == 2

    def test_flat_series_renders(self):
        chart = line_chart({"s": [(0, 5.0), (1, 5.0)]}, width=12, height=5)
        assert "o" in chart

    def test_empty_series_rejected(self):
        with pytest.raises(ValidationError):
            line_chart({})
        with pytest.raises(ValidationError):
            line_chart({"s": [(math.nan, math.nan)]})

    def test_too_small_rejected(self):
        with pytest.raises(ValidationError):
            line_chart({"s": [(0, 1)]}, width=2, height=2)


class TestSeriesFromTable:
    def test_groups_and_sorts(self):
        table = ResultTable(["n", "solver", "cost"])
        table.add_row(n=20, solver="a", cost=2.0)
        table.add_row(n=10, solver="a", cost=1.0)
        table.add_row(n=10, solver="b", cost=3.0)
        series = series_from_table(table, "n", "cost", "solver")
        assert series["a"] == [(10.0, 1.0), (20.0, 2.0)]
        assert series["b"] == [(10.0, 3.0)]

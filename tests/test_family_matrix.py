"""Integration matrix: every topology family × representative solvers.

The figures sweep families and solvers independently; this sweep
crosses them on small instances so a family-specific structure (a fat
tree's parallel paths, a hierarchy's articulation points) cannot break
a solver unnoticed.
"""

from __future__ import annotations

import pytest

from repro.model.instances import topology_instance
from repro.sim.runner import simulate_assignment
from repro.solvers.registry import get_solver
from repro.topology.generators import TOPOLOGY_FAMILIES

REPRESENTATIVES = {
    "greedy": {},
    "lagrangian": {"rounds": 30},
    "tacc": {"episodes": 25},
}


@pytest.mark.parametrize("family", sorted(TOPOLOGY_FAMILIES))
class TestFamilyMatrix:
    @pytest.fixture()
    def instance(self, family):
        return topology_instance(
            family=family,
            n_routers=18,
            n_devices=12,
            n_servers=3,
            tightness=0.7,
            seed=73,
        )

    @pytest.mark.parametrize("solver_name", sorted(REPRESENTATIVES))
    def test_solver_feasible_on_family(self, family, solver_name, instance):
        solver = get_solver(solver_name, seed=1, **REPRESENTATIVES[solver_name])
        result = solver.solve(instance)
        assert result.feasible, f"{solver_name} on {family}"
        result.assignment.validate()

    def test_simulation_runs_on_family(self, family, instance):
        result = get_solver("greedy").solve(instance)
        report = simulate_assignment(
            result.assignment, duration_s=3.0, seed=2, drain_s=30.0
        )
        assert report.tasks_completed == report.tasks_created
        assert report.tasks_completed > 0

    def test_delays_have_family_plausible_range(self, family, instance):
        """All families produce millisecond-scale routed delays (the access
        links dominate), with finite positive entries everywhere."""
        assert instance.delay.min() > 1e-4   # at least the access latency
        assert instance.delay.max() < 1.0    # and nothing absurd

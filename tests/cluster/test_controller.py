"""Tests for the reconfiguration controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.controller import RECONFIGURE_STRATEGIES, ReconfigurationController
from repro.cluster.migration import MigrationPolicy
from repro.errors import ValidationError
from repro.model.instances import topology_instance
from repro.solvers.greedy import GreedyFeasibleSolver
from repro.workload.mobility import RandomWaypointMobility


@pytest.fixture(scope="module")
def drift():
    """One base problem and a shared 5-epoch mobility trajectory."""
    base = topology_instance(
        n_routers=20, n_devices=15, n_servers=3, tightness=0.7, seed=66
    )
    mobility = RandomWaypointMobility(base, seed=4, move_fraction=0.8, speed=0.15)
    return base, list(mobility.epochs(5))


class TestControllerBasics:
    def test_initialize_solves(self, drift):
        base, _ = drift
        controller = ReconfigurationController(GreedyFeasibleSolver(), strategy="static")
        decision = controller.initialize(base)
        assert decision.feasible
        assert decision.reconfigured
        assert decision.epoch == 0

    def test_observe_before_initialize_rejected(self, drift):
        base, epochs = drift
        controller = ReconfigurationController(GreedyFeasibleSolver())
        with pytest.raises(ValidationError):
            controller.observe(1, epochs[0].problem)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError):
            ReconfigurationController(GreedyFeasibleSolver(), strategy="vibes")

    @pytest.mark.parametrize("strategy", RECONFIGURE_STRATEGIES)
    def test_all_strategies_run_through_epochs(self, drift, strategy):
        base, epochs = drift
        controller = ReconfigurationController(GreedyFeasibleSolver(), strategy=strategy)
        controller.initialize(base)
        for epoch_state in epochs:
            decision = controller.observe(epoch_state.epoch, epoch_state.problem)
            assert decision.vector.shape == (base.n_devices,)


class TestStrategySemantics:
    def test_static_never_moves(self, drift):
        base, epochs = drift
        controller = ReconfigurationController(GreedyFeasibleSolver(), strategy="static")
        initial = controller.initialize(base).vector
        for epoch_state in epochs:
            decision = controller.observe(epoch_state.epoch, epoch_state.problem)
            assert not decision.reconfigured
            assert np.all(decision.vector == initial)
        assert controller.total_moves == 0

    def test_always_tracks_fresh_solution(self, drift):
        base, epochs = drift
        controller = ReconfigurationController(GreedyFeasibleSolver(), strategy="always")
        controller.initialize(base)
        fresh = GreedyFeasibleSolver().solve(epochs[0].problem)
        decision = controller.observe(1, epochs[0].problem)
        assert decision.cost == pytest.approx(fresh.assignment.total_delay())

    def test_always_never_worse_than_static_at_end(self, drift):
        base, epochs = drift
        static = ReconfigurationController(GreedyFeasibleSolver(), strategy="static")
        always = ReconfigurationController(GreedyFeasibleSolver(), strategy="always")
        static.initialize(base)
        always.initialize(base)
        for epoch_state in epochs:
            static_cost = static.observe(epoch_state.epoch, epoch_state.problem).cost
            always_cost = always.observe(epoch_state.epoch, epoch_state.problem).cost
        assert always_cost <= static_cost + 1e-12

    def test_hysteresis_moves_less_than_always(self, drift):
        base, epochs = drift
        always = ReconfigurationController(GreedyFeasibleSolver(), strategy="always")
        hysteresis = ReconfigurationController(
            GreedyFeasibleSolver(),
            strategy="hysteresis",
            policy=MigrationPolicy(hysteresis=0.10),
        )
        always.initialize(base)
        hysteresis.initialize(base)
        for epoch_state in epochs:
            always.observe(epoch_state.epoch, epoch_state.problem)
            hysteresis.observe(epoch_state.epoch, epoch_state.problem)
        assert hysteresis.total_moves <= always.total_moves

    def test_polish_improves_or_preserves_each_epoch(self, drift):
        base, epochs = drift
        controller = ReconfigurationController(GreedyFeasibleSolver(), strategy="polish")
        controller.initialize(base)
        from repro.model.solution import Assignment

        previous_vector = controller._vector.copy()
        for epoch_state in epochs:
            stale_cost = Assignment(epoch_state.problem, previous_vector).total_delay()
            decision = controller.observe(epoch_state.epoch, epoch_state.problem)
            assert decision.cost <= stale_cost + 1e-12
            previous_vector = decision.vector

    def test_polish_keeps_feasibility(self, drift):
        base, epochs = drift
        controller = ReconfigurationController(GreedyFeasibleSolver(), strategy="polish")
        controller.initialize(base)
        for epoch_state in epochs:
            decision = controller.observe(epoch_state.epoch, epoch_state.problem)
            assert decision.feasible

    def test_reconfiguration_counter(self, drift):
        base, epochs = drift
        controller = ReconfigurationController(GreedyFeasibleSolver(), strategy="always")
        controller.initialize(base)
        for epoch_state in epochs:
            controller.observe(epoch_state.epoch, epoch_state.problem)
        # a fresh greedy solve on drifted delays virtually always moves someone
        assert controller.reconfigurations >= 1

"""Graceful degradation: priority shedding and the controller's degraded path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.controller import ReconfigurationController
from repro.cluster.degradation import (
    DegradedSolution,
    shed_priority_by_demand,
    solve_degraded,
)
from repro.cluster.faults import degraded_problem, served_cost
from repro.errors import ValidationError
from repro.model.instances import random_instance
from repro.model.solution import UNASSIGNED, Assignment
from repro.solvers.registry import get_solver


class TestSolveDegraded:
    def test_feasible_problem_sheds_nobody(self, small_problem):
        solution = solve_degraded(small_problem, get_solver("greedy", seed=1))
        assert solution.feasible
        assert solution.shed == ()
        assert solution.n_served == small_problem.n_devices
        assert solution.rounds == 1
        Assignment(small_problem, solution.vector).validate()

    def test_infeasible_problem_sheds_and_serves_the_rest(self, small_problem):
        # fail 2 of 3 servers: the survivor cannot host everyone
        degraded = degraded_problem(small_problem, {1, 2})
        solution = solve_degraded(degraded, get_solver("greedy", seed=1))
        assert solution.feasible
        assert len(solution.shed) > 0
        assert 0 < solution.n_served < small_problem.n_devices
        # served devices sit on the one healthy server, within capacity
        served = solution.vector[solution.vector != UNASSIGNED]
        assert set(served.tolist()) == {0}
        Assignment(degraded, solution.vector)  # vector is well-formed
        assert solution.served_cost == pytest.approx(
            served_cost(degraded, solution.vector)
        )

    def test_default_priority_sheds_heaviest_first(self, small_problem):
        degraded = degraded_problem(small_problem, {1, 2})
        solution = solve_degraded(degraded, get_solver("greedy", seed=1))
        priority = shed_priority_by_demand(degraded)
        shed_priorities = priority[list(solution.shed)]
        kept = np.setdiff1d(
            np.arange(small_problem.n_devices), np.array(solution.shed)
        )
        # everyone shed has priority <= everyone kept (heaviest go first)
        assert shed_priorities.max() <= priority[kept].min() + 1e-12

    def test_explicit_priority_protects_vips(self, small_problem):
        degraded = degraded_problem(small_problem, {1, 2})
        priority = np.arange(small_problem.n_devices, dtype=float)
        solution = solve_degraded(
            degraded, get_solver("greedy", seed=1), priority=priority
        )
        assert solution.feasible
        # the highest-priority devices (largest values) are never shed
        # before lower ones: shed set is a prefix of the priority order
        assert sorted(solution.shed) == list(range(len(solution.shed)))

    def test_wrong_priority_length_rejected(self, small_problem):
        with pytest.raises(ValidationError):
            solve_degraded(
                small_problem, get_solver("greedy"), priority=np.ones(3)
            )

    def test_hopeless_problem_never_raises(self):
        problem = random_instance(8, 2, tightness=0.6, seed=9)
        crushed = degraded_problem(problem, {1})
        # shrink the survivor so even one device barely fits
        solution = solve_degraded(crushed, get_solver("greedy", seed=1))
        assert isinstance(solution, DegradedSolution)
        assert solution.n_served + len(solution.shed) == problem.n_devices


class TestControllerDegradedPath:
    def test_observe_with_failures_sheds_and_recovers(self, small_problem):
        controller = ReconfigurationController(
            get_solver("greedy", seed=1), strategy="always"
        )
        controller.initialize(small_problem)
        # two of three servers die: expect shedding, healthy targets only
        decision = controller.observe(1, small_problem, failed={1, 2})
        assert decision.reconfigured
        assert decision.shed > 0
        assert decision.feasible  # the served subset is valid
        served = decision.vector[decision.vector != UNASSIGNED]
        assert set(served.tolist()) == {0}
        # repair: the next healthy epoch restores full service
        after = controller.observe(2, small_problem)
        assert int(np.count_nonzero(after.vector == UNASSIGNED)) == 0

    def test_single_failure_routes_around_without_shedding(self):
        problem = random_instance(12, 3, tightness=0.4, seed=7)
        controller = ReconfigurationController(
            get_solver("greedy", seed=1), strategy="always"
        )
        controller.initialize(problem)
        decision = controller.observe(1, problem, failed={2})
        assert decision.shed == 0
        assert decision.feasible
        assert 2 not in set(decision.vector.tolist())

    def test_static_keeps_feasible_incumbent(self):
        problem = random_instance(12, 3, tightness=0.4, seed=7)
        controller = ReconfigurationController(
            get_solver("greedy", seed=1), strategy="static"
        )
        init = controller.initialize(problem)
        unused = sorted(
            set(range(problem.n_servers)) - set(init.vector.tolist())
        )
        if unused:  # failing an unused server must be a no-op
            decision = controller.observe(1, problem, failed={unused[0]})
            assert not decision.reconfigured
            assert np.array_equal(decision.vector, init.vector)

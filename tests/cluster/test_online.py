"""Tests for online (streaming) assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.online import ONLINE_RULES, OnlineAssigner
from repro.errors import InfeasibleSolutionError, ValidationError
from repro.model.instances import random_instance
from repro.model.problem import AssignmentProblem
from repro.solvers.exact import BranchAndBoundSolver


@pytest.mark.parametrize("rule", ONLINE_RULES)
class TestAllRules:
    def test_stream_assignment_feasible(self, rule):
        problem = random_instance(25, 4, tightness=0.7, seed=1)
        assigner = OnlineAssigner(problem, rule=rule)
        assignment = assigner.assign_stream(range(problem.n_devices))
        assert assignment.is_feasible()

    def test_never_overloads_midstream(self, rule):
        problem = random_instance(30, 4, tightness=0.85, seed=2)
        assigner = OnlineAssigner(problem, rule=rule)
        for device in range(problem.n_devices):
            try:
                assigner.assign(device)
            except InfeasibleSolutionError:
                break
            assert np.all(assigner.utilization <= 1.0 + 1e-9)

    def test_deterministic(self, rule):
        problem = random_instance(20, 3, tightness=0.7, seed=3)
        a = OnlineAssigner(problem, rule=rule).assign_stream(range(20))
        b = OnlineAssigner(problem, rule=rule).assign_stream(range(20))
        assert a == b


class TestRuleSemantics:
    def test_greedy_delay_takes_argmin_when_room(self):
        problem = random_instance(10, 3, tightness=0.3, seed=4)
        problem.capacity[:] = 1e9
        assignment = OnlineAssigner(problem, rule="greedy_delay").assign_stream(range(10))
        expected = np.argmin(problem.delay, axis=1)
        assert np.all(assignment.vector == expected)

    def test_reserve_avoids_filling_past_headroom(self):
        problem = AssignmentProblem(
            delay=[[1.0, 5.0], [1.0, 5.0]],
            demand=[50.0, 50.0],
            capacity=[100.0, 100.0],
        )
        assigner = OnlineAssigner(problem, rule="reserve", headroom=0.6)
        assigner.assign(0)  # server 0 at 50%
        assigner.assign(1)  # filling server 0 would hit 100% > 60%: go to 1
        assert assigner.assignment.server_of(0) == 0
        assert assigner.assignment.server_of(1) == 1

    def test_reserve_falls_back_when_everyone_above_headroom(self):
        problem = AssignmentProblem(
            delay=[[1.0, 5.0]],
            demand=[90.0],
            capacity=[100.0, 100.0],
        )
        assigner = OnlineAssigner(problem, rule="reserve", headroom=0.5)
        # no server can stay under 50%: falls back to cheapest fitting
        assert assigner.assign(0) == 0

    def test_balanced_spreads_load(self):
        problem = AssignmentProblem(
            delay=[[1.0, 1.1]] * 4,
            demand=[25.0] * 4,
            capacity=[100.0, 100.0],
        )
        assigner = OnlineAssigner(problem, rule="balanced")
        assigner.assign_stream(range(4))
        loads = assigner.assignment.loads()
        assert loads[0] == loads[1]


class TestReleaseAndChurn:
    def test_release_restores_capacity(self):
        problem = AssignmentProblem(
            delay=[[1.0, 5.0], [1.0, 5.0]],
            demand=[60.0, 60.0],
            capacity=[100.0, 100.0],
        )
        assigner = OnlineAssigner(problem, rule="greedy_delay")
        server = assigner.assign(0)
        assert assigner.release(0) == server
        # the freed capacity is usable again: device 1 lands on the same server
        assert assigner.assign(1) == server

    def test_release_unknown_device_raises(self):
        problem = random_instance(5, 2, tightness=0.5, seed=9)
        assigner = OnlineAssigner(problem)
        with pytest.raises(InfeasibleSolutionError, match="not assigned"):
            assigner.release(0)

    def test_release_out_of_range_raises(self):
        problem = random_instance(5, 2, tightness=0.5, seed=9)
        with pytest.raises(ValidationError):
            OnlineAssigner(problem).release(99)

    def test_double_release_raises(self):
        problem = random_instance(5, 2, tightness=0.5, seed=9)
        assigner = OnlineAssigner(problem)
        assigner.assign(0)
        assigner.release(0)
        with pytest.raises(InfeasibleSolutionError):
            assigner.release(0)

    def test_reset_to_adopts_vector_and_residuals(self):
        problem = AssignmentProblem(
            delay=[[1.0, 5.0], [1.0, 5.0]],
            demand=[40.0, 40.0],
            capacity=[100.0, 100.0],
        )
        assigner = OnlineAssigner(problem, rule="greedy_delay")
        assigner.assign(0)
        assigner.assign(1)  # both land on server 0
        assigner.reset_to([0, 1])
        assert assigner.assignment.server_of(1) == 1
        np.testing.assert_allclose(assigner.utilization, [0.4, 0.4])

    def test_reset_to_rejects_overload(self):
        problem = AssignmentProblem(
            delay=[[1.0, 5.0], [1.0, 5.0]],
            demand=[80.0, 80.0],
            capacity=[100.0, 100.0],
        )
        with pytest.raises(ValidationError, match="overload"):
            OnlineAssigner(problem).reset_to([0, 0])


class TestZeroCapacityServers:
    def _failed_server_problem(self):
        return AssignmentProblem(
            delay=[[1.0, 5.0], [1.0, 5.0]],
            demand=[60.0, 60.0],
            capacity=[0.0, 100.0],
            failed_servers=frozenset({0}),
        )

    def test_zero_capacity_never_chosen_and_no_divide_by_zero(self):
        problem = self._failed_server_problem()
        assigner = OnlineAssigner(problem, rule="balanced")
        with np.errstate(divide="raise", invalid="raise"):
            assert assigner.assign(0) == 1
            assert np.all(np.isfinite(assigner.utilization))
        assert assigner.utilization[0] == 0.0

    @pytest.mark.parametrize("rule", ONLINE_RULES)
    def test_infeasible_raised_when_only_zero_capacity_remains(self, rule):
        problem = self._failed_server_problem()
        assigner = OnlineAssigner(problem, rule=rule)
        assigner.assign(0)  # takes the lone healthy server past the point
        with np.errstate(divide="raise", invalid="raise"), pytest.raises(
            InfeasibleSolutionError
        ):
            assigner.assign(1)

    def test_all_servers_unusable_raises_at_construction(self):
        problem = AssignmentProblem(
            delay=[[1.0, 5.0]],
            demand=[10.0],
            capacity=[0.0, 100.0],
            failed_servers=frozenset({0}),
        )
        problem.capacity = np.array([0.0, 0.0])  # bypass post-init validation
        with pytest.raises(InfeasibleSolutionError, match="no usable server"):
            OnlineAssigner(problem)


class TestAdmissionControl:
    def test_raises_when_no_server_fits(self):
        problem = AssignmentProblem(
            delay=[[1.0], [1.0]],
            demand=[60.0, 60.0],
            capacity=[100.0],
        )
        assigner = OnlineAssigner(problem)
        assigner.assign(0)
        with pytest.raises(InfeasibleSolutionError):
            assigner.assign(1)

    def test_unknown_rule_rejected(self, small_problem):
        with pytest.raises(ValidationError):
            OnlineAssigner(small_problem, rule="oracle")


class TestCompetitiveness:
    def test_online_within_factor_of_offline(self):
        """Online delay-aware rules should land within 2x of the offline
        optimum on loose instances."""
        ratios = []
        for seed in range(4):
            problem = random_instance(12, 3, tightness=0.6, seed=seed)
            offline = BranchAndBoundSolver().solve(problem).objective_value
            online = OnlineAssigner(problem, rule="reserve").assign_stream(
                range(problem.n_devices)
            )
            ratios.append(online.total_delay() / offline)
        assert np.mean(ratios) < 2.0

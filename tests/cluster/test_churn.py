"""Tests for churn process and membership controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.churn import ChurnProcess, MembershipController
from repro.errors import ValidationError
from repro.model.instances import random_instance, topology_instance
from repro.solvers.greedy import GreedyFeasibleSolver


@pytest.fixture
def problem():
    return random_instance(30, 4, tightness=0.75, seed=17)


class TestChurnProcess:
    def test_initial_active_fraction(self):
        churn = ChurnProcess(100, initially_active=0.6, seed=1)
        assert len(churn.active) == 60

    def test_events_are_consistent_with_active_set(self):
        churn = ChurnProcess(50, seed=2)
        previous = set(churn.active)
        for epoch in range(1, 10):
            event = churn.step(epoch)
            assert set(event.joined).isdisjoint(previous)
            assert set(event.left) <= previous
            expected = (previous - set(event.left)) | set(event.joined)
            assert set(event.active) == expected
            previous = expected

    def test_never_empties_completely(self):
        churn = ChurnProcess(5, join_prob=0.0, leave_prob=1.0, seed=3)
        for epoch in range(1, 20):
            event = churn.step(epoch)
            assert len(event.active) >= 1

    def test_deterministic(self):
        a = ChurnProcess(30, seed=4)
        b = ChurnProcess(30, seed=4)
        for epoch in range(1, 5):
            assert a.step(epoch) == b.step(epoch)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            ChurnProcess(0)
        with pytest.raises(ValidationError):
            ChurnProcess(10, join_prob=1.5)


class TestMembershipController:
    def test_bootstrap_places_active_devices(self, problem):
        controller = MembershipController(problem)
        churn = ChurnProcess(problem.n_devices, seed=5)
        decision = controller.bootstrap(churn.active)
        assert decision.active_count + len(decision.rejected) == len(churn.active)
        assert np.all(controller.utilization() <= 1.0 + 1e-9)

    def test_join_and_leave_update_loads(self, problem):
        controller = MembershipController(problem)
        controller.bootstrap({0, 1})
        cost_before = controller.cost()
        from repro.cluster.churn import ChurnEvent

        event = ChurnEvent(epoch=1, joined=(2,), left=(0,), active=frozenset({1, 2}))
        decision = controller.apply(event)
        assert decision.active_count == 2
        assert controller.cost() != cost_before
        assert 0 not in controller.active_devices

    def test_never_overloads_through_churn(self, problem):
        controller = MembershipController(problem, join_rule="greedy_delay")
        churn = ChurnProcess(problem.n_devices, seed=6)
        controller.bootstrap(churn.active)
        for epoch in range(1, 25):
            controller.apply(churn.step(epoch))
            assert np.all(controller.utilization() <= 1.0 + 1e-9)

    def test_rejected_joins_counted(self):
        # tiny capacity: most joins must be rejected
        problem = random_instance(20, 2, tightness=0.9, seed=7)
        problem.capacity[:] = problem.capacity / 3.0
        controller = MembershipController(problem)
        churn = ChurnProcess(problem.n_devices, initially_active=0.9, seed=8)
        controller.bootstrap(churn.active)
        assert controller.total_rejected > 0

    def test_rebalance_requires_solver(self, problem):
        with pytest.raises(ValidationError):
            MembershipController(problem, rebalance_every=2)

    def test_rebalance_reduces_or_preserves_cost(self, problem):
        from repro.cluster.churn import ChurnEvent

        greedy = MembershipController(problem, join_rule="greedy_delay")
        rebalancing = MembershipController(
            problem,
            join_rule="greedy_delay",
            rebalance_solver=GreedyFeasibleSolver(),
            rebalance_every=1,
        )
        churn = ChurnProcess(problem.n_devices, seed=9)
        initial = churn.active
        greedy.bootstrap(initial)
        rebalancing.bootstrap(initial)
        events = [churn.step(epoch) for epoch in range(1, 12)]
        for event in events:
            greedy_cost = greedy.apply(event).cost
            rebalanced_cost = rebalancing.apply(event).cost
        assert rebalanced_cost <= greedy_cost * 1.05

    def test_rebalance_counts_moves(self, problem):
        controller = MembershipController(
            problem,
            rebalance_solver=GreedyFeasibleSolver(),
            rebalance_every=1,
        )
        churn = ChurnProcess(problem.n_devices, seed=10)
        controller.bootstrap(churn.active)
        for epoch in range(1, 6):
            controller.apply(churn.step(epoch))
        assert controller.total_moves >= 0  # counter exists and is consistent
        assert controller.total_moves == pytest.approx(controller.total_moves, abs=0)

    def test_works_on_topology_instance(self):
        problem = topology_instance(
            n_routers=15, n_devices=20, n_servers=3, tightness=0.7, seed=11
        )
        controller = MembershipController(problem)
        churn = ChurnProcess(problem.n_devices, seed=12)
        controller.bootstrap(churn.active)
        for epoch in range(1, 8):
            decision = controller.apply(churn.step(epoch))
            assert decision.cost >= 0

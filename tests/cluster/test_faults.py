"""Tests for the server fault process and degraded problems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.faults import (
    ServerFaultProcess,
    degraded_problem,
    served_cost,
    serving_fraction,
)
from repro.errors import ValidationError
from repro.model.instances import random_instance
from repro.solvers.greedy import feasible_start


class TestServerFaultProcess:
    def test_starts_healthy(self):
        process = ServerFaultProcess(4, seed=1)
        assert process.failed == frozenset()

    def test_events_track_state(self):
        process = ServerFaultProcess(5, fail_prob=0.5, repair_prob=0.3, seed=2)
        previous: frozenset[int] = frozenset()
        for epoch in range(1, 20):
            event = process.step(epoch)
            # repairs run first, so a server may repair and re-fail within
            # one epoch; new failures must only avoid the still-down set
            assert set(event.newly_failed).isdisjoint(
                previous - set(event.repaired)
            )
            assert set(event.repaired) <= previous
            expected = (previous - set(event.repaired)) | set(event.newly_failed)
            assert event.failed == expected
            previous = event.failed

    def test_one_server_always_survives(self):
        process = ServerFaultProcess(3, fail_prob=1.0, repair_prob=0.0, seed=3)
        for epoch in range(1, 10):
            event = process.step(epoch)
            assert len(event.failed) <= 2

    def test_repairs_happen(self):
        process = ServerFaultProcess(4, fail_prob=0.9, repair_prob=0.9, seed=4)
        repaired_any = False
        for epoch in range(1, 30):
            if process.step(epoch).repaired:
                repaired_any = True
        assert repaired_any

    def test_deterministic(self):
        a = ServerFaultProcess(4, seed=5)
        b = ServerFaultProcess(4, seed=5)
        for epoch in range(1, 8):
            assert a.step(epoch) == b.step(epoch)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            ServerFaultProcess(0)
        with pytest.raises(ValidationError):
            ServerFaultProcess(3, fail_prob=1.5)


class TestDegradedProblem:
    def test_failed_servers_masked(self, small_problem):
        degraded = degraded_problem(small_problem, {1})
        assert degraded.capacity[1] == 0.0
        assert degraded.failed_servers == frozenset({1})
        assert degraded.capacity[0] == small_problem.capacity[0]

    def test_original_untouched(self, small_problem):
        before = small_problem.capacity.copy()
        degraded_problem(small_problem, {0})
        assert np.array_equal(small_problem.capacity, before)

    def test_solvers_route_around_failures(self):
        problem = random_instance(20, 4, tightness=0.5, seed=6)
        degraded = degraded_problem(problem, {2})
        assignment = feasible_start(degraded)
        assert assignment.is_complete
        assert 2 not in set(assignment.vector.tolist())

    def test_out_of_range_server_rejected(self, small_problem):
        with pytest.raises(ValidationError):
            degraded_problem(small_problem, {99})

    def test_no_failures_is_equivalent(self, small_problem):
        degraded = degraded_problem(small_problem, frozenset())
        assert np.array_equal(degraded.capacity, small_problem.capacity)


class TestServedCost:
    def test_all_healthy_matches_assignment_cost(self, small_problem):
        vector = feasible_start(small_problem).vector
        expected = float(
            small_problem.delay[np.arange(small_problem.n_devices), vector].sum()
        )
        assert served_cost(small_problem, vector) == pytest.approx(expected)

    def test_failed_and_unassigned_excluded(self, small_problem):
        vector = feasible_start(small_problem).vector.copy()
        full = served_cost(small_problem, vector)
        on_one = vector == 1
        without_one = served_cost(small_problem, vector, failed=frozenset({1}))
        dropped = float(small_problem.delay[on_one, 1].sum())
        assert without_one == pytest.approx(full - dropped)
        vector[0] = -1
        assert served_cost(small_problem, vector) <= full


class TestSeedDeterminism:
    """Same seed must reproduce the exact fault timeline, byte for byte."""

    def test_fault_process_timeline_identical(self):
        def timeline(seed: int) -> str:
            process = ServerFaultProcess(
                5, fail_prob=0.4, repair_prob=0.4, seed=seed
            )
            return repr([process.step(epoch) for epoch in range(1, 40)])

        assert timeline(7) == timeline(7)
        assert timeline(7) != timeline(8)

    def test_random_scenario_json_identical(self):
        from repro.faults import FaultScenario

        def schedule(seed: int) -> str:
            return FaultScenario.random(
                n_servers=4, horizon_s=120.0, seed=seed
            ).to_json()

        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)


class TestServingFraction:
    def test_all_healthy(self):
        assert serving_fraction(np.array([0, 1, 2]), frozenset(), 3) == 1.0

    def test_partial_failure(self):
        assert serving_fraction(np.array([0, 1, 0, 1]), {1}, 4) == 0.5

    def test_unassigned_devices_not_served(self):
        assert serving_fraction(np.array([-1, 0]), frozenset(), 2) == 0.5

    def test_zero_devices(self):
        assert serving_fraction(np.array([]), frozenset(), 0) == 1.0

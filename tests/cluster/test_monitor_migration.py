"""Tests for load monitoring and the migration policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.migration import MigrationPolicy, count_moves, moved_devices
from repro.cluster.monitor import LoadMonitor
from repro.errors import ValidationError


class TestLoadMonitor:
    def test_observe_and_latest(self):
        monitor = LoadMonitor(n_servers=3)
        monitor.observe([0.5, 0.6, 0.7])
        assert np.allclose(monitor.latest(), [0.5, 0.6, 0.7])

    def test_window_bounded(self):
        monitor = LoadMonitor(n_servers=1, window=3)
        for i in range(10):
            monitor.observe([float(i)])
        assert monitor.n_observations == 3
        assert monitor.mean_utilization()[0] == pytest.approx(8.0)

    def test_overloaded_detection(self):
        monitor = LoadMonitor(n_servers=3)
        monitor.observe([0.5, 1.2, 0.99])
        assert monitor.overloaded() == [1]
        assert monitor.overloaded(threshold=0.9) == [1, 2]

    def test_overloaded_empty_without_observations(self):
        assert LoadMonitor(n_servers=2).overloaded() == []

    def test_imbalance(self):
        monitor = LoadMonitor(n_servers=3)
        monitor.observe([0.2, 0.5, 0.9])
        assert monitor.imbalance() == pytest.approx(0.7)

    def test_trend_detects_rising_load(self):
        monitor = LoadMonitor(n_servers=2, window=5)
        for i in range(5):
            monitor.observe([0.1 * i, 0.5])
        trend = monitor.trend()
        assert trend[0] == pytest.approx(0.1, abs=1e-9)
        assert trend[1] == pytest.approx(0.0, abs=1e-9)

    def test_trend_zero_with_single_observation(self):
        monitor = LoadMonitor(n_servers=2)
        monitor.observe([0.5, 0.5])
        assert np.allclose(monitor.trend(), 0.0)

    def test_wrong_width_rejected(self):
        monitor = LoadMonitor(n_servers=3)
        with pytest.raises(ValidationError):
            monitor.observe([0.5, 0.6])

    def test_latest_without_observations_raises(self):
        with pytest.raises(ValidationError):
            LoadMonitor(n_servers=1).latest()


class TestCountMoves:
    def test_counts_differences(self):
        assert count_moves([0, 1, 2], [0, 2, 2]) == 1
        assert count_moves([0, 1], [0, 1]) == 0

    def test_moved_devices_indices(self):
        assert moved_devices([0, 1, 2], [1, 1, 0]) == [0, 2]


class TestMigrationPolicy:
    def test_migrates_on_clear_win(self):
        policy = MigrationPolicy(cost_per_move_s=0.001, hysteresis=0.05)
        assert policy.should_migrate(current_cost=1.0, candidate_cost=0.5, moves=10)

    def test_blocks_marginal_win(self):
        policy = MigrationPolicy(cost_per_move_s=0.0, hysteresis=0.10)
        assert not policy.should_migrate(current_cost=1.0, candidate_cost=0.95, moves=5)

    def test_migration_cost_charged_per_move(self):
        policy = MigrationPolicy(cost_per_move_s=0.02, hysteresis=0.0)
        # saving of 0.1 but 10 moves x 0.02 = 0.2 cost: refuse
        assert not policy.should_migrate(current_cost=1.0, candidate_cost=0.9, moves=10)
        # same saving with 2 moves: accept
        assert policy.should_migrate(current_cost=1.0, candidate_cost=0.9, moves=2)

    def test_zero_moves_never_migrates(self):
        policy = MigrationPolicy()
        assert not policy.should_migrate(1.0, 0.5, moves=0)

    def test_force_overrides_everything(self):
        policy = MigrationPolicy(cost_per_move_s=100.0, hysteresis=0.9)
        assert policy.should_migrate(1.0, 2.0, moves=50, force=True)

    def test_net_benefit(self):
        policy = MigrationPolicy(cost_per_move_s=0.01)
        assert policy.net_benefit(1.0, 0.8, moves=5) == pytest.approx(0.15)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            MigrationPolicy(cost_per_move_s=-1.0)
        with pytest.raises(ValidationError):
            MigrationPolicy(hysteresis=1.5)

"""Tests for the flow-based contention cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contention import ContentionConfig, ContentionModel
from repro.errors import ValidationError
from repro.model.solution import UNASSIGNED


class TestConfigValidation:
    def test_defaults_valid(self):
        config = ContentionConfig()
        assert config.mode == "mm1"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"packet_bits": 0.0},
            {"mode": "gg1"},
            {"utilization_cap": 0.0},
            {"utilization_cap": 1.0},
            {"overload_penalty_s": 0.0},
            {"flow_scale": 0.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ContentionConfig(**kwargs)


class TestLineTopologyOracle:
    """Hand-computed values on the two-device single-uplink instance."""

    def model(self, line_problem, **kwargs):
        return ContentionModel(
            line_problem, ContentionConfig(packet_bits=1000.0, **kwargs)
        )

    def test_offered_load_accumulates_on_shared_link(self, line_problem):
        model = self.model(line_problem)
        load, count = model.link_loads(np.array([0, 0]))
        # each device offers rate_hz * packet_bits = 1e5 bits/s
        backbone = model.incidence.link_index[(0, 1)]
        assert load[backbone] == pytest.approx(2e5)
        assert count[backbone] == 2
        # access links carry exactly one flow each
        assert sorted(count.tolist()).count(1) == 2

    def test_mm1_wait_formula(self, line_problem):
        model = self.model(line_problem)
        backbone = model.incidence.link_index[(0, 1)]
        # rho = 2e5 / 1e6 = 0.2; wait = rho/(1-rho) * packet/bw
        load, _ = model.link_loads(np.array([0, 0]))
        wait = model.link_wait(load)[backbone]
        assert wait == pytest.approx(0.2 / 0.8 * (1000.0 / 1e6))

    def test_total_cost_is_sum_of_effective_delays(self, line_problem):
        model = self.model(line_problem)
        vector = np.array([0, 0])
        evaluation = model.evaluate(vector)
        assert model.total_cost(vector) == pytest.approx(
            float(np.sum(evaluation.effective_delay))
        )
        assert evaluation.total_cost == pytest.approx(
            evaluation.base_total + evaluation.contention_total
        )

    def test_effective_exceeds_base_under_load(self, line_problem):
        model = self.model(line_problem)
        evaluation = model.evaluate(np.array([0, 0]))
        assert np.all(
            evaluation.effective_delay
            > model.incidence.base_delay[:, 0] - 1e-15
        )
        assert evaluation.contention_total > 0.0

    def test_unassigned_devices_offer_nothing(self, line_problem):
        model = self.model(line_problem)
        vector = np.array([0, UNASSIGNED])
        load, count = model.link_loads(vector)
        backbone = model.incidence.link_index[(0, 1)]
        assert load[backbone] == pytest.approx(1e5)
        assert count[backbone] == 1
        evaluation = model.evaluate(vector)
        assert evaluation.effective_delay[1] == 0.0

    def test_budget_mode_free_below_capacity(self, line_problem):
        model = self.model(line_problem, mode="budget")
        vector = np.array([0, 0])
        # rho = 0.2 < 1 everywhere: contention must be exactly zero
        assert model.total_cost(vector) == pytest.approx(
            float(np.sum(model.incidence.base_delay[:, 0]))
        )

    def test_budget_mode_charges_overload(self, line_problem):
        model = self.model(
            line_problem, mode="budget", flow_scale=20.0, overload_penalty_s=0.1
        )
        # backbone rho = 20 * 0.2 = 4.0 -> wait = 0.1 * 3.0 per traversal
        backbone = model.incidence.link_index[(0, 1)]
        load, _ = model.link_loads(np.array([0, 0]))
        assert model.link_wait(load)[backbone] == pytest.approx(0.3)


class TestWaitCurve:
    def test_monotone_and_continuous_at_cap(self, line_problem):
        model = ContentionModel(line_problem, ContentionConfig())
        bandwidth = model.incidence.bandwidth
        rhos = np.linspace(0.0, 2.0, 400)
        waits = [
            float(model.link_wait(np.full_like(bandwidth, rho) * bandwidth)[0])
            for rho in rhos
        ]
        assert all(b >= a - 1e-15 for a, b in zip(waits, waits[1:]))
        assert np.all(np.isfinite(waits))
        # tangent continuation: no jump where the linearization starts
        cap = model.config.utilization_cap
        below = model.link_wait(bandwidth * (cap - 1e-9))[0]
        above = model.link_wait(bandwidth * (cap + 1e-9))[0]
        assert above == pytest.approx(below, rel=1e-5)


class TestEvaluationStats:
    def test_summary_properties(self, congested_model, congested_problem):
        vector = np.zeros(congested_problem.n_devices, dtype=np.int64)
        evaluation = congested_model.evaluate(vector)
        assert evaluation.max_utilization == pytest.approx(
            float(np.max(evaluation.utilization))
        )
        assert evaluation.saturated_links == int(
            np.sum(evaluation.utilization >= 1.0)
        )
        assert evaluation.p99_effective_delay >= evaluation.mean_effective_delay

    def test_bottleneck_links_sorted_and_bounded(
        self, congested_model, congested_problem
    ):
        vector = np.zeros(congested_problem.n_devices, dtype=np.int64)
        rows = congested_model.bottleneck_links(vector, top=3)
        assert len(rows) == 3
        utils = [row["utilization"] for row in rows]
        assert utils == sorted(utils, reverse=True)
        for row in rows:
            assert row["load_bps"] == pytest.approx(
                row["utilization"] * row["bandwidth_bps"]
            )

    def test_evaluate_records_metrics(self, congested_model, congested_problem):
        from repro import obs
        from repro.obs import names as obs_names

        with obs.observed() as session:
            vector = np.zeros(congested_problem.n_devices, dtype=np.int64)
            congested_model.evaluate(vector)
            snapshot = session.snapshot()
        counters = snapshot["counters"]
        assert counters[obs_names.CONTENTION_EVALUATIONS] == 1
        assert obs_names.CONTENTION_MAX_UTILIZATION in snapshot["gauges"]

"""Tests for the congestion-aware solver variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contention import ContentionConfig, ContentionModel
from repro.errors import ValidationError
from repro.model.instances import random_instance, topology_instance
from repro.solvers.registry import available_solvers, get_solver

CONGESTION_SOLVERS = (
    "congestion_greedy",
    "congestion_local_search",
    "congestion_bottleneck",
)


@pytest.fixture(scope="module")
def thin_problem():
    """Heavily oversubscribed hierarchy where funneling visibly hurts."""
    return topology_instance(
        family="edge_hierarchy",
        n_routers=25,
        n_devices=30,
        n_servers=3,
        tightness=0.8,
        seed=0,
        oversubscription=32.0,
    )


@pytest.fixture(scope="module")
def thin_model(thin_problem):
    return ContentionModel(thin_problem, ContentionConfig(flow_scale=500.0))


class TestRegistration:
    def test_all_variants_registered(self):
        names = available_solvers()
        for name in CONGESTION_SOLVERS:
            assert name in names

    def test_config_knob_validated(self):
        with pytest.raises(ValidationError):
            get_solver(
                "congestion_greedy",
                config=ContentionConfig(flow_scale=-1.0),
            )


@pytest.mark.parametrize("name", CONGESTION_SOLVERS)
class TestEveryVariant:
    def test_complete_and_feasible_on_topology(self, name, thin_problem):
        result = get_solver(name, seed=0).solve(thin_problem)
        assert result.assignment.is_complete
        assert result.feasible

    def test_matrix_only_fallback(self, name):
        problem = random_instance(12, 3, tightness=0.7, seed=9)
        result = get_solver(name, seed=0).solve(problem)
        assert result.assignment.is_complete
        assert result.feasible
        assert "fallback" in result.extra

    def test_reports_contention_cost(self, name, thin_problem, thin_model):
        result = get_solver(
            name, seed=0, config=thin_model.config
        ).solve(thin_problem)
        assert result.extra["contention_cost"] == pytest.approx(
            thin_model.total_cost(result.assignment.vector), rel=1e-9
        )


class TestSearchQuality:
    def test_local_search_descends_from_greedy(self, thin_problem, thin_model):
        greedy = get_solver(
            "congestion_greedy", seed=0, config=thin_model.config
        ).solve(thin_problem)
        descended = get_solver(
            "congestion_local_search", seed=0, config=thin_model.config
        ).solve(thin_problem)
        assert (
            descended.extra["contention_cost"]
            <= greedy.extra["contention_cost"] + 1e-12
        )

    def test_congestion_aware_drains_the_funnel(self, thin_problem, thin_model):
        """The crossover mechanism: delay-only funnels, congestion spreads."""
        baseline = get_solver("local_search", seed=0).solve(thin_problem)
        aware = get_solver(
            "congestion_local_search", seed=0, config=thin_model.config
        ).solve(thin_problem)
        base_util = thin_model.evaluate(baseline.assignment.vector).max_utilization
        aware_util = thin_model.evaluate(aware.assignment.vector).max_utilization
        assert aware_util < base_util

    def test_bottleneck_reports_max_utilization(self, thin_problem, thin_model):
        result = get_solver(
            "congestion_bottleneck", seed=0, config=thin_model.config
        ).solve(thin_problem)
        evaluation = thin_model.evaluate(result.assignment.vector)
        assert result.extra["max_utilization"] == pytest.approx(
            evaluation.max_utilization, rel=1e-9
        )

    def test_degraded_mode_avoids_failed_servers(self):
        import dataclasses

        # loose enough that the instance stays feasible with one server down
        problem = topology_instance(
            family="edge_hierarchy",
            n_routers=25,
            n_devices=20,
            n_servers=4,
            tightness=0.5,
            seed=2,
            oversubscription=8.0,
        )
        degraded = dataclasses.replace(problem, failed_servers=frozenset({0}))
        for name in CONGESTION_SOLVERS:
            result = get_solver(name, seed=0).solve(degraded)
            assert result.feasible, name
            assert not np.any(result.assignment.vector == 0), name

"""Shared fixtures for the contention-model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contention import ContentionConfig, ContentionModel
from repro.model.entities import EdgeServer, IoTDevice
from repro.model.instances import topology_instance
from repro.model.problem import AssignmentProblem
from repro.topology.graph import NetworkGraph, NodeKind


@pytest.fixture(scope="session")
def congested_problem():
    """Oversubscribed hierarchy — thin uplinks carry real load."""
    return topology_instance(
        family="edge_hierarchy",
        n_routers=15,
        n_devices=10,
        n_servers=3,
        tightness=0.7,
        seed=11,
        oversubscription=8.0,
    )


@pytest.fixture(scope="session")
def congested_model(congested_problem):
    """Contention model scaled so the uplinks actually queue."""
    return ContentionModel(
        congested_problem, ContentionConfig(flow_scale=200.0)
    )


@pytest.fixture
def line_problem():
    """Two devices and one server across a single shared backbone link.

    Every quantity is hand-computable: both flows traverse their own
    access link, the shared ``r0--r1`` backbone link, and the server's
    attach link.
    """
    graph = NetworkGraph()
    r0 = graph.add_node(NodeKind.ROUTER, (0.0, 0.0))
    r1 = graph.add_node(NodeKind.ROUTER, (1.0, 0.0))
    graph.add_link(r0, r1, latency_s=1e-3, bandwidth_bps=1e6)
    d0 = graph.add_node(NodeKind.IOT_DEVICE, (0.0, 0.1))
    d1 = graph.add_node(NodeKind.IOT_DEVICE, (0.0, 0.2))
    s0 = graph.add_node(NodeKind.EDGE_SERVER, (1.0, 0.1))
    graph.add_link(d0, r0, latency_s=1e-4, bandwidth_bps=1e7)
    graph.add_link(d1, r0, latency_s=1e-4, bandwidth_bps=1e7)
    graph.add_link(s0, r1, latency_s=1e-4, bandwidth_bps=1e7)
    devices = [
        IoTDevice(device_id=0, node_id=d0, demand=1.0, rate_hz=100.0),
        IoTDevice(device_id=1, node_id=d1, demand=1.0, rate_hz=100.0),
    ]
    servers = [EdgeServer(server_id=0, node_id=s0, capacity=10.0)]
    return AssignmentProblem(
        delay=np.ones((2, 1)),
        demand=[1.0, 1.0],
        capacity=[10.0],
        graph=graph,
        devices=devices,
        servers=servers,
    )

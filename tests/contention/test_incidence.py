"""Tests for the path→link incidence structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contention import build_incidence
from repro.errors import ContentionError
from repro.model.instances import random_instance
from repro.topology.delay import DelayModel


class TestBuildIncidence:
    def test_base_delay_matches_problem_matrix(self, congested_problem):
        # topology_instance fills problem.delay from the same routed
        # TransmissionDelayModel, so the incidence must agree exactly
        incidence = build_incidence(congested_problem)
        assert np.allclose(incidence.base_delay, congested_problem.delay)

    def test_shapes_and_alignment(self, congested_problem):
        incidence = build_incidence(congested_problem)
        assert incidence.n_devices == congested_problem.n_devices
        assert incidence.n_servers == congested_problem.n_servers
        assert incidence.bandwidth.shape == (incidence.n_links,)
        for idx, link in enumerate(incidence.links):
            assert incidence.bandwidth[idx] == link.bandwidth_bps
            key = (min(link.u, link.v), max(link.u, link.v))
            assert incidence.link_index[key] == idx

    def test_path_indices_in_range(self, congested_problem):
        incidence = build_incidence(congested_problem)
        for row in incidence.path_links:
            assert len(row) == incidence.n_servers
            for indices in row:
                if indices.size:
                    assert indices.min() >= 0
                    assert indices.max() < incidence.n_links

    def test_path_weights_sum_to_base_delay(self, line_problem):
        incidence = build_incidence(line_problem)
        # device 0 -> server 0 crosses exactly three links
        indices = incidence.path_links[0][0]
        assert indices.size == 3
        from repro.topology.delay import TransmissionDelayModel

        model = TransmissionDelayModel()
        total = sum(model.link_weight(incidence.links[i]) for i in indices)
        assert incidence.base_delay[0, 0] == pytest.approx(total)

    def test_deterministic(self, congested_problem):
        first = build_incidence(congested_problem)
        second = build_incidence(congested_problem)
        assert [(l.u, l.v) for l in first.links] == [
            (l.u, l.v) for l in second.links
        ]
        assert np.array_equal(first.base_delay, second.base_delay)


class TestIncidenceErrors:
    def test_matrix_only_problem_rejected(self):
        with pytest.raises(ContentionError):
            build_incidence(random_instance(5, 2, seed=1))

    def test_model_without_link_weight_rejected(self, congested_problem):
        class MatrixOnlyModel(DelayModel):
            name = "matrix_only"

            def matrix(self, graph, sources, targets):
                """Return matrix."""
                return np.zeros((len(sources), len(targets)))

        with pytest.raises(ContentionError):
            build_incidence(congested_problem, MatrixOnlyModel())

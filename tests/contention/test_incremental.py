"""Property suite: the incremental evaluator equals the exact oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contention import (
    ContentionConfig,
    ContentionModel,
    IncrementalEvaluator,
)
from repro.model.instances import topology_instance
from repro.model.solution import UNASSIGNED

#: one shared routed instance — Hypothesis draws move sequences, not
#: topologies, so the slow routing step runs once per module
_PROBLEM = topology_instance(
    family="edge_hierarchy",
    n_routers=15,
    n_devices=10,
    n_servers=3,
    tightness=0.7,
    seed=11,
    oversubscription=8.0,
)
_MODELS = {
    mode: ContentionModel(
        _PROBLEM, ContentionConfig(flow_scale=200.0, mode=mode)
    )
    for mode in ("mm1", "budget")
}

N, M = _PROBLEM.n_devices, _PROBLEM.n_servers

shifts = st.lists(
    st.tuples(st.integers(0, N - 1), st.integers(0, M - 1)),
    min_size=1,
    max_size=30,
)
swaps = st.lists(
    st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)),
    max_size=15,
)
start_vectors = st.lists(
    st.integers(-1, M - 1), min_size=N, max_size=N
).map(lambda v: np.array(v, dtype=np.int64))


@settings(max_examples=40, deadline=None)
@given(start=start_vectors, moves=shifts, mode=st.sampled_from(["mm1", "budget"]))
def test_property_running_total_tracks_oracle(start, moves, mode):
    """After any shift sequence the running total equals a fresh recompute."""
    model = _MODELS[mode]
    evaluator = IncrementalEvaluator(model, start)
    for device, server in moves:
        evaluator.apply_shift(device, server)
    assert evaluator.total_cost == pytest.approx(
        model.total_cost(evaluator.vector), rel=1e-9, abs=1e-12
    )
    load, count = model.link_loads(evaluator.vector)
    assert np.allclose(evaluator.load, load)
    assert np.array_equal(evaluator.count, count)


@settings(max_examples=40, deadline=None)
@given(start=start_vectors, moves=shifts)
def test_property_shift_delta_matches_oracle_difference(start, moves):
    """An uncommitted delta equals the oracle cost difference exactly."""
    model = _MODELS["mm1"]
    evaluator = IncrementalEvaluator(model, start)
    before = model.total_cost(evaluator.vector)
    for device, server in moves:
        delta = evaluator.shift_delta(device, server)
        probe = evaluator.vector.copy()
        probe[device] = server
        assert delta == pytest.approx(
            model.total_cost(probe) - before, rel=1e-9, abs=1e-12
        )
        evaluator.apply_shift(device, server)
        before = model.total_cost(evaluator.vector)


@settings(max_examples=40, deadline=None)
@given(start=start_vectors, pairs=swaps)
def test_property_swap_delta_matches_oracle_difference(start, pairs):
    model = _MODELS["mm1"]
    evaluator = IncrementalEvaluator(model, start)
    for first, second in pairs:
        before = model.total_cost(evaluator.vector)
        delta = evaluator.swap_delta(first, second)
        probe = evaluator.vector.copy()
        probe[first], probe[second] = probe[second], probe[first]
        assert delta == pytest.approx(
            model.total_cost(probe) - before, rel=1e-9, abs=1e-12
        )
        evaluator.apply_swap(first, second)
        assert evaluator.total_cost == pytest.approx(
            model.total_cost(evaluator.vector), rel=1e-9, abs=1e-12
        )


@settings(max_examples=30, deadline=None)
@given(
    vector=st.lists(st.integers(0, M - 1), min_size=N, max_size=N),
    order_seed=st.integers(0, 2**31 - 1),
)
def test_property_utilization_invariant_under_device_order(vector, order_seed):
    """Link loads are a sum over devices — arrival order cannot matter."""
    model = _MODELS["mm1"]
    target = np.array(vector, dtype=np.int64)
    direct = model.utilization(target)
    # build the same assignment one shift at a time, in a random order
    evaluator = IncrementalEvaluator(
        model, np.full(N, UNASSIGNED, dtype=np.int64)
    )
    order = np.random.default_rng(order_seed).permutation(N)
    for device in order:
        evaluator.apply_shift(int(device), int(target[device]))
    assert np.allclose(evaluator.load / model.incidence.bandwidth, direct)
    assert evaluator.total_cost == pytest.approx(
        model.total_cost(target), rel=1e-9, abs=1e-12
    )


def test_noop_moves_are_free():
    model = _MODELS["mm1"]
    vector = np.zeros(N, dtype=np.int64)
    evaluator = IncrementalEvaluator(model, vector)
    before = evaluator.total_cost
    assert evaluator.shift_delta(0, 0) == 0.0
    assert evaluator.swap_delta(0, 1) == 0.0  # same server
    evaluator.apply_shift(0, 0)
    evaluator.apply_swap(0, 1)
    assert evaluator.total_cost == before


def test_evaluator_copies_the_start_vector():
    model = _MODELS["mm1"]
    vector = np.zeros(N, dtype=np.int64)
    evaluator = IncrementalEvaluator(model, vector)
    evaluator.apply_shift(0, 1)
    assert vector[0] == 0

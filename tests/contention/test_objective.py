"""Tests for the congestion objective mode on AssignmentProblem."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.contention import ContentionModel, ContentionObjective
from repro.model.solution import Assignment
from repro.solvers.registry import get_solver


@pytest.fixture
def congestion_problem(congested_problem):
    return dataclasses.replace(congested_problem, objective="congestion")


class TestContentionObjective:
    def test_matches_model_total_cost(self, congested_problem):
        objective = ContentionObjective()
        vector = np.zeros(congested_problem.n_devices, dtype=np.int64)
        assignment = Assignment(congested_problem, vector)
        assert objective.evaluate(assignment) == pytest.approx(
            ContentionModel(congested_problem).total_cost(vector)
        )

    def test_model_cached_per_problem(self, congested_problem):
        objective = ContentionObjective()
        vector = np.zeros(congested_problem.n_devices, dtype=np.int64)
        objective.evaluate(Assignment(congested_problem, vector))
        objective.evaluate(Assignment(congested_problem, vector))
        assert len(objective._models) == 1


class TestSolverScoring:
    def test_congestion_mode_scores_effective_delay(
        self, congested_problem, congestion_problem
    ):
        plain = get_solver("local_search", seed=0).solve(congested_problem)
        scored = get_solver("local_search", seed=0).solve(congestion_problem)
        # identical search, identical assignment...
        assert np.array_equal(
            plain.assignment.vector, scored.assignment.vector
        )
        # ...but the congestion-mode result is priced with contention
        expected = ContentionModel(congested_problem).total_cost(
            scored.assignment.vector
        )
        assert scored.objective_value == pytest.approx(expected)
        assert scored.objective_value > plain.objective_value

    def test_delay_mode_unchanged(self, congested_problem):
        result = get_solver("greedy", seed=0).solve(congested_problem)
        assert result.objective_value == pytest.approx(
            result.assignment.total_delay()
        )

    def test_explicit_solver_objective_wins(self, congestion_problem):
        result = get_solver(
            "greedy", seed=0, objective="max_delay"
        ).solve(congestion_problem)
        assert result.objective_value == pytest.approx(
            result.assignment.max_delay()
        )

"""Harness pieces: goodput bookkeeping, plan agreement, and one real
multi-process cluster smoke (subprocess spawn, TCP load, clean stop)."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.loadtest import LoadTestConfig
from repro.shard.harness import (
    HarnessConfig,
    RecordingClient,
    run_sharded_loadtest,
)
from repro.utils.validation import ValidationError


def run(coro):
    return asyncio.run(coro)


class TestRecordingClient:
    def make(self, records):
        client = RecordingClient(inner=object())
        client.records = records
        return client

    def test_timeline_buckets_and_goodput(self):
        client = self.make([
            (0.1, "ok", "assign"),
            (0.2, "ok", "release"),
            (0.3, "rejected", "assign"),
            (0.6, "ok", "assign"),
            (0.7, "error", "assign"),
        ])
        timeline = client.timeline(window_s=0.5)
        assert timeline == [
            {"t0": 0.0, "ok": 2, "total": 3, "goodput": round(2 / 3, 6)},
            {"t0": 0.5, "ok": 1, "total": 2, "goodput": 0.5},
        ]

    def test_stats_responses_excluded(self):
        client = self.make([
            (0.1, "ok", "stats"),
            (0.2, "ok", "assign"),
        ])
        assert client.timeline(0.5) == [
            {"t0": 0.0, "ok": 1, "total": 1, "goodput": 1.0}
        ]
        assert client.goodput_over(0.0, 1.0) == 1.0

    def test_goodput_over_window(self):
        client = self.make([
            (0.1, "ok", "assign"),
            (0.4, "error", "assign"),
            (0.9, "error", "assign"),
        ])
        assert client.goodput_over(0.0, 0.5) == 0.5
        assert client.goodput_over(0.5, 1.0) == 0.0
        assert client.goodput_over(5.0, 6.0) == 1.0  # silence counts clean

    def test_bad_window_rejected(self):
        client = self.make([])
        with pytest.raises(ValidationError):
            client.timeline(0.0)


class TestHarnessConfig:
    def test_plan_is_deterministic_across_builds(self):
        config = HarnessConfig(n_shards=3, seed=5)
        assert config.plan().to_dict() == config.plan().to_dict()

    def test_instance_argv_matches_problem(self):
        config = HarnessConfig(devices=50, servers=6, seed=9)
        argv = config.instance_argv()
        assert "--devices" in argv and "50" in argv
        assert config.problem().n_devices == 50

    def test_validation(self):
        with pytest.raises(ValidationError):
            HarnessConfig(n_shards=0)


class TestSubprocessCluster:
    """Spawns real ``repro shard serve`` processes — the slowest test
    in the suite, kept to one small cluster and one short run."""

    def test_loadtest_smoke_clean_run(self):
        async def scenario():
            config = HarnessConfig(
                n_shards=2, routers=15, devices=40, servers=4,
                tightness=0.7, seed=1,
            )
            load = LoadTestConfig(
                n_requests=200, profile="closed", concurrency=8,
                rate_hz=2000.0, seed=1,
            )
            return await run_sharded_loadtest(config, load)

        result = run(scenario())
        assert result.report.n_requests == 200
        assert result.report.errors == 0
        assert len(result.plan_shards) >= 1
        assert set(result.ports) == set(result.plan_shards)
        assert result.fault_log == []
        # every shard exited 0 on SIGTERM
        assert all(code == 0 for code in result.shutdown_codes.values())
        # the run produced a goodput timeline with real traffic in it
        assert sum(w["total"] for w in result.timeline) == 200

    def test_traced_loadtest_stitches_across_processes(self, tmp_path):
        """The tracing acceptance path: a netem'd subprocess cluster
        yields one stitched trace covering client, router, wire, shard
        service, and batcher with parent/child links intact."""
        from repro.netem import NetemScript
        from repro.obs.trace import build_trace, load_trace_dir, trace_ids

        async def scenario():
            config = HarnessConfig(
                n_shards=2, routers=15, devices=40, servers=4,
                tightness=0.7, seed=1, trace_dir=str(tmp_path),
                default_deadline_ms=5000.0,
            )
            load = LoadTestConfig(
                n_requests=60, profile="closed", concurrency=4,
                rate_hz=2000.0, seed=1, deadline_ms=5000.0,
            )
            netem = NetemScript.from_dict({
                "name": "trace-smoke", "seed": 3,
                "rules": [{"kind": "delay", "edge": "*",
                           "delay_s": 0.001}],
            })
            return await run_sharded_loadtest(config, load, netem=netem)

        result = run(scenario())
        assert result.report.errors == 0
        assert result.trace_dir == str(tmp_path)
        records = load_trace_dir(tmp_path)
        # harness-side spans and shard-subprocess spans both landed
        assert {r.process for r in records} >= {"harness"} and any(
            r.process.startswith("shard-") for r in records
        )
        full_chains = 0
        for trace_id in trace_ids(records):
            roots, orphans = build_trace(records, trace_id)
            if orphans or len(roots) != 1:
                continue
            names = set()
            stack = list(roots)
            while stack:
                node = stack.pop()
                names.add(node.record.name)
                stack.extend(node.children)
            if names >= {"client/request", "router/route", "netem/wire",
                         "serve/request", "serve/batch"}:
                full_chains += 1
        assert full_chains > 0, (
            "no stitched trace covered client -> router -> wire -> "
            "shard -> batcher with intact links"
        )

"""Shard plans: region extraction, slicing, and the JSON round-trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SerializationError, ValidationError
from repro.model.instances import random_instance, topology_instance
from repro.model.problem import AssignmentProblem
from repro.shard.partition import (
    NO_REGION,
    ShardPlan,
    build_plan,
    extract_regions,
    shard_name,
)
from repro.topology.graph import CORE_REGION


@pytest.fixture
def labeled_problem():
    """A hierarchical instance whose graph carries region labels."""
    return topology_instance(
        family="edge_hierarchy", n_routers=40, n_devices=60,
        n_servers=8, tightness=0.7, seed=3,
    )


@pytest.fixture
def matrix_problem():
    """A matrix-only instance: no graph, pseudo-regions apply."""
    return random_instance(30, 5, tightness=0.6, seed=7)


class TestExtractRegions:
    def test_labeled_graph_regions_used(self, labeled_problem):
        device_regions, server_regions = extract_regions(labeled_problem)
        graph = labeled_problem.graph
        for i, d in enumerate(labeled_problem.devices):
            assert device_regions[i] == graph.region_of(d.node_id)
        for j, s in enumerate(labeled_problem.servers):
            assert server_regions[j] == graph.region_of(s.node_id)

    def test_unlabeled_nodes_distinct_from_core_region(self, labeled_problem):
        # core-attached capacity (region -1) must not be lumped with
        # genuinely unlabeled nodes
        graph = labeled_problem.graph
        core = labeled_problem.servers[0]
        bare = labeled_problem.servers[1]
        graph.set_region(core.node_id, CORE_REGION)
        graph.set_region(bare.node_id, None)
        _, server_regions = extract_regions(labeled_problem)
        assert server_regions[0] == CORE_REGION
        assert server_regions[1] == NO_REGION
        assert NO_REGION != CORE_REGION

    def test_matrix_fallback_is_pseudo_regions(self, matrix_problem):
        device_regions, server_regions = extract_regions(matrix_problem)
        assert list(server_regions) == list(range(matrix_problem.n_servers))
        expected = np.argmin(matrix_problem.delay, axis=1)
        assert list(device_regions) == list(expected)


class TestBuildPlan:
    def test_every_server_in_exactly_one_shard(self, labeled_problem):
        plan = build_plan(labeled_problem, 3)
        owned = sorted(j for s in plan.shards for j in s.servers)
        assert owned == list(range(labeled_problem.n_servers))

    def test_no_empty_shards_survive(self, matrix_problem):
        # asking for more shards than regions forces elimination
        plan = build_plan(matrix_problem, 4)
        assert all(len(s.servers) >= 1 for s in plan.shards)
        assert 1 <= plan.n_shards <= 4

    def test_deterministic(self, labeled_problem):
        a = build_plan(labeled_problem, 3, seed=1)
        b = build_plan(labeled_problem, 3, seed=1)
        assert a.to_dict() == b.to_dict()

    def test_home_shard_consistent_with_devices_of_shard(self, labeled_problem):
        plan = build_plan(labeled_problem, 3)
        for spec in plan.shards:
            for device in plan.devices_of_shard(spec.name):
                assert plan.shard_of_device(int(device)) == spec.name

    def test_preference_starts_at_home(self, labeled_problem):
        plan = build_plan(labeled_problem, 3)
        for device in range(plan.n_devices):
            order = plan.preference_of_device(device)
            assert order[0] == plan.shard_of_device(device)
            assert sorted(order) == sorted(s.name for s in plan.shards)

    def test_invalid_shard_count_rejected(self, matrix_problem):
        with pytest.raises(ValidationError):
            build_plan(matrix_problem, 0)


class TestSubproblem:
    def test_slice_shapes_and_values(self, labeled_problem):
        plan = build_plan(labeled_problem, 3)
        spec = plan.shards[0]
        sub = plan.subproblem(labeled_problem, spec.name)
        cols = np.array(spec.servers)
        assert sub.n_devices == labeled_problem.n_devices
        assert sub.n_servers == len(spec.servers)
        assert np.array_equal(sub.delay, labeled_problem.delay[:, cols])
        assert np.array_equal(sub.demand, labeled_problem.demand[:, cols])
        assert np.array_equal(sub.capacity, labeled_problem.capacity[cols])
        assert spec.name in sub.name

    def test_failed_servers_remapped_to_local_columns(self, matrix_problem):
        plan = build_plan(matrix_problem, 2)
        spec = max(plan.shards, key=lambda s: len(s.servers))
        failed_global = spec.servers[-1]
        broken = AssignmentProblem(
            delay=matrix_problem.delay,
            demand=matrix_problem.demand,
            capacity=matrix_problem.capacity,
            failed_servers=frozenset({failed_global}),
        )
        sub = plan.subproblem(broken, spec.name)
        assert sub.failed_servers == frozenset({len(spec.servers) - 1})

    def test_global_server_roundtrip(self, labeled_problem):
        plan = build_plan(labeled_problem, 3)
        for spec in plan.shards:
            for local, global_j in enumerate(spec.servers):
                assert plan.global_server(spec.name, local) == global_j

    def test_global_server_out_of_range(self, labeled_problem):
        plan = build_plan(labeled_problem, 3)
        name = plan.shards[0].name
        with pytest.raises(ValidationError):
            plan.global_server(name, len(plan.shards[0].servers))


class TestSerialization:
    def test_dict_roundtrip(self, labeled_problem):
        plan = build_plan(labeled_problem, 3)
        clone = ShardPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        assert all(
            clone.shard_of_device(d) == plan.shard_of_device(d)
            for d in range(plan.n_devices)
        )

    def test_file_roundtrip(self, matrix_problem, tmp_path):
        plan = build_plan(matrix_problem, 2)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert ShardPlan.load(path).to_dict() == plan.to_dict()

    def test_bad_payload_raises(self):
        with pytest.raises(SerializationError):
            ShardPlan.from_dict({"shards": "nope"})

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            ShardPlan.load(path)


class TestNames:
    def test_canonical_names(self):
        assert shard_name(0) == "shard-0"
        assert shard_name(11) == "shard-11"

"""LatencyTracker: hedge delays and gray-outlier ejection."""

from __future__ import annotations

from repro.shard.latency import LatencyTracker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _feed(tracker: LatencyTracker, shard: str, latency_s: float,
          n: int = 16) -> None:
    for _ in range(n):
        tracker.observe(shard, latency_s)


class TestHedgeDelay:
    def test_default_until_enough_samples(self):
        tracker = LatencyTracker(min_samples=8, default_hedge_delay_s=0.05)
        tracker.observe("shard-0", 0.001)
        assert tracker.p95("shard-0") is None
        assert tracker.hedge_delay_s("shard-0") == 0.05

    def test_delay_tracks_the_shards_own_p95(self):
        tracker = LatencyTracker(hedge_multiplier=1.5)
        _feed(tracker, "shard-0", 0.1)
        assert tracker.p95("shard-0") == 0.1
        assert tracker.hedge_delay_s("shard-0") == 0.1 * 1.5

    def test_fast_shard_is_floored_not_hedged_on_noise(self):
        tracker = LatencyTracker(min_hedge_delay_s=0.01)
        _feed(tracker, "shard-0", 1e-4)
        assert tracker.hedge_delay_s("shard-0") == 0.01


class TestEjection:
    def test_slow_outlier_is_ejected_and_demoted(self):
        clock = FakeClock()
        tracker = LatencyTracker(ejection_multiplier=3.0,
                                 ejection_cooldown_s=5.0, clock=clock)
        _feed(tracker, "shard-0", 0.01)
        _feed(tracker, "shard-1", 0.01)
        _feed(tracker, "shard-2", 0.2)  # 20x its peers: gray
        assert tracker.refresh_ejections() == {"shard-2"}
        assert tracker.is_ejected("shard-2")
        assert tracker.ejections_total == 1
        order = tracker.demote_ejected(["shard-2", "shard-0", "shard-1"])
        assert order == ["shard-0", "shard-1", "shard-2"]

    def test_ejection_expires_after_cooldown(self):
        clock = FakeClock()
        tracker = LatencyTracker(ejection_cooldown_s=5.0, clock=clock)
        _feed(tracker, "shard-0", 0.01)
        _feed(tracker, "shard-1", 0.01)
        _feed(tracker, "shard-2", 0.2)
        tracker.refresh_ejections()
        clock.t = 5.0
        assert not tracker.is_ejected("shard-2")
        order = tracker.demote_ejected(["shard-2", "shard-0"])
        assert order[0] == "shard-2"  # back to its ring position

    def test_two_shards_cannot_call_each_other_outliers(self):
        # with one peer there is no median to be an outlier against
        tracker = LatencyTracker(clock=FakeClock())
        _feed(tracker, "shard-0", 0.01)
        _feed(tracker, "shard-1", 0.5)
        assert tracker.refresh_ejections() == set()

    def test_uniformly_slow_cluster_keeps_all_shards(self):
        tracker = LatencyTracker(clock=FakeClock())
        for name in ("shard-0", "shard-1", "shard-2"):
            _feed(tracker, name, 0.2)
        assert tracker.refresh_ejections() == set()

    def test_refresh_survives_expired_cooldowns(self):
        # refresh must not crash when is_ejected() prunes an expired
        # entry from the dict the result set is built from (regression:
        # RuntimeError('dictionary changed size during iteration') on
        # the request path once any cooldown lapsed)
        clock = FakeClock()
        tracker = LatencyTracker(ejection_cooldown_s=5.0, clock=clock)
        _feed(tracker, "shard-0", 0.01)
        _feed(tracker, "shard-1", 0.01)
        _feed(tracker, "shard-2", 0.2)
        assert tracker.refresh_ejections() == {"shard-2"}
        # the outlier heals, so the next refresh does not renew it...
        _feed(tracker, "shard-2", 0.01, n=64)
        clock.t = 5.0  # ...and its cooldown has already expired
        assert tracker.refresh_ejections() == set()
        assert not tracker.is_ejected("shard-2")

"""Router behavior: routing, failover, reconciliation, rebalance,
and the sharded-vs-serial replay equivalence the tier is judged on."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import DeadlineExceededError
from repro.model.instances import topology_instance
from repro.serve.loadtest import generate_trace, replay_serial
from repro.serve.protocol import Request
from repro.serve.server import TCPServer, open_client
from repro.serve.service import AssignmentService, ServiceConfig
from repro.shard.backend import CircuitBreaker, InProcessBackend, TCPBackend
from repro.shard.partition import build_plan
from repro.shard.router import RouterConfig, ShardRouter


def run(coro):
    return asyncio.run(coro)


def make_problem(seed: int = 3):
    return topology_instance(
        family="edge_hierarchy", n_routers=40, n_devices=60,
        n_servers=8, tightness=0.7, seed=seed,
    )


class RecordingBackend(InProcessBackend):
    """In-process backend that logs every op it actually forwarded."""

    def __init__(self, name, service, breaker=None):
        super().__init__(name, service, breaker)
        self.forwarded: "list[Request]" = []

    async def request(self, request):
        response = await super().request(request)
        if request.op in ("assign", "release"):
            self.forwarded.append(request)
        return response


async def make_cluster(
    problem, n_shards=3, breaker_threshold=3, config=None
):
    """Plan + one in-process service per shard + a started router."""
    plan = build_plan(problem, n_shards)
    services = {}
    backends = {}
    for spec in plan.shards:
        service = AssignmentService(
            plan.subproblem(problem, spec.name),
            ServiceConfig(max_wait_s=0.0),
        )
        await service.start()
        services[spec.name] = service
        backends[spec.name] = RecordingBackend(
            spec.name, service,
            CircuitBreaker(failure_threshold=breaker_threshold),
        )
    router = ShardRouter(plan, backends, config)
    await router.start()
    return plan, services, backends, router


async def shutdown(services, router):
    await router.stop()
    for service in services.values():
        if service.started:
            await service.stop()


class TestRouting:
    def test_assign_lands_on_home_shard_with_global_server(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                for device in range(10):
                    response = await router.request(
                        Request(op="assign", device=device)
                    )
                    assert response.ok
                    home = plan.shard_of_device(device)
                    # the server index is global and owned by home
                    assert response.server in plan.shard(home).servers
                assert router.spillovers_total == 0
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_release_follows_the_device(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                assert (await router.request(
                    Request(op="assign", device=4))).ok
                response = await router.request(
                    Request(op="release", device=4))
                assert response.ok
                # released: the shard state agrees
                stats = await router.request(Request(op="stats"))
                assert stats.stats["active_devices"] == 0
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_client_ids_never_reach_backends_but_come_back(self):
        # clients stamp ids per connection; the router must not leak
        # them into its shared backend transports (they would collide
        # in a TCP client's in-flight table) yet must echo them back
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                # two "connections" both using id=1, plus a higher id
                for request in (
                    Request(op="assign", device=0, id=1),
                    Request(op="assign", device=1, id=1),
                    Request(op="release", device=0, id=7),
                ):
                    response = await router.request(request)
                    assert response.ok
                    assert response.id == request.id
                forwarded = [
                    r for b in backends.values() for r in b.forwarded
                ]
                assert len(forwarded) == 3
                assert all(r.id == 0 for r in forwarded)
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_concurrent_duplicate_release_loser_keeps_its_error(self):
        # both releases read the location before either resolves; the
        # loser's legitimate 'not assigned' error must NOT be rewritten
        # into a reconciled 'ok'
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                assert (await router.request(
                    Request(op="assign", device=4))).ok
                first = router.send(Request(op="release", device=4))
                second = router.send(Request(op="release", device=4))
                responses = await asyncio.gather(first, second)
                statuses = sorted(r.status for r in responses)
                assert statuses == ["error", "ok"]
                assert 4 not in router._locations
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_unknown_op_and_bad_device_are_errors(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                response = await router.request(
                    Request(op="migrate", devices=(0,), epoch=0))
                assert response.status == "error"
                response = await router.request(
                    Request(op="assign", device=10_000))
                assert response.status == "error"
            finally:
                await shutdown(services, router)

        run(scenario())


class TestFailover:
    def test_assigns_spill_when_home_shard_dies(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                victim = plan.shards[0].name
                victims = [
                    int(d) for d in plan.devices_of_shard(victim)][:5]
                assert victims, "plan gave shard-0 no home devices"
                await services[victim].stop()
                for device in victims:
                    response = await router.request(
                        Request(op="assign", device=device))
                    assert response.ok
                    landed = router._locations[device]
                    assert landed != victim
                    # globalized server belongs to the shard that took it
                    assert response.server in plan.shard(landed).servers
                assert router.spillovers_total == len(victims)
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_breaker_opens_after_repeated_failures(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(
                problem, breaker_threshold=3)
            try:
                victim = plan.shards[0].name
                victims = [
                    int(d) for d in plan.devices_of_shard(victim)][:5]
                await services[victim].stop()
                for device in victims:
                    await router.request(Request(op="assign", device=device))
                assert backends[victim].breaker.state == CircuitBreaker.OPEN
                assert backends[victim].breaker.trips == 1
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_release_to_dead_holder_reports_released(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                device = int(plan.devices_of_shard(plan.shards[0].name)[0])
                assert (await router.request(
                    Request(op="assign", device=device))).ok
                await services[plan.shards[0].name].stop()
                response = await router.request(
                    Request(op="release", device=device))
                assert response.ok
                assert "failure" in response.detail
                assert device not in router._locations
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_release_reconciles_after_restart_lost_state(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(
                problem, breaker_threshold=100)
            try:
                name = plan.shards[0].name
                device = int(plan.devices_of_shard(name)[0])
                assert (await router.request(
                    Request(op="assign", device=device))).ok
                # crash-and-restart: same shard, empty state
                await services[name].stop()
                services[name] = AssignmentService(
                    plan.subproblem(problem, name),
                    ServiceConfig(max_wait_s=0.0),
                )
                await services[name].start()
                backends[name].service = services[name]
                response = await router.request(
                    Request(op="release", device=device))
                assert response.ok
                assert "reconciled" in response.detail
            finally:
                await shutdown(services, router)

        run(scenario())


class TestHedgeLoserReap:
    def test_deadline_cut_loser_releases_its_possible_landing(self):
        # a hedge loser whose await was deadline-cut is exactly as
        # ambiguous as one whose answer was lost: the assign may have
        # applied before the cut, so _abandon's reaper must spawn the
        # same best-effort ghost release (regression: the landing held
        # shard capacity until the rebalancer noticed)
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                name = plan.shards[0].name
                device = int(plan.devices_of_shard(name)[0])
                # the loser's landing: the shard holds the device
                assert (await router.request(
                    Request(op="assign", device=device))).ok

                async def cut_loser():
                    raise DeadlineExceededError("deadline cut the await")

                task = asyncio.create_task(cut_loser())
                await asyncio.wait({task})
                router._abandon({task: (name, True)}, device)
                await asyncio.sleep(0)  # run the done-callback
                while router._cleanup_tasks:
                    await asyncio.gather(
                        *tuple(router._cleanup_tasks),
                        return_exceptions=True,
                    )
                assert router.ghost_releases_total == 1
                stats = (await router.request(Request(op="stats"))).stats
                assert stats["per_shard"][name]["active_devices"] == 0
            finally:
                await shutdown(services, router)

        run(scenario())


class TestStats:
    def test_aggregates_cover_all_shards(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                for device in range(8):
                    await router.request(Request(op="assign", device=device))
                stats = (await router.request(Request(op="stats"))).stats
                assert stats["shards"] == plan.n_shards
                assert stats["shards_up"] == plan.n_shards
                assert stats["active_devices"] == 8
                assert stats["devices"] == problem.n_devices
                assert stats["servers"] == problem.n_servers
                assert set(stats["per_shard"]) == {
                    s.name for s in plan.shards}
                assert all(
                    state == "closed"
                    for state in stats["breaker_states"].values()
                )
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_dead_shard_drops_out_of_shards_up(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                await services[plan.shards[0].name].stop()
                stats = (await router.request(Request(op="stats"))).stats
                assert stats["shards_up"] == plan.n_shards - 1
            finally:
                await shutdown(services, router)

        run(scenario())


class TestRebalance:
    def test_strays_are_repatriated(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(
                problem, breaker_threshold=100)
            try:
                home = plan.shards[0].name
                strays = [int(d) for d in plan.devices_of_shard(home)][:4]
                await services[home].stop()
                for device in strays:
                    assert (await router.request(
                        Request(op="assign", device=device))).ok
                await services[home].start()  # the shard comes back
                moved = await router.rebalance_once()
                assert moved == len(strays)
                assert all(
                    router._locations[d] == home for d in strays)
                # shard state moved with the bookkeeping
                stats = (await router.request(Request(op="stats"))).stats
                assert stats["per_shard"][home]["active_devices"] == len(strays)
                assert stats["migrated_total"] == len(strays)
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_shaved_devices_are_not_repatriated_back(self):
        # a load-shave moves devices OFF their home shard; the next
        # round's repatriation must not drag them straight back (the
        # donor/target ping-pong the reviewer called churn)
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                donor = plan.shards[0].name
                devices = [
                    int(d) for d in plan.devices_of_shard(donor)][:4]
                assert devices, "plan gave shard-0 no home devices"
                for device in devices:
                    assert (await router.request(
                        Request(op="assign", device=device))).ok

                # doctor gossip to demand a shave from the donor, and
                # pin it by disabling the refresh inside rebalance_once
                async def frozen_stats():
                    return {}

                router._stats = frozen_stats
                router._gossip = {
                    name: {
                        "mean_utilization": 1.0 if name == donor else 0.0,
                        "epoch": services[name].state.epoch,
                    }
                    for name in backends
                }
                moved = await router.rebalance_once()
                assert moved >= 1
                shaved = set(router._shaved)
                assert shaved and shaved <= set(devices)
                assert all(
                    router._locations[d] != donor for d in shaved)
                # next round: no repatriation batch for shaved devices
                batch = router._pick_migration_batch()
                if batch is not None:
                    _, _, picked, kind = batch
                    assert kind != "repatriate" or not (
                        set(picked) & shaved)
                # a fresh release+assign clears the shave mark again
                probe = sorted(shaved)[0]
                assert (await router.request(
                    Request(op="release", device=probe))).ok
                assert (await router.request(
                    Request(op="assign", device=probe))).ok
                assert probe not in router._shaved
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_stale_epoch_migration_rejected(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                name = plan.shards[0].name
                device = int(plan.devices_of_shard(name)[0])
                assert (await router.request(
                    Request(op="assign", device=device))).ok
                stale = services[name].state.epoch
                other = int(plan.devices_of_shard(name)[1])
                assert (await router.request(
                    Request(op="assign", device=other))).ok  # epoch bump
                response = await backends[name].request(Request(
                    op="migrate", devices=(device,), epoch=stale))
                assert response.status == "rejected"
                assert "stale" in response.detail
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_balanced_cluster_skips_migration(self):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                assert await router.rebalance_once() == 0
            finally:
                await shutdown(services, router)

        run(scenario())


class TestTCPRouterEndToEnd:
    def test_concurrent_clients_with_colliding_ids(self):
        # every client stamps ids from 1 on its own connection, so two
        # pipelining clients collide on the wire; forwarded verbatim
        # into the per-shard TCP clients those ids would clash in the
        # shared in-flight table and surface as 'router failure' errors
        async def scenario():
            problem = make_problem()
            plan = build_plan(problem, 3)
            services, servers, backends = {}, {}, {}
            for spec in plan.shards:
                service = AssignmentService(
                    plan.subproblem(problem, spec.name),
                    ServiceConfig(max_wait_s=0.0),
                )
                await service.start()
                server = TCPServer(service)
                await server.start()
                services[spec.name] = service
                servers[spec.name] = server
                backends[spec.name] = TCPBackend(
                    spec.name, server.host, server.port)
            router = ShardRouter(plan, backends)
            await router.start()
            front = TCPServer(router)
            await front.start()
            clients = [
                await open_client(front.host, front.port)
                for _ in range(2)
            ]
            try:
                futures = []
                for k, client in enumerate(clients):
                    for device in range(k * 20, k * 20 + 20):
                        futures.append(client.send(
                            Request(op="assign", device=device)))
                    await client.flush()
                responses = await asyncio.gather(*futures)
                errors = [
                    r.detail for r in responses if r.status == "error"]
                assert not errors, errors
            finally:
                for client in clients:
                    await client.close()
                await front.stop()
                await router.stop()  # closes the TCP backends
                for name in servers:
                    await servers[name].stop()
                    await services[name].stop()

        run(scenario())


class TestReplayEquivalence:
    """ISSUE acceptance: a fixed trace driven through the sharded tier
    equals, shard by shard, a serial replay of the ops each shard saw."""

    @pytest.mark.parametrize("trace_seed", [0, 1])
    def test_sharded_replay_matches_per_shard_serial_replay(self, trace_seed):
        async def scenario():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                trace = generate_trace(
                    problem.n_devices, 400, seed=trace_seed)
                for request in trace:  # serial: total order per shard
                    await router.request(request)
                for spec in plan.shards:
                    sub = plan.subproblem(problem, spec.name)
                    forwarded = backends[spec.name].forwarded
                    serial_vector, _ = replay_serial(sub, forwarded)
                    live_vector = services[spec.name].state.vector
                    assert np.array_equal(live_vector, serial_vector), (
                        f"{spec.name} diverged from serial replay"
                    )
            finally:
                await shutdown(services, router)

        run(scenario())

    def test_two_identical_runs_are_identical(self):
        async def one_run():
            problem = make_problem()
            plan, services, backends, router = await make_cluster(problem)
            try:
                for request in generate_trace(problem.n_devices, 300, seed=9):
                    await router.request(request)
                return {
                    spec.name: services[spec.name].state.vector.tolist()
                    for spec in plan.shards
                }
            finally:
                await shutdown(services, router)

        assert run(one_run()) == run(one_run())

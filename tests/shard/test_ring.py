"""Consistent-hash ring: determinism, stability, preference order."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.shard.ring import ConsistentHashRing


def names(n: int) -> "list[str]":
    return [f"shard-{i}" for i in range(n)]


ring_params = st.tuples(
    st.integers(min_value=2, max_value=8),     # shards
    st.integers(min_value=1, max_value=128),   # vnodes
    st.integers(min_value=0, max_value=2**31), # seed
)


class TestDeterminism:
    @given(ring_params)
    def test_same_parameters_same_ring(self, params):
        n, vnodes, seed = params
        a = ConsistentHashRing(names(n), vnodes=vnodes, seed=seed)
        b = ConsistentHashRing(names(n), vnodes=vnodes, seed=seed)
        assert all(a.lookup(k) == b.lookup(k) for k in range(200))
        assert all(a.preference(k) == b.preference(k) for k in range(50))

    @given(ring_params)
    def test_insertion_order_irrelevant(self, params):
        n, vnodes, seed = params
        forward = ConsistentHashRing(names(n), vnodes=vnodes, seed=seed)
        backward = ConsistentHashRing(
            list(reversed(names(n))), vnodes=vnodes, seed=seed
        )
        assert all(
            forward.lookup(k) == backward.lookup(k) for k in range(200)
        )

    def test_different_seeds_differ(self):
        a = ConsistentHashRing(names(4), seed=0)
        b = ConsistentHashRing(names(4), seed=1)
        assert any(a.lookup(k) != b.lookup(k) for k in range(200))


class TestStability:
    @settings(max_examples=30)
    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=2**31))
    def test_join_moves_bounded_key_fraction(self, n, seed):
        """Adding one shard remaps roughly 1/(n+1) of keys, never most."""
        keys = list(range(2000))
        before = ConsistentHashRing(names(n), seed=seed)
        after = ConsistentHashRing(names(n), seed=seed)
        after.add_shard(f"shard-{n}")
        moved = sum(before.lookup(k) != after.lookup(k) for k in keys)
        expected = len(keys) / (n + 1)
        assert moved <= 3 * expected
        # every key that moved landed on the new shard
        assert all(
            after.lookup(k) == f"shard-{n}"
            for k in keys
            if before.lookup(k) != after.lookup(k)
        )

    @settings(max_examples=30)
    @given(st.integers(min_value=3, max_value=8),
           st.integers(min_value=0, max_value=2**31))
    def test_leave_moves_only_departed_keys(self, n, seed):
        keys = list(range(2000))
        before = ConsistentHashRing(names(n), seed=seed)
        after = ConsistentHashRing(names(n), seed=seed)
        after.remove_shard("shard-0")
        for k in keys:
            if before.lookup(k) != "shard-0":
                assert after.lookup(k) == before.lookup(k)
            else:
                assert after.lookup(k) != "shard-0"

    def test_vnodes_smooth_the_distribution(self):
        keys = list(range(5000))
        counts = ConsistentHashRing(names(4), vnodes=128, seed=0).ownership(keys)
        assert max(counts.values()) < 2.0 * len(keys) / 4


class TestPreference:
    @given(ring_params, st.integers(min_value=0, max_value=999))
    def test_preference_is_a_permutation_starting_at_owner(self, params, key):
        n, vnodes, seed = params
        ring = ConsistentHashRing(names(n), vnodes=vnodes, seed=seed)
        order = ring.preference(key)
        assert order[0] == ring.lookup(key)
        assert sorted(order) == sorted(ring.shards)


class TestValidation:
    def test_empty_ring_rejected(self):
        with pytest.raises(ValidationError):
            ConsistentHashRing([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            ConsistentHashRing(["a", "a"])

    def test_cannot_remove_last_shard(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValidationError):
            ring.remove_shard("a")

    def test_double_add_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValidationError):
            ring.add_shard("a")

"""Circuit breaker state machine and the in-process backend."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import (
    DeadlineExceededError,
    ShardUnavailableError,
    ValidationError,
)
from repro.model.instances import random_instance
from repro.serve.protocol import Request
from repro.serve.service import AssignmentService, ServiceConfig
from repro.shard.backend import CircuitBreaker, InProcessBackend, TCPBackend


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCircuitBreaker:
    def test_starts_closed(self):
        breaker = CircuitBreaker()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allows()

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allows()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allows()
        assert breaker.trips == 1

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_cooldown_then_close_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=5.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allows()
        clock.t = 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allows()  # one probe admitted
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_after_s=5.0, clock=clock
        )
        for _ in range(3):
            breaker.record_failure()
        clock.t = 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2

    def test_half_open_race_admits_exactly_one_probe(self):
        """Two requests racing the cooldown boundary: acquire() hands
        the single half-open probe slot to exactly one of them."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.t = 5.0

        async def scenario():
            # both coroutines see HALF_OPEN before either settles the
            # probe — the interleaving a router hedge produces when the
            # primary and the hedge both reach a cooling shard
            grants = await asyncio.gather(
                asyncio.to_thread(breaker.acquire),
                asyncio.to_thread(breaker.acquire),
            )
            return grants

        grants = run(scenario())
        assert sorted(grants) == [False, True]
        # allows() stays permissive (it is the read-only check) but
        # further acquire() calls are refused until the probe settles
        assert breaker.allows()
        assert not breaker.acquire()
        breaker.record_success()
        assert breaker.acquire()  # closed again: everyone admitted

    def test_half_open_probe_failure_frees_the_slot_for_later(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.t = 5.0
        assert breaker.acquire()
        breaker.record_failure()  # probe said: still down
        assert breaker.state == CircuitBreaker.OPEN
        clock.t = 10.0
        assert breaker.acquire()  # next cooldown hands out a fresh probe
        assert not breaker.acquire()

    def test_release_probe_frees_the_slot_without_a_verdict(self):
        # a deadline-cut probe proves nothing: the breaker must stay
        # half-open (neither close nor re-open) with the slot free, or
        # the shard could never be probed again (regression: wedged
        # half_open with _probe_in_flight stuck True)
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.t = 5.0
        assert breaker.acquire()
        assert not breaker.acquire()  # slot taken
        breaker.release_probe()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.acquire()  # the next caller can probe again

    def test_release_probe_is_a_noop_when_closed(self):
        breaker = CircuitBreaker()
        breaker.release_probe()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.acquire()

    def test_validation(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(reset_after_s=0)


class TestDeadlineReleasesProbe:
    """Every DeadlineExceededError a backend raises after acquire()
    must hand the half-open probe slot back (the wedge the reviewer
    reproduced: a deadline-expired recovery probe left the breaker
    half-open with the slot taken forever)."""

    PAST_DEADLINE_MS = 1.0  # epoch 1970: expired on any real clock

    def _half_open_breaker(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.t = 5.0
        return breaker

    def test_in_process_deadline_expiry(self):
        async def scenario():
            problem = random_instance(10, 3, tightness=0.6, seed=2)
            service = AssignmentService(problem, ServiceConfig(max_wait_s=0.0))
            await service.start()
            breaker = self._half_open_breaker()
            backend = InProcessBackend("shard-0", service, breaker=breaker)
            assert breaker.acquire()  # the router claims the probe slot
            with pytest.raises(DeadlineExceededError):
                await backend.request(Request(
                    op="assign", device=0,
                    deadline_ms=self.PAST_DEADLINE_MS,
                ))
            assert breaker.state == CircuitBreaker.HALF_OPEN
            assert breaker.acquire()  # slot free: probe again later
            await service.stop()

        run(scenario())

    def test_tcp_pre_send_deadline_expiry(self):
        async def scenario():
            breaker = self._half_open_breaker()
            # port 9 (discard) is never dialed: the pre-send deadline
            # check raises before any connect attempt
            backend = TCPBackend("shard-0", "127.0.0.1", 9, breaker=breaker)
            assert breaker.acquire()
            with pytest.raises(DeadlineExceededError):
                await backend.request(Request(
                    op="stats", deadline_ms=self.PAST_DEADLINE_MS,
                ))
            assert breaker.state == CircuitBreaker.HALF_OPEN
            assert breaker.acquire()

        run(scenario())


class TestInProcessBackend:
    def test_forwards_and_closes_breaker_loop(self):
        async def scenario():
            problem = random_instance(10, 3, tightness=0.6, seed=2)
            service = AssignmentService(problem, ServiceConfig(max_wait_s=0.0))
            await service.start()
            backend = InProcessBackend("shard-0", service)
            response = await backend.request(Request(op="assign", device=0))
            assert response.ok
            assert backend.breaker.state == CircuitBreaker.CLOSED
            await service.stop()
            with pytest.raises(ShardUnavailableError):
                await backend.request(Request(op="assign", device=1))

        run(scenario())

"""Tests for the LP relaxation and rounding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.model.instances import gap_instance, random_instance
from repro.solvers.exact import BranchAndBoundSolver
from repro.solvers.lp import LPRoundingSolver, lp_lower_bound, lp_relaxation
from tests.strategies import small_problems


class TestLPRelaxation:
    def test_rows_sum_to_one(self, small_problem):
        _, x = lp_relaxation(small_problem)
        assert np.allclose(x.sum(axis=1), 1.0, atol=1e-6)

    def test_capacities_respected_fractionally(self, small_problem):
        _, x = lp_relaxation(small_problem)
        loads = np.einsum("ij,ij->j", small_problem.demand, x)
        assert np.all(loads <= small_problem.capacity + 1e-6)

    def test_bound_below_optimum(self, tiny_problem):
        bound = lp_lower_bound(tiny_problem)
        optimum = BranchAndBoundSolver().solve(tiny_problem).objective_value
        assert bound <= optimum + 1e-9

    def test_bound_above_capacity_relaxed_bound(self, small_problem):
        """The LP bound is at least as tight as the unconstrained bound."""
        assert lp_lower_bound(small_problem) >= small_problem.delay_lower_bound() - 1e-9

    def test_loose_instance_bound_is_exact_relaxation(self):
        """With huge capacities the LP just puts everyone on their argmin."""
        problem = random_instance(10, 3, tightness=0.2, seed=1)
        problem.capacity[:] = 1e9
        assert lp_lower_bound(problem) == pytest.approx(problem.delay_lower_bound())

    @settings(max_examples=15, deadline=None)
    @given(problem=small_problems(max_devices=6, max_servers=3))
    def test_property_lp_sandwiched(self, problem):
        """relaxed-bound <= LP <= optimum, on every feasible instance."""
        exact = BranchAndBoundSolver().solve(problem)
        if not exact.feasible:
            return
        bound = lp_lower_bound(problem)
        assert problem.delay_lower_bound() - 1e-9 <= bound <= exact.objective_value + 1e-9


class TestLPRounding:
    def test_feasible_on_generated_instances(self):
        for seed in range(6):
            problem = random_instance(30, 5, tightness=0.85, seed=seed)
            result = LPRoundingSolver().solve(problem)
            assert result.feasible

    def test_feasible_on_correlated_tight(self):
        for seed in range(4):
            problem = gap_instance(30, 5, "d", seed=seed)
            result = LPRoundingSolver().solve(problem)
            assert result.feasible

    def test_lower_bound_attached(self, small_problem):
        result = LPRoundingSolver().solve(small_problem)
        assert result.lower_bound is not None
        assert result.objective_value >= result.lower_bound - 1e-9

    def test_close_to_optimal_on_small(self, tiny_problem):
        optimum = BranchAndBoundSolver().solve(tiny_problem).objective_value
        result = LPRoundingSolver().solve(tiny_problem)
        assert result.objective_value <= optimum * 1.5

    def test_repair_helper_reduces_overload_to_zero(self):
        problem = random_instance(20, 4, tightness=0.7, seed=3)
        vector = np.zeros(problem.n_devices, dtype=np.int64)  # all on server 0
        LPRoundingSolver._repair(problem, vector)
        loads = np.zeros(problem.n_servers)
        np.add.at(loads, vector, problem.demand[np.arange(problem.n_devices), vector])
        assert np.all(loads <= problem.capacity + 1e-9)

"""Tests for the auction solver."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.model.instances import gap_instance, random_instance
from repro.solvers.auction import AuctionSolver
from repro.solvers.greedy import RandomFeasibleSolver


class TestAuction:
    def test_feasible_on_generated_instances(self):
        for seed in range(6):
            problem = random_instance(30, 5, tightness=0.85, seed=seed)
            result = AuctionSolver(seed=seed).solve(problem)
            assert result.feasible

    def test_feasible_on_correlated_tight(self):
        for seed in range(4):
            problem = gap_instance(30, 5, "d", seed=seed)
            result = AuctionSolver(seed=seed).solve(problem)
            assert result.feasible

    def test_beats_random_baseline(self):
        auction_total, random_total = 0.0, 0.0
        for seed in range(5):
            problem = random_instance(30, 5, tightness=0.8, seed=seed)
            auction_total += AuctionSolver(seed=seed).solve(problem).objective_value
            random_total += RandomFeasibleSolver(seed=seed).solve(problem).objective_value
        assert auction_total < random_total

    def test_loose_instance_everyone_gets_argmin(self):
        """With no contention prices stay at zero and the auction is just
        nearest-server."""
        problem = random_instance(10, 3, tightness=0.3, seed=2)
        problem.capacity[:] = 1e9
        result = AuctionSolver(seed=0).solve(problem)
        assert result.objective_value == pytest.approx(problem.delay_lower_bound())

    def test_round_counter_reported(self, small_problem):
        result = AuctionSolver(seed=0).solve(small_problem)
        assert result.iterations >= 1

    def test_deterministic(self, small_problem):
        a = AuctionSolver(seed=1).solve(small_problem)
        b = AuctionSolver(seed=1).solve(small_problem)
        assert a.assignment == b.assignment

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            AuctionSolver(max_rounds=0)
        with pytest.raises(ValidationError):
            AuctionSolver(eps=0.0)

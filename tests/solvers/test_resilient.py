"""Tests for the budgeted fallback chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.faults import degraded_problem
from repro.errors import SolverError, ValidationError
from repro.solvers.registry import available_solvers, get_solver
from repro.solvers.resilient import ResilientSolver


class TestResilientSolver:
    def test_registered(self):
        assert "resilient" in available_solvers()
        assert isinstance(get_solver("resilient"), ResilientSolver)

    def test_first_member_wins_on_easy_instance(self, small_problem):
        solver = ResilientSolver(chain=("greedy", "random"), seed=1)
        result = solver.solve(small_problem)
        assert result.feasible
        assert result.extra["winner"] == "greedy"
        assert result.extra["fallbacks"] == 0
        assert result.extra["attempts"] == {"greedy": "ok"}

    def test_zero_budget_falls_to_safety_net(self, small_problem):
        solver = ResilientSolver(chain=("greedy",), budget_s=1e-12, seed=1)
        result = solver.solve(small_problem)  # must not raise
        assert result.extra["winner"] == "nearest_net"
        assert result.extra["attempts"] == {"greedy": "skipped:budget"}
        assert result.assignment.is_complete
        # nearest-server: every device on its min-delay column
        expected = np.argmin(small_problem.delay, axis=1)
        assert np.array_equal(result.assignment.vector, expected)

    def test_member_error_is_contained(self, small_problem, monkeypatch):
        import repro.solvers.registry as registry

        real_get_solver = registry.get_solver

        class Exploding:
            def solve(self, problem):
                raise SolverError("boom")

        def patched(name, **kwargs):
            if name == "random":
                return Exploding()
            return real_get_solver(name, **kwargs)

        monkeypatch.setattr(registry, "get_solver", patched)
        solver = ResilientSolver(chain=("random", "greedy"), seed=1)
        result = solver.solve(small_problem)
        assert result.feasible
        assert result.extra["winner"] == "greedy"
        assert result.extra["attempts"]["random"] == "error:SolverError"

    def test_infeasible_member_falls_through(self, tight_problem):
        # the capacity-blind strawman overloads on a tight instance;
        # the chain recovers with a capacity-aware member
        assert not get_solver("nearest").solve(tight_problem).feasible
        solver = ResilientSolver(chain=("nearest", "greedy"), seed=3)
        result = solver.solve(tight_problem)
        assert result.extra["attempts"]["nearest"] == "infeasible"
        assert result.extra["winner"] in ("greedy", "nearest_net")

    def test_never_raises_on_infeasible_degraded_input(self, small_problem):
        # fail all but one server: nothing fits, every member is
        # infeasible, yet solve() still returns a complete vector
        degraded = degraded_problem(small_problem, {1, 2})
        solver = ResilientSolver(chain=("greedy",), seed=2)
        result = solver.solve(degraded)
        assert result.assignment.is_complete
        if result.extra["winner"] == "nearest_net":
            # the net respects the failure mask even when capacity can't
            assert set(result.assignment.vector.tolist()) == {0}

    def test_safety_net_avoids_failed_servers(self):
        from repro.model.problem import AssignmentProblem

        delay = np.array([[0.001, 0.010], [0.001, 0.020]])
        demand = np.full((2, 2), 10.0)
        problem = AssignmentProblem(
            delay=delay, demand=demand, capacity=np.array([0.0, 1.0]),
            failed_servers=frozenset({0}),
        )
        result = ResilientSolver(chain=("greedy",), budget_s=1e-12).solve(problem)
        # server 0 is closest but failed; the net must route around it
        assert set(result.assignment.vector.tolist()) == {1}

    def test_empty_chain_rejected(self):
        with pytest.raises(ValidationError):
            ResilientSolver(chain=())

    def test_deterministic(self, small_problem):
        a = ResilientSolver(chain=("greedy", "lns"), seed=5).solve(small_problem)
        b = ResilientSolver(chain=("greedy", "lns"), seed=5).solve(small_problem)
        assert np.array_equal(a.assignment.vector, b.assignment.vector)

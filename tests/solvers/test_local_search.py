"""Tests for local search and tabu search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import ValidationError
from repro.model.instances import gap_instance, random_instance
from repro.solvers.greedy import GreedyFeasibleSolver, greedy_feasible_assignment
from repro.solvers.local_search import (
    LocalSearchSolver,
    TabuSearchSolver,
    _shift_delta,
    _swap_delta,
)
from tests.strategies import small_problems


class TestMoveDeltas:
    def test_shift_delta_matches_recomputation(self, small_problem):
        assignment = greedy_feasible_assignment(small_problem)
        vector = assignment.vector
        loads = assignment.loads()
        before = assignment.total_delay()
        for device in range(small_problem.n_devices):
            for server in range(small_problem.n_servers):
                delta = _shift_delta(small_problem, vector, loads, device, server)
                if delta is None:
                    continue
                trial = assignment.copy()
                trial.assign(device, server)
                assert trial.total_delay() - before == pytest.approx(delta)

    def test_shift_rejects_overloading_move(self):
        problem = random_instance(10, 2, tightness=0.9, seed=1)
        assignment = greedy_feasible_assignment(problem)
        vector = assignment.vector
        loads = assignment.loads()
        for device in range(problem.n_devices):
            for server in range(problem.n_servers):
                delta = _shift_delta(problem, vector, loads, device, server)
                if delta is not None:
                    new_load = loads[server] + problem.demand[device, server]
                    assert new_load <= problem.capacity[server] + 1e-9

    def test_swap_delta_matches_recomputation(self, small_problem):
        assignment = greedy_feasible_assignment(small_problem)
        vector = assignment.vector
        loads = assignment.loads()
        before = assignment.total_delay()
        pairs_checked = 0
        for a in range(small_problem.n_devices):
            for b in range(a + 1, small_problem.n_devices):
                delta = _swap_delta(small_problem, vector, loads, a, b)
                if delta is None:
                    continue
                trial = assignment.copy()
                sa, sb = trial.server_of(a), trial.server_of(b)
                trial.assign(a, sb)
                trial.assign(b, sa)
                assert trial.total_delay() - before == pytest.approx(delta)
                pairs_checked += 1
        assert pairs_checked > 0


class TestLocalSearch:
    def test_never_worse_than_greedy_start(self):
        for seed in range(5):
            problem = random_instance(30, 5, tightness=0.8, seed=seed)
            greedy = GreedyFeasibleSolver().solve(problem).objective_value
            local = LocalSearchSolver().solve(problem).objective_value
            assert local <= greedy + 1e-12

    def test_stays_feasible(self, tight_problem):
        result = LocalSearchSolver().solve(tight_problem)
        assert result.feasible

    def test_random_start_supported(self, small_problem):
        result = LocalSearchSolver(start="random", seed=3).solve(small_problem)
        assert result.feasible

    def test_unknown_start_rejected(self):
        with pytest.raises(ValidationError):
            LocalSearchSolver(start="warm")

    def test_swaps_help_on_tight_instances(self):
        """With capacities tight, shifts alone get stuck; swaps must let
        the search do at least as well."""
        with_swaps_total, without_total = 0.0, 0.0
        for seed in range(6):
            problem = gap_instance(25, 4, "c", seed=seed)
            with_swaps_total += LocalSearchSolver(use_swaps=True).solve(problem).objective_value
            without_total += LocalSearchSolver(use_swaps=False).solve(problem).objective_value
        assert with_swaps_total <= without_total + 1e-9

    def test_local_optimality_of_output(self, small_problem):
        """No single feasible shift can improve the returned solution."""
        result = LocalSearchSolver().solve(small_problem)
        vector = result.assignment.vector
        loads = result.assignment.loads()
        for device in range(small_problem.n_devices):
            for server in range(small_problem.n_servers):
                delta = _shift_delta(small_problem, vector, loads, device, server)
                if delta is not None:
                    assert delta >= -1e-12

    @settings(max_examples=20, deadline=None)
    @given(problem=small_problems())
    def test_property_feasible_and_improving(self, problem):
        result = LocalSearchSolver().solve(problem)
        assert result.feasible
        # improvement is only claimable against a *complete* greedy start;
        # a partial greedy's cost covers fewer devices and is incomparable
        greedy = greedy_feasible_assignment(problem)
        if greedy.is_complete:
            assert result.objective_value <= greedy.total_delay() + 1e-12


class TestTabuSearch:
    def test_never_worse_than_greedy(self):
        for seed in range(5):
            problem = random_instance(25, 4, tightness=0.8, seed=seed)
            greedy = GreedyFeasibleSolver().solve(problem).objective_value
            tabu = TabuSearchSolver(max_iters=100).solve(problem).objective_value
            assert tabu <= greedy + 1e-12

    def test_stays_feasible(self, tight_problem):
        result = TabuSearchSolver(max_iters=100).solve(tight_problem)
        assert result.feasible

    def test_at_least_as_good_as_plain_descent_overall(self):
        tabu_total, local_total = 0.0, 0.0
        for seed in range(6):
            problem = gap_instance(25, 4, "d", seed=seed)
            tabu_total += TabuSearchSolver(max_iters=200).solve(problem).objective_value
            local_total += LocalSearchSolver(use_swaps=False).solve(problem).objective_value
        assert tabu_total <= local_total + 1e-9

    def test_iteration_budget_respected(self, small_problem):
        result = TabuSearchSolver(max_iters=7).solve(small_problem)
        assert result.iterations <= 7

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            TabuSearchSolver(max_iters=0)
        with pytest.raises(ValidationError):
            TabuSearchSolver(tenure=0)

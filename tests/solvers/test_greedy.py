"""Tests for the constructive greedy family."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.model.instances import gap_instance, random_instance
from repro.solvers.greedy import (
    BestFitSolver,
    GreedyFeasibleSolver,
    NearestServerSolver,
    RandomFeasibleSolver,
    RegretGreedySolver,
    RoundRobinSolver,
    WorstFitSolver,
    greedy_feasible_assignment,
    random_feasible_assignment,
)
from tests.strategies import small_problems

CAPACITY_AWARE = [
    GreedyFeasibleSolver,
    BestFitSolver,
    WorstFitSolver,
    RegretGreedySolver,
    RoundRobinSolver,
    RandomFeasibleSolver,
]


class TestNearestServer:
    def test_achieves_relaxed_lower_bound(self, small_problem):
        result = NearestServerSolver().solve(small_problem)
        assert result.objective_value == pytest.approx(
            small_problem.delay_lower_bound()
        )

    def test_every_device_on_its_argmin(self, small_problem):
        result = NearestServerSolver().solve(small_problem)
        expected = np.argmin(small_problem.delay, axis=1)
        assert np.all(result.assignment.vector == expected)

    def test_overloads_on_correlated_tight_instance(self):
        """Class-d instances concentrate demand on low-delay servers; the
        capacity-blind rule must overload there (that is the strawman's
        purpose in F4)."""
        overload_seen = False
        for seed in range(10):
            problem = gap_instance(40, 5, "d", seed=seed)
            result = NearestServerSolver().solve(problem)
            if not result.feasible:
                overload_seen = True
                break
        assert overload_seen


@pytest.mark.parametrize("solver_cls", CAPACITY_AWARE)
class TestCapacityAwareFamily:
    def test_feasible_on_generated_instances(self, solver_cls):
        for seed in range(5):
            problem = random_instance(30, 5, tightness=0.85, seed=seed)
            result = solver_cls(seed=seed).solve(problem)
            assert result.feasible, f"{solver_cls.name} infeasible on seed {seed}"

    def test_no_server_ever_overloaded(self, solver_cls, tight_problem):
        result = solver_cls(seed=0).solve(tight_problem)
        assert result.assignment.overloaded_servers() == []

    def test_objective_at_least_lower_bound(self, solver_cls, small_problem):
        result = solver_cls(seed=0).solve(small_problem)
        assert result.objective_value >= small_problem.delay_lower_bound() - 1e-12


class TestOrderingQuality:
    def test_greedy_beats_random_on_average(self):
        greedy_wins = 0
        for seed in range(10):
            problem = random_instance(40, 5, tightness=0.8, seed=seed)
            greedy = GreedyFeasibleSolver().solve(problem).objective_value
            rand = RandomFeasibleSolver(seed=seed).solve(problem).objective_value
            if greedy < rand:
                greedy_wins += 1
        assert greedy_wins >= 8

    def test_regret_at_least_matches_greedy_on_class_d(self):
        regret_total, greedy_total = 0.0, 0.0
        for seed in range(8):
            problem = gap_instance(30, 5, "d", seed=seed)
            regret_total += RegretGreedySolver().solve(problem).objective_value
            greedy_total += GreedyFeasibleSolver().solve(problem).objective_value
        assert regret_total <= greedy_total * 1.02


class TestSharedHelpers:
    def test_greedy_helper_respects_explicit_order(self, small_problem):
        order = np.arange(small_problem.n_devices)
        assignment = greedy_feasible_assignment(small_problem, order=order)
        assert assignment.is_complete

    def test_greedy_helper_unknown_preference(self, small_problem):
        with pytest.raises(ValueError):
            greedy_feasible_assignment(small_problem, prefer="psychic")

    def test_random_helper_falls_back_to_greedy(self):
        """With zero random attempts allowed to succeed... hard to force;
        instead check the fallback path directly with attempts=0-like
        tight instance still yields a complete assignment."""
        problem = gap_instance(25, 3, "d", seed=1)
        rng = np.random.default_rng(0)
        assignment = random_feasible_assignment(problem, rng, attempts=1)
        assert assignment.is_complete

    @settings(max_examples=25, deadline=None)
    @given(problem=small_problems())
    def test_property_greedy_never_overloads(self, problem):
        assignment = greedy_feasible_assignment(problem)
        assert assignment.overloaded_servers() == []

    @settings(max_examples=25, deadline=None)
    @given(problem=small_problems())
    def test_property_random_feasible_never_overloads(self, problem):
        rng = np.random.default_rng(3)
        assignment = random_feasible_assignment(problem, rng)
        assert assignment.overloaded_servers() == []

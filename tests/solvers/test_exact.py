"""Tests for the exact solvers — including the B&B-vs-brute-force oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import ValidationError
from repro.model.instances import gap_instance, random_instance
from repro.model.problem import AssignmentProblem
from repro.solvers.exact import BranchAndBoundSolver, BruteForceSolver
from repro.solvers.greedy import GreedyFeasibleSolver
from tests.strategies import small_problems


class TestBruteForce:
    def test_finds_known_optimum(self):
        # two devices, two servers, capacity forces the split
        problem = AssignmentProblem(
            delay=[[1.0, 5.0], [1.0, 5.0]],
            demand=[10.0, 10.0],
            capacity=[10.0, 10.0],
        )
        result = BruteForceSolver().solve(problem)
        assert result.feasible
        assert result.objective_value == pytest.approx(6.0)

    def test_proves_infeasibility(self):
        problem = AssignmentProblem(
            delay=[[1.0], [1.0]],
            demand=[10.0, 10.0],
            capacity=[15.0],
        )
        result = BruteForceSolver().solve(problem)
        assert not result.feasible
        assert result.extra.get("proved_infeasible")

    def test_refuses_oversized_state_space(self):
        problem = random_instance(40, 5, seed=1)
        with pytest.raises(ValidationError, match="max_nodes"):
            BruteForceSolver().solve(problem)

    def test_optimal_flag_set(self, tiny_problem):
        result = BruteForceSolver().solve(tiny_problem)
        assert result.extra["optimal"] is True


class TestBranchAndBound:
    def test_matches_brute_force_small(self, tiny_problem):
        exact = BruteForceSolver().solve(tiny_problem)
        bnb = BranchAndBoundSolver().solve(tiny_problem)
        assert bnb.objective_value == pytest.approx(exact.objective_value)
        assert bnb.extra["optimal"]

    def test_never_worse_than_greedy(self):
        for seed in range(5):
            problem = random_instance(15, 4, tightness=0.85, seed=seed)
            greedy = GreedyFeasibleSolver().solve(problem)
            bnb = BranchAndBoundSolver().solve(problem)
            assert bnb.objective_value <= greedy.objective_value + 1e-12

    def test_respects_capacity(self, tight_problem):
        result = BranchAndBoundSolver().solve(tight_problem)
        assert result.feasible
        result.assignment.validate()

    def test_lower_bound_attached_and_valid(self, tiny_problem):
        result = BranchAndBoundSolver().solve(tiny_problem)
        assert result.lower_bound is not None
        assert result.lower_bound <= result.objective_value + 1e-12

    def test_node_budget_degrades_to_anytime(self):
        problem = gap_instance(25, 5, "c", seed=3)
        result = BranchAndBoundSolver(node_budget=50).solve(problem)
        # greedy incumbent is still returned even if the search is cut
        assert result.assignment.is_complete
        assert not result.extra["optimal"]

    def test_proves_infeasibility(self):
        problem = AssignmentProblem(
            delay=[[1.0], [1.0]],
            demand=[10.0, 10.0],
            capacity=[15.0],
        )
        result = BranchAndBoundSolver().solve(problem)
        assert not result.feasible
        assert result.extra.get("proved_infeasible")

    def test_solves_class_d(self):
        problem = gap_instance(10, 4, "d", seed=5)
        brute = BruteForceSolver().solve(problem)
        bnb = BranchAndBoundSolver().solve(problem)
        assert bnb.objective_value == pytest.approx(brute.objective_value)

    @settings(max_examples=25, deadline=None)
    @given(problem=small_problems(max_devices=7, max_servers=3))
    def test_property_equals_brute_force(self, problem):
        """THE oracle property: B&B with pruning must equal exhaustive
        search on every feasible instance."""
        brute = BruteForceSolver().solve(problem)
        bnb = BranchAndBoundSolver().solve(problem)
        assert bnb.extra["optimal"]
        assert brute.feasible == bnb.feasible
        if brute.feasible:
            assert bnb.objective_value == pytest.approx(brute.objective_value)

    @settings(max_examples=15, deadline=None)
    @given(problem=small_problems(max_devices=7, max_servers=3))
    def test_property_optimum_dominates_heuristics(self, problem):
        bnb = BranchAndBoundSolver().solve(problem)
        greedy = GreedyFeasibleSolver().solve(problem)
        if bnb.feasible and greedy.feasible:
            assert bnb.objective_value <= greedy.objective_value + 1e-12

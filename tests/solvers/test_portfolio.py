"""Tests for the portfolio meta-solver."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.model.instances import gap_instance, random_instance
from repro.solvers.portfolio import PortfolioSolver
from repro.solvers.registry import get_solver


class TestPortfolio:
    def test_feasible_output(self, small_problem):
        result = PortfolioSolver(seed=1).solve(small_problem)
        assert result.feasible

    def test_winner_recorded_and_consistent(self, small_problem):
        result = PortfolioSolver(seed=1).solve(small_problem)
        per_member = result.extra["per_member"]
        winner = result.extra["winner"]
        assert winner in per_member
        assert per_member[winner] == pytest.approx(
            min(v for v in per_member.values())
        )
        assert result.objective_value == pytest.approx(per_member[winner])

    def test_never_worse_than_any_member(self):
        for seed in range(4):
            problem = gap_instance(25, 4, "d", seed=seed)
            portfolio = PortfolioSolver(seed=seed).solve(problem)
            for member in PortfolioSolver().members:
                solo = get_solver(member, seed=seed).solve(problem)
                if solo.feasible:
                    # portfolio uses derived member seeds, so compare
                    # against the recorded per-member values instead of
                    # this independent run for strictness...
                    pass
            per_member = portfolio.extra["per_member"]
            assert portfolio.objective_value <= min(per_member.values()) + 1e-12

    def test_custom_members_and_kwargs(self, small_problem):
        result = PortfolioSolver(
            members=("greedy", "tacc"),
            member_kwargs={"tacc": {"episodes": 15}},
            seed=2,
        ).solve(small_problem)
        assert result.feasible
        assert set(result.extra["per_member"]) == {"greedy", "tacc"}

    def test_single_member_portfolio(self, small_problem):
        result = PortfolioSolver(members=("greedy",), seed=3).solve(small_problem)
        assert result.extra["winner"] == "greedy"

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValidationError):
            PortfolioSolver(members=())

    def test_deterministic(self, small_problem):
        a = PortfolioSolver(seed=4).solve(small_problem)
        b = PortfolioSolver(seed=4).solve(small_problem)
        assert a.assignment == b.assignment

    def test_registered(self, small_problem):
        result = get_solver("portfolio", seed=5).solve(small_problem)
        assert result.feasible

"""Tests for the Solver interface and SolverResult."""

from __future__ import annotations

import math

import pytest

from repro.model.objectives import MaxDelay
from repro.model.solution import Assignment
from repro.solvers.base import Solver, SolverResult
from repro.solvers.greedy import GreedyFeasibleSolver


class _PartialSolver(Solver):
    """Test double that never completes the assignment."""

    name = "partial"

    def _solve(self, problem, rng):
        return Assignment(problem), {"iterations": 3}


class TestSolve:
    def test_result_fields(self, small_problem):
        result = GreedyFeasibleSolver().solve(small_problem)
        assert result.solver == "greedy"
        assert result.feasible
        assert math.isfinite(result.objective_value)
        assert result.runtime_s >= 0.0

    def test_objective_override(self, small_problem):
        result = GreedyFeasibleSolver(objective=MaxDelay()).solve(small_problem)
        assert result.objective_value == pytest.approx(
            result.assignment.max_delay()
        )

    def test_objective_by_name(self, small_problem):
        result = GreedyFeasibleSolver(objective="max_delay").solve(small_problem)
        assert result.objective_value == pytest.approx(result.assignment.max_delay())

    def test_partial_assignment_scores_infinite(self, small_problem):
        result = _PartialSolver().solve(small_problem)
        assert result.objective_value == math.inf
        assert not result.feasible
        assert result.iterations == 3

    def test_deterministic_given_seed(self, small_problem):
        from repro.solvers.greedy import RandomFeasibleSolver

        a = RandomFeasibleSolver(seed=5).solve(small_problem)
        b = RandomFeasibleSolver(seed=5).solve(small_problem)
        assert a.assignment == b.assignment

    def test_different_seeds_differ(self, small_problem):
        from repro.solvers.greedy import RandomFeasibleSolver

        outcomes = {
            tuple(RandomFeasibleSolver(seed=s).solve(small_problem).assignment.vector)
            for s in range(5)
        }
        assert len(outcomes) > 1


class TestSolverResult:
    def test_gap_against_bound(self, small_problem):
        assignment = GreedyFeasibleSolver().solve(small_problem).assignment
        result = SolverResult(
            solver="x",
            assignment=assignment,
            objective_value=1.1,
            feasible=True,
            runtime_s=0.0,
            lower_bound=1.0,
        )
        assert result.gap == pytest.approx(0.1)

    def test_gap_none_without_bound(self, small_problem):
        assignment = GreedyFeasibleSolver().solve(small_problem).assignment
        result = SolverResult(
            solver="x",
            assignment=assignment,
            objective_value=1.1,
            feasible=True,
            runtime_s=0.0,
        )
        assert result.gap is None

    def test_gap_none_for_infinite_objective(self, small_problem):
        assignment = Assignment(small_problem)
        result = SolverResult(
            solver="x",
            assignment=assignment,
            objective_value=math.inf,
            feasible=False,
            runtime_s=0.0,
            lower_bound=1.0,
        )
        assert result.gap is None

    def test_gap_zero_bound_met_exactly_is_closed(self, small_problem):
        assignment = GreedyFeasibleSolver().solve(small_problem).assignment
        result = SolverResult(
            solver="x",
            assignment=assignment,
            objective_value=0.0,
            feasible=True,
            runtime_s=0.0,
            lower_bound=0.0,
        )
        assert result.gap == 0.0

    def test_gap_zero_bound_positive_objective_is_infinite(self, small_problem):
        assignment = GreedyFeasibleSolver().solve(small_problem).assignment
        result = SolverResult(
            solver="x",
            assignment=assignment,
            objective_value=1.5,
            feasible=True,
            runtime_s=0.0,
            lower_bound=0.0,
        )
        assert result.gap == math.inf

    def test_gap_none_for_negative_bound(self, small_problem):
        assignment = GreedyFeasibleSolver().solve(small_problem).assignment
        result = SolverResult(
            solver="x",
            assignment=assignment,
            objective_value=1.0,
            feasible=True,
            runtime_s=0.0,
            lower_bound=-0.5,
        )
        assert result.gap is None

    def test_summary_row(self, small_problem):
        assignment = GreedyFeasibleSolver().solve(small_problem).assignment
        result = SolverResult("x", assignment, 2.0, True, 0.5)
        assert result.summary_row() == ["x", 2.0, True, 0.5]

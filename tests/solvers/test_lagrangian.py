"""Tests for the Lagrangian relaxation solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import ValidationError
from repro.model.instances import gap_instance, random_instance
from repro.solvers.exact import BranchAndBoundSolver
from repro.solvers.greedy import GreedyFeasibleSolver
from repro.solvers.lagrangian import LagrangianSolver
from repro.solvers.lp import lp_lower_bound
from tests.strategies import small_problems


class TestLagrangian:
    def test_feasible_output(self, small_problem):
        result = LagrangianSolver(seed=1).solve(small_problem)
        assert result.feasible

    def test_feasible_on_tight_correlated(self, tight_problem):
        result = LagrangianSolver(seed=2).solve(tight_problem)
        assert result.feasible

    def test_dual_bound_below_primal(self, small_problem):
        result = LagrangianSolver(seed=3).solve(small_problem)
        assert result.lower_bound is not None
        assert result.lower_bound <= result.objective_value + 1e-9

    def test_dual_bound_valid_against_optimum(self, tiny_problem):
        optimum = BranchAndBoundSolver().solve(tiny_problem).objective_value
        result = LagrangianSolver(rounds=200, seed=4).solve(tiny_problem)
        assert result.lower_bound <= optimum + 1e-9

    def test_dual_bound_at_least_capacity_relaxed(self, small_problem):
        """lambda = 0 already gives the relaxed bound; ascent only improves."""
        result = LagrangianSolver(seed=5).solve(small_problem)
        assert result.lower_bound >= small_problem.delay_lower_bound() - 1e-9

    def test_dual_bound_competitive_with_lp(self):
        """Subgradient should close most of the gap the LP bound closes."""
        for seed in range(3):
            problem = gap_instance(25, 4, "c", seed=seed)
            lp = lp_lower_bound(problem)
            relaxed = problem.delay_lower_bound()
            result = LagrangianSolver(rounds=300, seed=seed).solve(problem)
            if lp - relaxed > 1e-9:
                closed = (result.lower_bound - relaxed) / (lp - relaxed)
                assert closed > 0.5

    def test_primal_beats_greedy_on_average(self):
        lagr_total, greedy_total = 0.0, 0.0
        for seed in range(5):
            problem = random_instance(30, 5, tightness=0.85, seed=seed)
            lagr_total += LagrangianSolver(seed=seed).solve(problem).objective_value
            greedy_total += GreedyFeasibleSolver().solve(problem).objective_value
        assert lagr_total <= greedy_total + 1e-9

    def test_deterministic(self, small_problem):
        a = LagrangianSolver(seed=6).solve(small_problem)
        b = LagrangianSolver(seed=6).solve(small_problem)
        assert a.assignment == b.assignment
        assert a.lower_bound == pytest.approx(b.lower_bound)

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            LagrangianSolver(rounds=0)
        with pytest.raises(ValidationError):
            LagrangianSolver(initial_step=0.0)
        with pytest.raises(ValidationError):
            LagrangianSolver(step_shrink=1.0)

    @settings(max_examples=15, deadline=None)
    @given(problem=small_problems(max_devices=6, max_servers=3))
    def test_property_bound_sandwich(self, problem):
        """relaxed <= lagrangian dual <= optimum on every feasible instance."""
        exact = BranchAndBoundSolver().solve(problem)
        if not exact.feasible:
            return
        result = LagrangianSolver(rounds=100, seed=7).solve(problem)
        assert problem.delay_lower_bound() - 1e-9 <= result.lower_bound
        assert result.lower_bound <= exact.objective_value + 1e-9

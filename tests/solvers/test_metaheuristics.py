"""Tests for simulated annealing and the genetic algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import ValidationError
from repro.model.instances import gap_instance, random_instance
from repro.solvers.annealing import SimulatedAnnealingSolver
from repro.solvers.genetic import GeneticSolver
from repro.solvers.greedy import RandomFeasibleSolver
from tests.strategies import small_problems


class TestSimulatedAnnealing:
    def test_feasible_output(self, tight_problem):
        result = SimulatedAnnealingSolver(steps=4000, seed=1).solve(tight_problem)
        assert result.feasible

    def test_beats_random_baseline(self):
        sa_total, random_total = 0.0, 0.0
        for seed in range(5):
            problem = random_instance(30, 5, tightness=0.8, seed=seed)
            sa_total += SimulatedAnnealingSolver(steps=8000, seed=seed).solve(
                problem
            ).objective_value
            random_total += RandomFeasibleSolver(seed=seed).solve(problem).objective_value
        assert sa_total < random_total

    def test_deterministic_given_seed(self, small_problem):
        a = SimulatedAnnealingSolver(steps=2000, seed=9).solve(small_problem)
        b = SimulatedAnnealingSolver(steps=2000, seed=9).solve(small_problem)
        assert a.assignment == b.assignment

    def test_acceptance_counter_reported(self, small_problem):
        result = SimulatedAnnealingSolver(steps=2000, seed=2).solve(small_problem)
        assert 0 < result.extra["accepted"] <= 2000

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            SimulatedAnnealingSolver(steps=0)
        with pytest.raises(ValidationError):
            SimulatedAnnealingSolver(cooling=1.0)
        with pytest.raises(ValidationError):
            SimulatedAnnealingSolver(initial_temperature=-1.0)

    @settings(max_examples=10, deadline=None)
    @given(problem=small_problems())
    def test_property_output_never_overloaded(self, problem):
        result = SimulatedAnnealingSolver(steps=1500, seed=4).solve(problem)
        if result.feasible:
            result.assignment.validate()
        # even when no feasible state was found, the result is complete
        assert result.assignment.is_complete


class TestGenetic:
    def test_feasible_output(self, tight_problem):
        result = GeneticSolver(population=20, generations=30, seed=1).solve(tight_problem)
        assert result.feasible

    def test_beats_random_baseline(self):
        ga_total, random_total = 0.0, 0.0
        for seed in range(4):
            problem = random_instance(25, 4, tightness=0.8, seed=seed)
            ga_total += GeneticSolver(
                population=20, generations=40, seed=seed
            ).solve(problem).objective_value
            random_total += RandomFeasibleSolver(seed=seed).solve(problem).objective_value
        assert ga_total < random_total

    def test_deterministic_given_seed(self, small_problem):
        a = GeneticSolver(population=12, generations=10, seed=5).solve(small_problem)
        b = GeneticSolver(population=12, generations=10, seed=5).solve(small_problem)
        assert a.assignment == b.assignment

    def test_repair_reduces_overload(self):
        """Repair is best-effort (the penalty covers the remainder), but it
        must strictly shrink the violation of an all-on-one-server child."""
        problem = gap_instance(20, 4, "d", seed=7)
        solver = GeneticSolver(seed=0)
        rng = np.random.default_rng(0)
        vector = np.zeros(problem.n_devices, dtype=np.int64)

        def violation(vec):
            loads = np.zeros(problem.n_servers)
            np.add.at(loads, vec, problem.demand[np.arange(problem.n_devices), vec])
            return float(np.sum(np.maximum(loads - problem.capacity, 0.0)))

        before = violation(vector)
        solver._repair(problem, vector, rng)
        assert violation(vector) < before * 0.5

    def test_repair_fixes_mild_overload_completely(self):
        problem = random_instance(20, 4, tightness=0.7, seed=8)
        solver = GeneticSolver(seed=0)
        rng = np.random.default_rng(1)
        vector = np.zeros(problem.n_devices, dtype=np.int64)
        solver._repair(problem, vector, rng)
        loads = np.zeros(problem.n_servers)
        np.add.at(loads, vector, problem.demand[np.arange(problem.n_devices), vector])
        assert np.all(loads <= problem.capacity + 1e-9)

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            GeneticSolver(population=2)
        with pytest.raises(ValidationError):
            GeneticSolver(generations=0)
        with pytest.raises(ValidationError):
            GeneticSolver(mutation_prob=1.5)

    def test_generations_reported(self, small_problem):
        result = GeneticSolver(population=10, generations=12, seed=3).solve(small_problem)
        assert result.iterations == 12

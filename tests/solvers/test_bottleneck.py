"""Tests for the bottleneck (min-max delay) solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.model.instances import gap_instance, random_instance
from repro.model.problem import AssignmentProblem
from repro.solvers.bottleneck import BottleneckSolver, _restricted
from repro.solvers.exact import BruteForceSolver
from repro.solvers.greedy import GreedyFeasibleSolver
from tests.strategies import small_problems


class TestRestricted:
    def test_blocked_pairs_cannot_fit(self, small_problem):
        threshold = float(np.median(small_problem.delay))
        restricted = _restricted(small_problem, threshold)
        blocked = small_problem.delay > threshold + 1e-15
        assert np.all(restricted.demand[blocked] > np.max(small_problem.capacity))
        assert np.all(restricted.demand[~blocked] == small_problem.demand[~blocked])

    def test_delay_matrix_unchanged(self, small_problem):
        restricted = _restricted(small_problem, 0.005)
        assert np.allclose(restricted.delay, small_problem.delay)


class TestBottleneckSolver:
    def test_feasible_output(self, small_problem):
        result = BottleneckSolver().solve(small_problem)
        assert result.feasible

    def test_feasible_on_tight_correlated(self, tight_problem):
        result = BottleneckSolver().solve(tight_problem)
        assert result.feasible

    def test_max_delay_equals_reported_threshold(self, small_problem):
        result = BottleneckSolver().solve(small_problem)
        assert result.assignment.max_delay() <= result.extra["bottleneck_s"] + 1e-12

    def test_never_worse_max_delay_than_greedy(self):
        for seed in range(6):
            problem = random_instance(25, 4, tightness=0.8, seed=seed)
            bottleneck = BottleneckSolver().solve(problem)
            greedy = GreedyFeasibleSolver().solve(problem)
            assert (
                bottleneck.assignment.max_delay()
                <= greedy.assignment.max_delay() + 1e-12
            )

    def test_threshold_is_a_matrix_entry(self, small_problem):
        result = BottleneckSolver().solve(small_problem)
        assert np.any(np.isclose(small_problem.delay, result.extra["bottleneck_s"]))

    def test_deterministic(self, small_problem):
        a = BottleneckSolver().solve(small_problem)
        b = BottleneckSolver().solve(small_problem)
        assert a.assignment == b.assignment

    def test_polish_zero_passes_still_feasible(self, small_problem):
        result = BottleneckSolver(polish_passes=0).solve(small_problem)
        assert result.feasible

    def test_matches_exact_bottleneck_on_trivial_instance(self):
        """On a loose instance the optimal bottleneck is each device's own
        min... no — with no capacity pressure every device takes its argmin,
        so the bottleneck is the max of row minima."""
        problem = random_instance(10, 3, tightness=0.3, seed=3)
        problem.capacity[:] = 1e9
        result = BottleneckSolver().solve(problem)
        expected = float(np.max(np.min(problem.delay, axis=1)))
        assert result.extra["bottleneck_s"] == pytest.approx(expected)

    @settings(max_examples=15, deadline=None)
    @given(problem=small_problems(max_devices=6, max_servers=3))
    def test_property_upper_bounds_true_bottleneck(self, problem):
        """The heuristic threshold is >= the exhaustive min-max optimum
        (FFD feasibility is one-sided) and the output is feasible."""
        result = BottleneckSolver().solve(problem)
        if not result.feasible:
            return
        optimum = _exhaustive_bottleneck(problem)
        assert optimum is not None  # solver found something, so one exists
        assert result.extra["bottleneck_s"] >= optimum - 1e-12
        assert result.assignment.max_delay() >= optimum - 1e-12


def _exhaustive_bottleneck(problem: AssignmentProblem) -> "float | None":
    """Exact min-max delay over all feasible assignments (tiny N only)."""
    import itertools

    best = None
    for vector in itertools.product(range(problem.n_servers),
                                    repeat=problem.n_devices):
        loads = np.zeros(problem.n_servers)
        for device, server in enumerate(vector):
            loads[server] += problem.demand[device, server]
        if np.any(loads > problem.capacity + 1e-12):
            continue
        worst = max(
            problem.delay[device, server] for device, server in enumerate(vector)
        )
        if best is None or worst < best:
            best = worst
    return best

"""Degenerate and boundary instances swept across every solver.

These shapes — one device, one server, exact-fit capacities, fully
tied delays — are where index arithmetic and tie-breaking logic break
first; every registered solver must handle all of them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.problem import AssignmentProblem
from repro.solvers.registry import available_solvers, get_solver

#: cheap constructor overrides so the sweep stays fast
FAST_KWARGS = {
    "tacc": {"episodes": 15},
    "qlearning": {"episodes": 15},
    "sarsa": {"episodes": 15},
    "reinforce": {"episodes": 10},
    "bandit": {"rounds": 10},
    "annealing": {"steps": 300},
    "genetic": {"population": 8, "generations": 5},
    "lns": {"iterations": 20},
    "lagrangian": {"rounds": 20},
}


def make_solver(name):
    return get_solver(name, seed=0, **FAST_KWARGS.get(name, {}))


def single_device():
    return AssignmentProblem(delay=[[3.0, 1.0]], demand=[5.0], capacity=[10.0, 10.0])


def single_server():
    return AssignmentProblem(
        delay=[[1.0], [2.0], [3.0]], demand=[2.0, 2.0, 2.0], capacity=[10.0]
    )


def one_by_one():
    return AssignmentProblem(delay=[[4.0]], demand=[1.0], capacity=[2.0])


def all_tied():
    return AssignmentProblem(
        delay=[[5.0, 5.0, 5.0]] * 4, demand=[1.0] * 4, capacity=[10.0] * 3
    )


def exact_fit():
    """Only one feasible assignment exists: the perfect matching.

    Demands are server-dependent (GAP general form) so the crossed
    assignment physically does not fit — not merely costs more.
    """
    return AssignmentProblem(
        delay=[[1.0, 9.0], [9.0, 1.0]],
        demand=[[10.0, 99.0], [99.0, 10.0]],
        capacity=[10.0, 10.0],
    )


@pytest.mark.parametrize("name", sorted(available_solvers()))
class TestDegenerateSweep:
    def test_single_device_picks_min_delay(self, name):
        if name == "reinforce":
            # stochastic policy: needs enough episodes to certainly sample
            # both arms at least once
            solver = get_solver(name, seed=0, episodes=100)
        else:
            solver = make_solver(name)
        result = solver.solve(single_device())
        assert result.feasible
        if name not in ("round_robin", "best_fit"):
            # round robin and best fit are delay-blind by design
            assert result.assignment.server_of(0) == 1

    def test_single_server_all_assigned(self, name):
        result = make_solver(name).solve(single_server())
        assert result.feasible
        assert result.assignment.devices_on(0) == [0, 1, 2]

    def test_one_by_one(self, name):
        result = make_solver(name).solve(one_by_one())
        assert result.feasible
        assert result.objective_value == pytest.approx(4.0)

    def test_all_tied_delays(self, name):
        result = make_solver(name).solve(all_tied())
        assert result.feasible
        assert result.objective_value == pytest.approx(20.0)

    def test_exact_fit_forced_matching(self, name):
        result = make_solver(name).solve(exact_fit())
        if name == "nearest":
            # capacity-blind: happens to coincide with the matching here
            assert result.assignment.is_complete
            return
        assert result.feasible, name
        assert result.assignment.server_of(0) == 0
        assert result.assignment.server_of(1) == 1
        assert result.objective_value == pytest.approx(2.0)


class TestNumericalEdges:
    def test_very_small_delays(self):
        problem = AssignmentProblem(
            delay=np.full((5, 2), 1e-9),
            demand=[1.0] * 5,
            capacity=[10.0, 10.0],
        )
        result = get_solver("tacc", seed=0, episodes=10).solve(problem)
        assert result.feasible
        assert result.objective_value == pytest.approx(5e-9)

    def test_very_large_demands(self):
        problem = AssignmentProblem(
            delay=[[1.0, 2.0]] * 3,
            demand=[1e9] * 3,
            capacity=[2e9, 2e9],
        )
        result = get_solver("greedy").solve(problem)
        assert result.feasible

    def test_huge_delay_spread(self):
        problem = AssignmentProblem(
            delay=[[1e-6, 1e3], [1e3, 1e-6]],
            demand=[1.0, 1.0],
            capacity=[5.0, 5.0],
        )
        result = get_solver("branch_and_bound").solve(problem)
        assert result.objective_value == pytest.approx(2e-6)

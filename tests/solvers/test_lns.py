"""Tests for the large neighborhood search solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import ValidationError
from repro.model.instances import gap_instance, random_instance
from repro.solvers.greedy import GreedyFeasibleSolver, feasible_start
from repro.solvers.lns import LNSSolver
from tests.strategies import small_problems


class TestLNS:
    def test_feasible_output(self, small_problem):
        result = LNSSolver(iterations=100, seed=1).solve(small_problem)
        assert result.feasible

    def test_feasible_on_tight_correlated(self, tight_problem):
        result = LNSSolver(iterations=150, seed=2).solve(tight_problem)
        assert result.feasible
        assert result.assignment.overloaded_servers() == []

    def test_never_worse_than_its_start(self):
        for seed in range(5):
            problem = random_instance(30, 5, tightness=0.8, seed=seed)
            start = feasible_start(problem).total_delay()
            result = LNSSolver(iterations=150, seed=seed).solve(problem)
            assert result.objective_value <= start + 1e-12

    def test_beats_greedy_on_hard_classes(self):
        lns_total, greedy_total = 0.0, 0.0
        for seed in range(5):
            problem = gap_instance(30, 5, "d", seed=seed)
            lns_total += LNSSolver(iterations=200, seed=seed).solve(
                problem
            ).objective_value
            greedy_total += GreedyFeasibleSolver().solve(problem).objective_value
        assert lns_total < greedy_total

    def test_deterministic_given_seed(self, small_problem):
        a = LNSSolver(iterations=80, seed=3).solve(small_problem)
        b = LNSSolver(iterations=80, seed=3).solve(small_problem)
        assert a.assignment == b.assignment

    def test_all_operators_exercised(self, small_problem):
        result = LNSSolver(iterations=200, seed=4).solve(small_problem)
        uses = result.extra["operator_uses"]
        assert set(uses) == {"random", "worst", "server"}
        assert all(count > 0 for count in uses.values())

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            LNSSolver(iterations=0)
        with pytest.raises(ValidationError):
            LNSSolver(destroy_fraction=0.0)
        with pytest.raises(ValidationError):
            LNSSolver(temperature=2.0)

    def test_repair_respects_capacity(self, small_problem):
        solver = LNSSolver(seed=5)
        rng = np.random.default_rng(0)
        start = feasible_start(small_problem)
        vector = start.vector
        removed = np.array([0, 1])
        ok = solver._repair(small_problem, vector, removed, rng)
        assert ok
        loads = np.zeros(small_problem.n_servers)
        np.add.at(
            loads, vector,
            small_problem.demand[np.arange(small_problem.n_devices), vector],
        )
        assert np.all(loads <= small_problem.capacity + 1e-9)

    @settings(max_examples=15, deadline=None)
    @given(problem=small_problems())
    def test_property_output_feasible(self, problem):
        result = LNSSolver(iterations=60, seed=6).solve(problem)
        if result.assignment.is_complete:
            assert result.assignment.overloaded_servers() == []

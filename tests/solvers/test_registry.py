"""Tests for the solver registry."""

from __future__ import annotations

import pytest

from repro.errors import SolverError
from repro.solvers.base import Solver
from repro.solvers.registry import (
    DEFAULT_BASELINES,
    available_solvers,
    get_solver,
    register_solver,
)


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in available_solvers():
            solver = get_solver(name)
            assert isinstance(solver, Solver)
            assert solver.name == name or name in ("tacc", "qlearning", "bandit", "reinforce")

    def test_rl_solvers_present(self):
        names = available_solvers()
        for rl in ("tacc", "qlearning", "bandit", "reinforce"):
            assert rl in names

    def test_default_baselines_are_registered(self):
        names = set(available_solvers())
        assert set(DEFAULT_BASELINES) <= names

    def test_kwargs_forwarded(self):
        solver = get_solver("tacc", episodes=12, seed=3)
        assert solver.episodes == 12
        assert solver.seed == 3

    def test_unknown_name_raises(self):
        with pytest.raises(SolverError, match="unknown solver"):
            get_solver("quantum_annealer")

    def test_register_custom_solver(self, small_problem):
        from repro.solvers.greedy import GreedyFeasibleSolver

        class MySolver(GreedyFeasibleSolver):
            name = "my_custom_solver_for_test"

        register_solver("my_custom_solver_for_test", MySolver)
        try:
            result = get_solver("my_custom_solver_for_test").solve(small_problem)
            assert result.feasible
        finally:
            from repro.solvers import registry

            registry._REGISTRY.pop("my_custom_solver_for_test")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SolverError):
            register_solver("greedy", lambda: None)

    def test_every_registered_solver_solves_small_instance(self, tiny_problem):
        """Integration sweep: the whole field solves a tiny instance and
        capacity-aware members return feasible assignments."""
        for name in available_solvers():
            kwargs = {}
            if name in ("tacc", "qlearning", "reinforce"):
                kwargs["episodes"] = 30
            if name == "bandit":
                kwargs["rounds"] = 30
            if name == "annealing":
                kwargs["steps"] = 1000
            if name == "genetic":
                kwargs = {"population": 8, "generations": 8}
            result = get_solver(name, seed=0, **kwargs).solve(tiny_problem)
            assert result.assignment.is_complete, name
            if name != "nearest":
                assert result.feasible, name

"""Tests for the top-level public API surface."""

from __future__ import annotations

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        problem = repro.topology_instance(
            family="random_geometric",
            n_routers=15,
            n_devices=10,
            n_servers=3,
            tightness=0.7,
            seed=42,
        )
        result = repro.get_solver("tacc", seed=1, episodes=40).solve(problem)
        assert result.feasible
        report = repro.simulate_assignment(result.assignment, duration_s=5.0, seed=2)
        assert report.tasks_completed > 0

    def test_available_solvers_nonempty(self):
        assert "tacc" in repro.available_solvers()

    def test_errors_module_exposed(self):
        assert issubclass(repro.errors.SolverError, repro.errors.ReproError)

    def test_make_topology_exposed(self):
        graph = repro.make_topology("grid", 9)
        assert graph.is_connected()

    def test_tacc_solver_class_exposed(self, small_problem):
        result = repro.TaccSolver(episodes=20, seed=0).solve(small_problem)
        assert result.feasible

    def test_obs_module_exposed(self):
        assert "obs" in repro.__all__
        for name in (
            "observed",
            "enable",
            "disable",
            "is_enabled",
            "metrics",
            "tracer",
            "MetricsRegistry",
            "Timer",
            "Span",
            "write_jsonl",
            "load_jsonl",
            "to_prometheus_text",
            "render_dashboard",
            "names",
        ):
            assert hasattr(repro.obs, name), name

    def test_obs_disabled_by_default(self):
        assert not repro.obs.is_enabled()

    def test_obs_observed_round_trip(self, small_problem):
        with repro.obs.observed() as session:
            repro.get_solver("greedy").solve(small_problem)
            snapshot = session.snapshot()
        assert snapshot["counters"]["solver/solves{solver=greedy}"] == 1
        assert not repro.obs.is_enabled()

"""Tests for the top-level public API surface."""

from __future__ import annotations

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        problem = repro.topology_instance(
            family="random_geometric",
            n_routers=15,
            n_devices=10,
            n_servers=3,
            tightness=0.7,
            seed=42,
        )
        result = repro.get_solver("tacc", seed=1, episodes=40).solve(problem)
        assert result.feasible
        report = repro.simulate_assignment(result.assignment, duration_s=5.0, seed=2)
        assert report.tasks_completed > 0

    def test_available_solvers_nonempty(self):
        assert "tacc" in repro.available_solvers()

    def test_errors_module_exposed(self):
        assert issubclass(repro.errors.SolverError, repro.errors.ReproError)

    def test_make_topology_exposed(self):
        graph = repro.make_topology("grid", 9)
        assert graph.is_connected()

    def test_tacc_solver_class_exposed(self, small_problem):
        result = repro.TaccSolver(episodes=20, seed=0).solve(small_problem)
        assert result.feasible

"""Tests for arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workload.arrivals import MMPPProcess, PeriodicProcess, PoissonProcess


def empirical_rate(process, n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    total = sum(process.next_interval(rng) for _ in range(n))
    return n / total


class TestPoisson:
    def test_empirical_rate_matches(self):
        process = PoissonProcess(rate_hz=4.0)
        assert empirical_rate(process) == pytest.approx(4.0, rel=0.05)

    def test_mean_rate_property(self):
        assert PoissonProcess(2.5).mean_rate_hz == 2.5

    def test_intervals_positive(self):
        process = PoissonProcess(10.0)
        rng = np.random.default_rng(1)
        assert all(process.next_interval(rng) >= 0 for _ in range(1000))

    def test_memoryless_cv_about_one(self):
        """Exponential gaps have coefficient of variation ~1."""
        process = PoissonProcess(1.0)
        rng = np.random.default_rng(2)
        gaps = np.array([process.next_interval(rng) for _ in range(20_000)])
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValidationError):
            PoissonProcess(0.0)


class TestPeriodic:
    def test_zero_jitter_is_exact(self):
        process = PeriodicProcess(period_s=0.5)
        rng = np.random.default_rng(3)
        assert all(process.next_interval(rng) == 0.5 for _ in range(10))

    def test_jitter_bounded(self):
        process = PeriodicProcess(period_s=1.0, jitter=0.2)
        rng = np.random.default_rng(4)
        gaps = [process.next_interval(rng) for _ in range(1000)]
        assert all(0.8 <= g <= 1.2 for g in gaps)

    def test_mean_rate(self):
        assert PeriodicProcess(0.25).mean_rate_hz == 4.0

    def test_jitter_above_one_rejected(self):
        with pytest.raises(ValidationError):
            PeriodicProcess(1.0, jitter=1.5)


class TestMMPP:
    def test_mean_rate_between_states(self):
        process = MMPPProcess(
            base_rate_hz=1.0, burst_rate_hz=10.0, mean_calm_s=9.0, mean_burst_s=1.0
        )
        assert 1.0 < process.mean_rate_hz < 10.0
        assert process.mean_rate_hz == pytest.approx(0.9 * 1.0 + 0.1 * 10.0)

    def test_empirical_rate_near_theoretical(self):
        process = MMPPProcess(
            base_rate_hz=1.0, burst_rate_hz=10.0, mean_calm_s=5.0, mean_burst_s=5.0
        )
        assert empirical_rate(process, n=50_000) == pytest.approx(
            process.mean_rate_hz, rel=0.1
        )

    def test_burstier_than_poisson(self):
        """MMPP gap distribution has CV > 1 (overdispersed)."""
        process = MMPPProcess(
            base_rate_hz=0.5, burst_rate_hz=20.0, mean_calm_s=10.0, mean_burst_s=2.0
        )
        rng = np.random.default_rng(5)
        gaps = np.array([process.next_interval(rng) for _ in range(30_000)])
        cv = gaps.std() / gaps.mean()
        assert cv > 1.2

    def test_intervals_positive(self):
        process = MMPPProcess(1.0, 5.0)
        rng = np.random.default_rng(6)
        assert all(process.next_interval(rng) > 0 for _ in range(1000))

    def test_invalid_rates(self):
        with pytest.raises(ValidationError):
            MMPPProcess(0.0, 1.0)
        with pytest.raises(ValidationError):
            MMPPProcess(1.0, 1.0, mean_calm_s=0.0)

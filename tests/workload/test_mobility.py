"""Tests for the mobility model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.model.instances import random_instance, topology_instance
from repro.topology.graph import NodeKind
from repro.workload.mobility import RandomWaypointMobility


@pytest.fixture
def mobile_problem():
    return topology_instance(
        n_routers=20, n_devices=15, n_servers=3, tightness=0.7, seed=55
    )


class TestRandomWaypointMobility:
    def test_requires_topology_backed_problem(self):
        with pytest.raises(ValidationError, match="topology"):
            RandomWaypointMobility(random_instance(5, 2, seed=1))

    def test_epoch_refreshes_delay_matrix(self, mobile_problem):
        mobility = RandomWaypointMobility(mobile_problem, seed=1, move_fraction=1.0)
        epoch = mobility.step(1)
        assert epoch.problem.delay.shape == mobile_problem.delay.shape
        assert not np.allclose(epoch.problem.delay, mobile_problem.delay)

    def test_demand_and_capacity_preserved(self, mobile_problem):
        mobility = RandomWaypointMobility(mobile_problem, seed=2)
        epoch = mobility.step(1)
        assert np.allclose(epoch.problem.demand, mobile_problem.demand)
        assert np.allclose(epoch.problem.capacity, mobile_problem.capacity)

    def test_graph_stays_valid_across_epochs(self, mobile_problem):
        mobility = RandomWaypointMobility(mobile_problem, seed=3, move_fraction=0.8)
        for epoch in mobility.epochs(6):
            graph = epoch.problem.graph
            assert graph.is_connected()
            # every device has exactly one gateway
            for device in epoch.problem.devices:
                assert graph.degree(device.node_id) == 1

    def test_move_fraction_respected(self, mobile_problem):
        mobility = RandomWaypointMobility(mobile_problem, seed=4, move_fraction=0.2)
        epoch = mobility.step(1)
        expected = max(1, round(0.2 * mobile_problem.n_devices))
        assert len(epoch.moved_devices) == expected

    def test_reattachments_subset_of_moved(self, mobile_problem):
        mobility = RandomWaypointMobility(mobile_problem, seed=5, move_fraction=1.0, speed=0.3)
        epoch = mobility.step(1)
        assert set(epoch.reattached_devices) <= set(epoch.moved_devices)

    def test_deterministic(self, mobile_problem):
        a = RandomWaypointMobility(mobile_problem, seed=6).step(1)
        b = RandomWaypointMobility(mobile_problem, seed=6).step(1)
        assert np.allclose(a.problem.delay, b.problem.delay)
        assert a.moved_devices == b.moved_devices

    def test_positions_drift_toward_waypoints(self, mobile_problem):
        mobility = RandomWaypointMobility(
            mobile_problem, seed=7, move_fraction=1.0, speed=0.05
        )
        device = mobile_problem.devices[0]
        before = mobility._graph.node(device.node_id).position
        mobility.step(1)
        after = mobility._graph.node(device.node_id).position
        moved = np.hypot(after[0] - before[0], after[1] - before[1])
        assert moved == pytest.approx(0.05, abs=0.051)  # capped by waypoint snap

    def test_original_problem_untouched(self, mobile_problem):
        original = mobile_problem.delay.copy()
        mobility = RandomWaypointMobility(mobile_problem, seed=8, move_fraction=1.0)
        mobility.step(1)
        assert np.allclose(mobile_problem.delay, original)

    def test_epochs_iterator_counts(self, mobile_problem):
        mobility = RandomWaypointMobility(mobile_problem, seed=9)
        epochs = list(mobility.epochs(4))
        assert [e.epoch for e in epochs] == [1, 2, 3, 4]

"""Tests for the task factory and trace generation/persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SerializationError, ValidationError
from repro.model.entities import IoTDevice
from repro.workload.arrivals import PeriodicProcess
from repro.workload.tasks import TaskFactory
from repro.workload.traces import Trace, generate_trace


class TestTaskFactory:
    def test_unique_ids(self):
        factory = TaskFactory()
        rng = np.random.default_rng(0)
        ids = {
            factory.make(0, 0, created_at=0.0, rng=rng).task_id for _ in range(100)
        }
        assert len(ids) == 100

    def test_mean_size_matches_parameter(self):
        factory = TaskFactory(mean_size_bits=10_000.0, size_sigma=0.4)
        rng = np.random.default_rng(1)
        sizes = [
            factory.make(0, 0, created_at=0.0, rng=rng).size_bits for _ in range(20_000)
        ]
        assert np.mean(sizes) == pytest.approx(10_000.0, rel=0.05)

    def test_mean_compute_matches_parameter(self):
        factory = TaskFactory(mean_compute_units=2.0)
        rng = np.random.default_rng(2)
        units = [
            factory.make(0, 0, created_at=0.0, rng=rng).compute_units
            for _ in range(20_000)
        ]
        assert np.mean(units) == pytest.approx(2.0, rel=0.05)

    def test_deadline_stamped(self):
        factory = TaskFactory()
        rng = np.random.default_rng(3)
        task = factory.make(1, 2, created_at=5.0, rng=rng, deadline_s=0.1)
        assert task.deadline_s == 0.1
        assert task.device_id == 1
        assert task.server_id == 2
        assert task.created_at == 5.0

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            TaskFactory(mean_size_bits=0.0)
        with pytest.raises(ValidationError):
            TaskFactory(mean_compute_units=-1.0)


def fleet(n=3):
    return [
        IoTDevice(device_id=i, node_id=100 + i, demand=10.0, rate_hz=2.0)
        for i in range(n)
    ]


class TestGenerateTrace:
    def test_entries_time_sorted(self):
        trace = generate_trace(fleet(), horizon_s=20.0, seed=1)
        times = [e.time_s for e in trace.entries]
        assert times == sorted(times)

    def test_all_entries_within_horizon(self):
        trace = generate_trace(fleet(), horizon_s=10.0, seed=2)
        assert all(0 < e.time_s <= 10.0 for e in trace.entries)

    def test_empirical_rate_matches_device_rate(self):
        trace = generate_trace(fleet(1), horizon_s=500.0, seed=3)
        assert trace.rate_of(0) == pytest.approx(2.0, rel=0.15)

    def test_deterministic(self):
        a = generate_trace(fleet(), horizon_s=10.0, seed=4)
        b = generate_trace(fleet(), horizon_s=10.0, seed=4)
        assert [e.time_s for e in a.entries] == [e.time_s for e in b.entries]

    def test_arrival_override(self):
        devices = fleet(2)
        trace = generate_trace(
            devices,
            horizon_s=10.0,
            seed=5,
            arrivals={0: PeriodicProcess(1.0)},
        )
        # device 0 has exactly 10 periodic arrivals
        assert sum(1 for e in trace.entries if e.device_id == 0) == 10

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValidationError):
            generate_trace([], horizon_s=10.0)


class TestTracePersistence:
    def test_roundtrip(self, tmp_path):
        trace = generate_trace(fleet(), horizon_s=15.0, seed=6)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.horizon_s == trace.horizon_s
        assert loaded.n_entries == trace.n_entries
        for original, restored in zip(trace.entries, loaded.entries):
            assert restored.time_s == pytest.approx(original.time_s)
            assert restored.device_id == original.device_id
            assert restored.size_bits == pytest.approx(original.size_bits)

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"horizon_s": 1.0}\nnot json\n')
        with pytest.raises(SerializationError):
            Trace.load(path)

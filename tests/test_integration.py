"""End-to-end integration tests spanning the full pipeline.

These are slower than unit tests but exercise the exact flows the
README and examples advertise: generate → solve → validate → simulate
→ evolve (mobility/churn) → reconfigure.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cluster.churn import ChurnProcess, MembershipController
from repro.cluster.controller import ReconfigurationController
from repro.sim.trace_runner import replay_trace
from repro.solvers.lp import lp_lower_bound
from repro.workload.mobility import RandomWaypointMobility
from repro.workload.traces import generate_trace


@pytest.fixture(scope="module")
def deployment():
    return repro.topology_instance(
        family="waxman",
        n_routers=30,
        n_devices=25,
        n_servers=4,
        tightness=0.75,
        seed=2026,
        deadline_s=0.05,
    )


class TestReadmeFlow:
    def test_solve_validate_simulate(self, deployment):
        result = repro.get_solver("tacc", seed=1, episodes=120).solve(deployment)
        assert result.feasible
        result.assignment.validate()
        # static quality: within 15% of the LP floor
        assert result.objective_value <= lp_lower_bound(deployment) * 1.15
        report = repro.simulate_assignment(result.assignment, duration_s=15.0, seed=2)
        assert report.tasks_completed == report.tasks_created
        assert report.deadline_miss_rate is not None

    def test_solver_quality_ordering_holds_end_to_end(self, deployment):
        """random > greedy > tacc in static cost, and the DES agrees."""
        random_result = repro.get_solver("random", seed=3).solve(deployment)
        greedy_result = repro.get_solver("greedy", seed=3).solve(deployment)
        tacc_result = repro.get_solver("tacc", seed=3, episodes=150).solve(deployment)
        assert tacc_result.objective_value <= greedy_result.objective_value
        assert greedy_result.objective_value <= random_result.objective_value
        trace = generate_trace(deployment.devices, horizon_s=12.0, seed=4)
        tacc_measured = replay_trace(tacc_result.assignment, trace)
        random_measured = replay_trace(random_result.assignment, trace)
        assert (
            tacc_measured.mean_network_latency_ms
            <= random_measured.mean_network_latency_ms
        )


class TestDynamicFlow:
    def test_mobility_plus_controller_keeps_feasibility(self, deployment):
        mobility = RandomWaypointMobility(deployment, seed=5, move_fraction=0.6)
        controller = ReconfigurationController(
            repro.get_solver("tacc", seed=6, episodes=80), strategy="hysteresis"
        )
        controller.initialize(deployment)
        for epoch_state in mobility.epochs(5):
            decision = controller.observe(epoch_state.epoch, epoch_state.problem)
            assert decision.feasible

    def test_churn_membership_never_overloads(self, deployment):
        controller = MembershipController(deployment, join_rule="reserve")
        churn = ChurnProcess(deployment.n_devices, seed=7)
        controller.bootstrap(churn.active)
        for epoch in range(1, 10):
            controller.apply(churn.step(epoch))
            assert np.all(controller.utilization() <= 1.0 + 1e-9)


class TestDeterminism:
    def test_whole_pipeline_reproducible(self):
        """Same seed => identical instance, assignment and measurements."""
        outcomes = []
        for _ in range(2):
            problem = repro.topology_instance(
                n_routers=15, n_devices=12, n_servers=3, tightness=0.7, seed=99
            )
            result = repro.get_solver("tacc", seed=1, episodes=50).solve(problem)
            report = repro.simulate_assignment(result.assignment, duration_s=5.0, seed=2)
            outcomes.append(
                (
                    result.objective_value,
                    tuple(result.assignment.vector),
                    report.tasks_created,
                    report.mean_network_latency_ms,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_different_topology_seed_changes_instance(self):
        a = repro.topology_instance(n_routers=15, n_devices=10, n_servers=3, seed=1)
        b = repro.topology_instance(n_routers=15, n_devices=10, n_servers=3, seed=2)
        assert not np.allclose(a.delay, b.delay)


class TestCrossComponentConsistency:
    def test_cli_experiment_names_cover_configs(self):
        from repro.cli.commands import _EXPERIMENT_MODULES
        from repro.experiments.configs import _CONFIGS

        assert set(_EXPERIMENT_MODULES) == set(_CONFIGS)

    def test_report_metadata_covers_benchmarks(self):
        """Every bench module's emitted result name has report metadata."""
        import re
        from pathlib import Path

        from repro.experiments.report import EXPERIMENTS

        emitted = set()
        for bench in Path("benchmarks").glob("bench_*.py"):
            for match in re.finditer(r'emit\(table, results_dir, "([^"]+)"\)',
                                     bench.read_text()):
                emitted.add(match.group(1))
        assert emitted == set(EXPERIMENTS)

    def test_registry_covers_figure_solvers(self):
        from repro.experiments.configs import FIGURE_SOLVERS
        from repro.solvers.registry import available_solvers

        assert set(FIGURE_SOLVERS) <= set(available_solvers())

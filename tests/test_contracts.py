"""Global contracts every registered solver must satisfy.

Individual solver tests check algorithm-specific behaviour; these
sweeps enforce the *library-wide* promises documented in
docs/architecture.md across the whole registry at once, so a newly
registered solver cannot quietly break them.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.model.instances import topology_instance
from repro.solvers.registry import available_solvers, get_solver

FAST_KWARGS = {
    "tacc": {"episodes": 20},
    "qlearning": {"episodes": 20},
    "sarsa": {"episodes": 20},
    "double_q": {"episodes": 20},
    "reinforce": {"episodes": 12},
    "bandit": {"rounds": 12},
    "annealing": {"steps": 500},
    "genetic": {"population": 8, "generations": 6},
    "lns": {"iterations": 25},
    "lagrangian": {"rounds": 25},
    "portfolio": {"member_kwargs": {"lns": {"iterations": 25}}},
}


def make(name, seed=0):
    return get_solver(name, seed=seed, **FAST_KWARGS.get(name, {}))


@pytest.fixture(scope="module")
def standard_problem():
    return topology_instance(
        n_routers=20, n_devices=15, n_servers=3, tightness=0.7, seed=31_337
    )


@pytest.fixture(scope="module")
def tiny_contract_problem():
    """Small enough for exhaustive search (3^8 states)."""
    return topology_instance(
        n_routers=12, n_devices=8, n_servers=3, tightness=0.7, seed=31_337
    )


@pytest.fixture()
def contract_problem(request, standard_problem, tiny_contract_problem):
    """Brute force gets the exhaustively-searchable instance; everyone
    else gets the standard one."""
    name = request.node.callspec.params.get("name")
    if name == "brute_force":
        return tiny_contract_problem
    return standard_problem


@pytest.mark.parametrize("name", sorted(available_solvers()))
class TestSolverContracts:
    def test_deterministic_under_seed(self, name, contract_problem):
        """Same (problem, seed) => identical assignment, for every solver."""
        first = make(name, seed=5).solve(contract_problem)
        second = make(name, seed=5).solve(contract_problem)
        assert first.assignment == second.assignment
        assert first.objective_value == pytest.approx(second.objective_value)

    def test_result_invariants(self, name, contract_problem):
        """objective finite iff complete; runtime and iterations sane."""
        result = make(name).solve(contract_problem)
        assert result.runtime_s >= 0.0
        assert result.iterations >= 0
        if result.assignment.is_complete:
            assert math.isfinite(result.objective_value)
        else:
            assert result.objective_value == math.inf
        if result.lower_bound is not None and result.feasible:
            assert result.lower_bound <= result.objective_value + 1e-9

    def test_objective_matches_assignment(self, name, contract_problem):
        """The reported value is the assignment's actual objective."""
        result = make(name).solve(contract_problem)
        if result.assignment.is_complete:
            assert result.objective_value == pytest.approx(
                result.assignment.total_delay()
            )

    def test_problem_not_mutated(self, name, contract_problem):
        """Solvers must treat the instance as read-only."""
        delay = contract_problem.delay.copy()
        demand = contract_problem.demand.copy()
        capacity = contract_problem.capacity.copy()
        make(name).solve(contract_problem)
        assert np.array_equal(contract_problem.delay, delay)
        assert np.array_equal(contract_problem.demand, demand)
        assert np.array_equal(contract_problem.capacity, capacity)

    def test_feasibility_flag_consistent(self, name, contract_problem):
        """result.feasible agrees with the assignment's own check."""
        result = make(name).solve(contract_problem)
        assert result.feasible == result.assignment.is_feasible()

"""Counter/gauge/timer/histogram semantics and the registries."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    default_buckets,
    instrument_key,
    snapshot_delta,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_starts_nan_then_last_write_wins(self):
        gauge = Gauge("x")
        assert math.isnan(gauge.value)
        gauge.set(3.0)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_inc_treats_nan_as_zero(self):
        gauge = Gauge("x")
        gauge.inc(2.0)
        gauge.inc(-0.5)
        assert gauge.value == pytest.approx(1.5)


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        hist = Histogram("x")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(10.0)
        assert hist.min == 1.0
        assert hist.max == 4.0
        assert hist.mean == pytest.approx(2.5)

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram("x").quantile(0.5))

    def test_quantile_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_exact_quantiles_below_reservoir_capacity(self):
        hist = Histogram("x")
        for i in range(101):
            hist.observe(i / 100.0)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 1.0
        assert hist.quantile(0.5) == pytest.approx(0.5)
        assert hist.quantile(0.9) == pytest.approx(0.9)

    def test_reservoir_quantile_accuracy_bounds(self):
        """Sampled quantiles of U[0,1] stay within a loose tolerance."""
        hist = Histogram("x", reservoir_size=512)
        # deterministic low-discrepancy stream covering [0, 1)
        for i in range(20_000):
            hist.observe((i * 0.6180339887498949) % 1.0)
        assert hist.count == 20_000
        for q in (0.5, 0.9, 0.99):
            assert hist.quantile(q) == pytest.approx(q, abs=0.08)

    def test_cumulative_buckets_end_at_inf_with_total_count(self):
        hist = Histogram("x", buckets=[1.0, 10.0])
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        buckets = hist.cumulative_buckets()
        assert buckets[-1][0] == math.inf
        assert buckets[-1][1] == 3
        assert buckets[0] == (1.0, 1)
        assert buckets[1] == (10.0, 2)

    def test_default_buckets_sorted_and_positive(self):
        bounds = default_buckets()
        assert bounds == sorted(bounds)
        assert all(b > 0 for b in bounds)

    def test_summary_shape(self):
        hist = Histogram("x")
        hist.observe(2.0)
        summary = hist.summary()
        for key in ("count", "sum", "min", "max", "mean", "p50", "p90", "p99", "buckets"):
            assert key in summary


class TestTimer:
    def test_context_manager_observes_elapsed(self):
        timer = Timer("x")
        with timer:
            pass
        assert timer.count == 1
        assert timer.sum >= 0.0

    def test_nested_use_is_reentrant(self):
        timer = Timer("x")
        with timer:
            with timer:
                pass
        assert timer.count == 2

    def test_observes_on_exception(self):
        timer = Timer("x")
        with pytest.raises(RuntimeError):
            with timer:
                raise RuntimeError("boom")
        assert timer.count == 1


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", {"k": "v"}) is not registry.counter("a")

    def test_kinds_are_namespaced(self):
        registry = MetricsRegistry()
        counter = registry.counter("same")
        gauge = registry.gauge("same")
        assert counter is not gauge

    def test_snapshot_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(0.5)
        registry.timer("t").observe(0.1)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 1.0
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["timers"]["t"]["count"] == 1

    def test_labels_render_in_snapshot_keys(self):
        registry = MetricsRegistry()
        registry.counter("c", {"solver": "tacc"}).inc()
        assert "c{solver=tacc}" in registry.snapshot()["counters"]

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.counter("c").inc()
        NULL_REGISTRY.gauge("g").set(1.0)
        NULL_REGISTRY.histogram("h").observe(1.0)
        with NULL_REGISTRY.timer("t"):
            pass
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.instruments() == {}

    def test_instruments_are_shared_singletons(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.histogram("b")


class TestSnapshotDelta:
    def test_counters_subtract_gauges_take_after(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(1.0)
        before = registry.snapshot()
        registry.counter("c").inc(3)
        registry.gauge("g").set(9.0)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["counters"]["c"] == 3
        assert delta["gauges"]["g"] == 9.0

    def test_histogram_counts_subtract(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        before = registry.snapshot()
        registry.histogram("h").observe(2.0)
        registry.histogram("h").observe(3.0)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["histograms"]["h"]["count"] == 2
        assert delta["histograms"]["h"]["sum"] == pytest.approx(5.0)


class TestInstrumentKey:
    def test_no_labels_is_bare_name(self):
        assert instrument_key("a/b", None) == "a/b"

    def test_labels_sorted(self):
        assert instrument_key("m", {"b": "2", "a": "1"}) == "m{a=1,b=2}"

"""The metric-name catalog stays consistent with itself and the docs."""

from pathlib import Path

from repro.obs import names

DOCS = Path(__file__).resolve().parents[2] / "docs" / "observability.md"


def test_catalog_names_unique():
    assert len(set(names.CATALOG)) == len(names.CATALOG)


def test_catalog_names_are_layer_slash_metric():
    for name in names.CATALOG:
        layer, _, metric = name.partition("/")
        assert layer and metric, name
        assert name == name.lower()
        assert " " not in name


def test_catalog_covers_module_constants():
    declared = {
        value
        for key, value in vars(names).items()
        if key.isupper() and isinstance(value, str)
        and not key.startswith(("SPAN_", "XSPAN_"))
    }
    assert declared == set(names.CATALOG)


def test_docs_document_every_metric():
    text = DOCS.read_text(encoding="utf-8")
    missing = [name for name in names.CATALOG if f"`{name}`" not in text]
    assert not missing, f"docs/observability.md is missing {missing}"

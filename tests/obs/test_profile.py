"""Profiling-hook tests: capture, cross-process merge, rendering."""

from __future__ import annotations

from repro.obs.profile import (
    merge_profiles,
    profile_call,
    render_profile,
    stats_from_profiler,
)


def _busy(n: int) -> int:
    return sum(i * i for i in range(n))


class TestProfileCall:
    def test_returns_result_and_stats(self):
        result, stats = profile_call(_busy, 1000)
        assert result == _busy(1000)
        assert isinstance(stats, dict) and stats
        for ncalls, tottime, cumtime in stats.values():
            assert ncalls >= 1
            assert tottime >= 0.0
            assert cumtime >= 0.0

    def test_locations_are_trimmed(self):
        _, stats = profile_call(_busy, 10)
        assert any("test_profile.py" in key and "(_busy)" in key for key in stats)
        # trimmed keys keep at most the last three path segments
        for key in stats:
            filename = key.rsplit(":", 1)[0]
            assert filename.count("/") <= 2

    def test_exception_still_stops_profiler(self):
        import pytest

        with pytest.raises(ValueError):
            profile_call(lambda: (_ for _ in ()).throw(ValueError("x")).__next__())

    def test_stats_from_profiler_direct(self):
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        _busy(100)
        profiler.disable()
        stats = stats_from_profiler(profiler)
        assert all(len(record) == 3 for record in stats.values())


class TestMergeProfiles:
    def test_sums_across_processes(self):
        a = {"f.py:1(f)": [2, 0.5, 1.0], "g.py:2(g)": [1, 0.1, 0.1]}
        b = {"f.py:1(f)": [3, 0.5, 2.0]}
        merged = merge_profiles([a, b])
        assert merged["f.py:1(f)"] == [5, 1.0, 3.0]
        assert merged["g.py:2(g)"] == [1, 0.1, 0.1]

    def test_order_independent(self):
        a = {"f.py:1(f)": [2, 0.5, 1.0]}
        b = {"f.py:1(f)": [3, 0.25, 2.0]}
        assert merge_profiles([a, b]) == merge_profiles([b, a])

    def test_skips_empty_entries(self):
        assert merge_profiles([{}, None, {"k": [1, 0.0, 0.0]}]) == {"k": [1, 0.0, 0.0]}

    def test_empty_input(self):
        assert merge_profiles([]) == {}


class TestRenderProfile:
    def test_empty_stats_message(self):
        assert "no profile data" in render_profile({})

    def test_top_n_by_cumulative(self):
        stats = {f"f{i}.py:1(f{i})": [1, 0.0, float(i)] for i in range(20)}
        text = render_profile(stats, top=5)
        assert "top 5" in text
        assert "f19.py" in text  # highest cumtime present
        assert "f0.py" not in text  # lowest cut off

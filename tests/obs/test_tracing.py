"""Span nesting, exception safety, and the runtime switch."""

from __future__ import annotations

import pytest

from repro.obs import runtime
from repro.obs.tracing import NULL_TRACER, Span, Tracer


class TestTracer:
    def test_single_span_becomes_root(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert [span.name for span in tracer.roots] == ["a"]
        assert tracer.roots[0].duration_s >= 0.0
        assert tracer.roots[0].status == "ok"

    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child1"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child2"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["child1", "child2"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]

    def test_sequential_roots_accumulate(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span.name for span in tracer.roots] == ["first", "second"]

    def test_exception_closes_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.depth == 0
        (root,) = tracer.roots
        assert root.status == "error:ValueError"
        assert root.children[0].status == "error:ValueError"
        assert root.duration_s >= root.children[0].duration_s >= 0.0

    def test_annotate_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("a", x=1) as scope:
            scope.annotate(y=2)
        assert tracer.roots[0].attributes == {"x": 1, "y": 2}

    def test_reset_clears_state(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.depth == 0

    def test_span_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("root", k="v"):
            with tracer.span("child"):
                pass
        payload = tracer.roots[0].as_dict()
        restored = Span.from_dict(payload)
        assert restored.name == "root"
        assert restored.attributes == {"k": "v"}
        assert restored.children[0].name == "child"


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything") as scope:
            scope.annotate(ignored=True)
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.depth == 0


class TestRuntimeSwitch:
    def test_disabled_by_default(self):
        assert not runtime.is_enabled()
        assert not runtime.metrics().enabled
        assert not runtime.tracer().enabled

    def test_observed_scope_enables_then_restores(self):
        assert not runtime.is_enabled()
        with runtime.observed() as session:
            assert runtime.is_enabled()
            runtime.metrics().counter("x").inc()
            assert session.snapshot()["counters"]["x"] == 1
        assert not runtime.is_enabled()

    def test_observed_scopes_nest(self):
        with runtime.observed() as outer:
            runtime.metrics().counter("outer").inc()
            with runtime.observed() as inner:
                runtime.metrics().counter("inner").inc()
                assert "outer" not in inner.snapshot()["counters"]
            assert "inner" not in outer.snapshot()["counters"]
            assert runtime.metrics() is outer.registry

    def test_enable_is_idempotent_and_disable_resets(self):
        try:
            first = runtime.enable()
            second = runtime.enable()
            assert first is second
            assert runtime.is_enabled()
        finally:
            runtime.disable()
        assert not runtime.is_enabled()

    def test_observed_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with runtime.observed():
                raise RuntimeError("boom")
        assert not runtime.is_enabled()

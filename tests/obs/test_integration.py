"""End-to-end: instrumented layers emit the documented metric names."""

from __future__ import annotations

import math

import pytest

import repro
from repro import obs
from repro.cli.main import main as cli_main
from repro.obs import names


class TestSolverTelemetry:
    def test_tacc_solve_emits_snapshot(self, small_problem):
        with obs.observed() as session:
            result = repro.TaccSolver(episodes=30, seed=0).solve(small_problem)
            snap = session.snapshot()
        assert result.feasible
        assert snap["counters"]["solver/solves{solver=tacc}"] == 1
        assert snap["counters"]["rl/episodes{solver=tacc}"] == 30
        assert snap["timers"]["solver/runtime_s{solver=tacc}"]["count"] == 1
        assert snap["counters"]["solver/iterations{solver=tacc}"] == 30
        # episode cost histogram collected something
        assert snap["histograms"]["rl/episode_cost{solver=tacc}"]["count"] > 0
        # span tree has the solve as a root
        spans = session.spans()
        assert any(span.name == "solve/tacc" for span in spans)

    def test_improvement_summary_attached_to_extra(self, small_problem):
        result = repro.TaccSolver(episodes=40, seed=0).solve(small_problem)
        summary = result.extra.get("objective_improvements")
        # 40 episodes on this instance always improve at least once
        assert summary is not None and summary["count"] >= 1

    def test_disabled_by_default_collects_nothing(self, small_problem):
        repro.TaccSolver(episodes=10, seed=0).solve(small_problem)
        assert not obs.is_enabled()
        assert obs.metrics().snapshot() == {}


class TestSimTelemetry:
    def test_short_des_run_emits_snapshot(self, topo_problem):
        solver = repro.get_solver("greedy")
        result = solver.solve(topo_problem)
        with obs.observed() as session:
            report = repro.simulate_assignment(
                result.assignment, duration_s=3.0, seed=1
            )
            snap = session.snapshot()
        assert report.tasks_completed > 0
        assert snap["counters"][names.SIM_EVENTS] > 0
        assert snap["counters"][names.SIM_TASKS_CREATED] == report.tasks_created
        assert snap["histograms"][names.SIM_EVENT_QUEUE_DEPTH]["count"] > 0
        waits = [
            key for key in snap["histograms"] if key.startswith(names.SIM_QUEUE_WAIT)
        ]
        assert waits, "per-server queue-wait histograms missing"
        total_waits = sum(snap["histograms"][k]["count"] for k in waits)
        # every completed task waited (possibly zero seconds) exactly once
        assert total_waits >= report.tasks_completed
        assert any(span.name == names.SPAN_SIM_RUN for span in session.spans())

    def test_link_and_server_utilization_recorded(self, topo_problem):
        result = repro.get_solver("greedy").solve(topo_problem)
        with obs.observed() as session:
            repro.simulate_assignment(result.assignment, duration_s=3.0, seed=1)
            snap = session.snapshot()
        assert snap["histograms"][names.SIM_LINK_UTILIZATION]["count"] > 0
        gauges = [
            key
            for key in snap["gauges"]
            if key.startswith(names.SIM_SERVER_UTILIZATION)
        ]
        assert len(gauges) == topo_problem.n_servers


class TestClusterTelemetry:
    def test_online_assigner_counts(self, small_problem):
        from repro.cluster.online import OnlineAssigner

        with obs.observed() as session:
            assigner = OnlineAssigner(small_problem, rule="greedy_delay")
            assigner.assign_stream(range(small_problem.n_devices))
            snap = session.snapshot()
        key = "cluster/online_assignments{rule=greedy_delay}"
        assert snap["counters"][key] == small_problem.n_devices

    def test_controller_reconfig_telemetry(self, small_problem):
        from repro.cluster.controller import ReconfigurationController

        with obs.observed() as session:
            controller = ReconfigurationController(
                repro.get_solver("greedy"), strategy="always"
            )
            controller.initialize(small_problem)
            controller.observe(1, small_problem)
            snap = session.snapshot()
        assert snap["counters"]["cluster/reconfigurations{strategy=always}"] >= 1
        assert snap["counters"]["cluster/epochs{strategy=always}"] == 1
        assert snap["timers"]["cluster/reconfig_latency_s{strategy=always}"]["count"] >= 1


class TestHarnessTelemetry:
    def test_sweep_point_snapshot_attached(self, small_problem):
        from repro.experiments.harness import run_solver_field

        with obs.observed():
            results = run_solver_field(small_problem, ["greedy", "regret"], seed=0)
        for name, result in results.items():
            delta = result.extra.get("obs")
            assert delta is not None
            assert delta["counters"][f"solver/solves{{solver={name}}}"] == 1

    def test_no_snapshot_when_disabled(self, small_problem):
        from repro.experiments.harness import run_solver_field

        results = run_solver_field(small_problem, ["greedy"], seed=0)
        assert "obs" not in results["greedy"].extra


class TestCliFlow:
    def test_simulate_obs_then_dashboard(self, tmp_path, capsys):
        """The documented CLI flow renders solver spans, queue-wait
        quantiles and RL episode counters from one JSONL file."""
        out = tmp_path / "run.jsonl"
        code = cli_main(
            [
                "simulate",
                "--devices", "10", "--routers", "12", "--servers", "3",
                "--duration", "2", "--seed", "0",
                "--obs", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert not obs.is_enabled()  # CLI turned it back off
        capsys.readouterr()
        assert cli_main(["obs", str(out)]) == 0
        dashboard = capsys.readouterr().out
        assert "solve/tacc" in dashboard  # solver span
        assert "sim/queue_wait_s" in dashboard  # queue-wait histogram
        assert "rl/episodes{solver=tacc}" in dashboard  # RL episode counter

    def test_obs_command_rejects_missing_file(self, capsys):
        assert cli_main(["obs", "/nonexistent/file.jsonl"]) == 1

    def test_solve_obs_writes_file(self, tmp_path):
        instance = tmp_path / "instance.json"
        problem = repro.random_instance(8, 3, tightness=0.6, seed=0)
        instance.write_text(problem.to_json(), encoding="utf-8")
        out = tmp_path / "solve.jsonl"
        code = cli_main(
            ["solve", str(instance), "--solver", "greedy", "--obs", str(out)]
        )
        assert code == 0
        data = obs.load_jsonl(out)
        assert data["metrics"]["counters"]["solver/solves{solver=greedy}"] == 1


class TestOverheadContract:
    def test_null_instruments_do_not_accumulate(self, small_problem):
        """Instrumented code paths must not create state when disabled."""
        registry = obs.metrics()
        assert not registry.enabled
        repro.get_solver("greedy").solve(small_problem)
        assert registry.instruments() == {}
        assert math.isnan(registry.histogram("x").quantile(0.5))


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test in this module must leave observability disabled."""
    yield
    assert not obs.is_enabled()
    obs.disable()

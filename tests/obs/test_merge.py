"""Properties and unit tests of the cross-process registry merge."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, Timer

# integral sample values keep float sums exact, so snapshot equality
# across merge orders is a clean == rather than an approx dance
_NAMES = st.sampled_from(["m/alpha", "m/beta", "m/gamma"])
_INT_VALUES = st.integers(min_value=0, max_value=1000).map(float)
_GAUGE_VALUES = st.one_of(_INT_VALUES, st.just(math.nan))
_STAMPS = st.integers(min_value=0, max_value=10**6).map(float)

_OPS = st.one_of(
    st.tuples(st.just("counter"), _NAMES, _INT_VALUES),
    st.tuples(st.just("gauge"), _NAMES, st.tuples(_GAUGE_VALUES, _STAMPS)),
    st.tuples(st.just("histogram"), _NAMES, _INT_VALUES),
    st.tuples(st.just("timer"), _NAMES, _INT_VALUES),
)
_OP_LISTS = st.lists(_OPS, max_size=25)


def build(ops) -> MetricsRegistry:
    """A registry holding the final state of an operation list."""
    registry = MetricsRegistry()
    for kind, name, payload in ops:
        if kind == "counter":
            registry.counter(name).inc(payload)
        elif kind == "gauge":
            value, stamp = payload
            gauge = registry.gauge(name)
            gauge.set(value)
            gauge.updated_at = stamp  # deterministic recency for the test
        elif kind == "histogram":
            registry.histogram(name).observe(payload)
        else:
            registry.timer(name).observe(payload)
    return registry


def clone(registry: MetricsRegistry) -> MetricsRegistry:
    """Independent copy via the dump/load state round-trip."""
    return MetricsRegistry.load_state(registry.dump_state())


def canon(snapshot: dict):
    """NaN-comparable form of a snapshot (NaN != NaN breaks plain ==)."""
    if isinstance(snapshot, dict):
        return {key: canon(value) for key, value in snapshot.items()}
    if isinstance(snapshot, list):
        return [canon(item) for item in snapshot]
    if isinstance(snapshot, float) and math.isnan(snapshot):
        return "NaN"
    return snapshot


class TestMergeProperties:
    """Merge is an associative, commutative monoid on registry states."""

    @settings(max_examples=60, deadline=None)
    @given(_OP_LISTS)
    def test_empty_registry_is_identity(self, ops):
        registry = build(ops)
        expected = canon(registry.snapshot())
        assert canon(clone(registry).merge(MetricsRegistry()).snapshot()) == expected
        assert canon(MetricsRegistry().merge(clone(registry)).snapshot()) == expected

    @settings(max_examples=60, deadline=None)
    @given(_OP_LISTS, _OP_LISTS)
    def test_commutative(self, ops_a, ops_b):
        a, b = build(ops_a), build(ops_b)
        ab = clone(a).merge(clone(b)).snapshot()
        ba = clone(b).merge(clone(a)).snapshot()
        assert canon(ab) == canon(ba)

    @settings(max_examples=60, deadline=None)
    @given(_OP_LISTS, _OP_LISTS, _OP_LISTS)
    def test_associative(self, ops_a, ops_b, ops_c):
        a, b, c = build(ops_a), build(ops_b), build(ops_c)
        left = clone(a).merge(clone(b)).merge(clone(c)).snapshot()
        right = clone(a).merge(clone(b).merge(clone(c))).snapshot()
        assert canon(left) == canon(right)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.lists(st.tuples(_NAMES, _INT_VALUES), max_size=10), max_size=5))
    def test_counters_sum_exactly(self, per_registry_incs):
        expected: dict[str, float] = {}
        merged = MetricsRegistry()
        for incs in per_registry_incs:
            registry = MetricsRegistry()
            for name, amount in incs:
                registry.counter(name).inc(amount)
                expected[name] = expected.get(name, 0.0) + amount
            merged.merge(registry)
        for name, total in expected.items():
            assert merged.counter(name).value == total


class TestMergeUnits:
    def test_gauge_latest_timestamp_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        a.gauge("g").updated_at = 100.0
        b.gauge("g").set(2.0)
        b.gauge("g").updated_at = 50.0
        assert a.merge(b).gauge("g").value == 1.0  # a's write is newer
        c = MetricsRegistry()
        c.gauge("g").set(3.0)
        c.gauge("g").updated_at = 200.0
        assert a.merge(c).gauge("g").value == 3.0

    def test_gauge_tie_prefers_non_nan(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(math.nan)
        a.gauge("g").updated_at = 10.0
        b.gauge("g").set(5.0)
        b.gauge("g").updated_at = 10.0
        assert a.merge(b).gauge("g").value == 5.0

    def test_histogram_merge_sums_counts_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (0.5, 2.0):
            a.histogram("h").observe(value)
        for value in (1.0, 8.0, 3.0):
            b.histogram("h").observe(value)
        merged = a.merge(b).histogram("h")
        assert merged.count == 5
        assert merged.sum == pytest.approx(14.5)
        assert merged.min == 0.5
        assert merged.max == 8.0

    def test_histogram_bounds_mismatch_raises(self):
        from repro.obs.metrics import Histogram

        one = MetricsRegistry()
        one.histogram("clash").observe(1.0)
        other = Histogram("clash", buckets=[1.0, 2.0])
        other.observe(1.5)
        with pytest.raises(ValueError, match="bucket bounds"):
            one.histogram("clash").merge_from(other)

    def test_merged_reservoir_is_sorted_union(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (3.0, 1.0):
            a.histogram("h").observe(value)
        for value in (2.0, 4.0):
            b.histogram("h").observe(value)
        merged = a.merge(b).histogram("h")
        assert merged._reservoir == [1.0, 2.0, 3.0, 4.0]

    def test_timer_round_trips_as_timer(self):
        a = MetricsRegistry()
        a.timer("t").observe(0.25)
        rebuilt = MetricsRegistry.load_state(a.dump_state())
        assert isinstance(rebuilt.timer("t"), Timer)
        assert rebuilt.timer("t").count == 1
        assert "t" in rebuilt.snapshot()["timers"]

    def test_merge_state_none_is_noop(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.merge_state(None)
        registry.merge_state({})
        assert registry.counter("c").value == 1.0

    def test_labeled_instruments_merge_independently(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", {"solver": "greedy"}).inc(2)
        b.counter("c", {"solver": "greedy"}).inc(3)
        b.counter("c", {"solver": "tacc"}).inc(7)
        merged = a.merge(b)
        assert merged.counter("c", {"solver": "greedy"}).value == 5.0
        assert merged.counter("c", {"solver": "tacc"}).value == 7.0

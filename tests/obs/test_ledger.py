"""Run-ledger tests: record format, runtime switch, summaries."""

from __future__ import annotations

import json
import math

from repro.obs import runtime as obs_runtime
from repro.obs.ledger import (
    LEDGER_FORMAT,
    LEDGER_VERSION,
    NULL_LEDGER,
    RunLedger,
    new_run_id,
    read_ledger,
    render_ledger_summary,
    summarize_ledger,
)


class TestRunLedger:
    def test_first_emit_writes_meta_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path, run_id="r-1") as ledger:
            ledger.emit("run_start", jobs=3)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {
            "type": "meta",
            "format": LEDGER_FORMAT,
            "version": LEDGER_VERSION,
            "run_id": "r-1",
        }
        assert lines[1]["type"] == "event"
        assert lines[1]["event"] == "run_start"
        assert lines[1]["run_id"] == "r-1"
        assert lines[1]["jobs"] == 3
        assert isinstance(lines[1]["t"], float)

    def test_append_keeps_single_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path, run_id="r-1") as ledger:
            ledger.emit("run_start")
        with RunLedger(path, run_id="r-2") as ledger:
            ledger.emit("run_start")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert sum(1 for r in records if r["type"] == "meta") == 1
        assert [r["run_id"] for r in records if r["type"] == "event"] == ["r-1", "r-2"]

    def test_non_finite_fields_stringify(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path, run_id="r") as ledger:
            ledger.emit("job_end", duration_s=math.inf, ratio=math.nan)
        (record,) = read_ledger(path)
        assert record["duration_s"] == "Infinity"
        assert record["ratio"] == "NaN"

    def test_emit_after_close_reopens(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = RunLedger(path, run_id="r")
        ledger.emit("a")
        ledger.close()
        ledger.emit("b")
        ledger.close()
        assert [r["event"] for r in read_ledger(path)] == ["a", "b"]

    def test_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()

    def test_null_ledger_is_silent(self):
        NULL_LEDGER.emit("anything", x=1)  # must not raise or write
        NULL_LEDGER.close()
        assert not NULL_LEDGER.enabled


class TestRuntimeSwitch:
    def test_default_is_null(self):
        assert obs_runtime.ledger() is NULL_LEDGER

    def test_ledgered_swaps_and_restores(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs_runtime.ledgered(path, run_id="r") as ledger:
            assert obs_runtime.ledger() is ledger
            obs_runtime.ledger().emit("inside")
        assert obs_runtime.ledger() is NULL_LEDGER
        assert [r["event"] for r in read_ledger(path)] == ["inside"]

    def test_unledgered_silences_active_ledger(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs_runtime.ledgered(path, run_id="r"):
            with obs_runtime.unledgered():
                obs_runtime.ledger().emit("silenced")
            obs_runtime.ledger().emit("kept")
        assert [r["event"] for r in read_ledger(path)] == ["kept"]

    def test_ledgered_restores_on_exception(self, tmp_path):
        try:
            with obs_runtime.ledgered(tmp_path / "run.jsonl"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs_runtime.ledger() is NULL_LEDGER


class TestSummaries:
    def _records(self):
        return [
            {"type": "event", "event": "run_start", "run_id": "r", "t": 10.0},
            {"type": "event", "event": "job_end", "run_id": "r", "t": 11.5},
            {"type": "event", "event": "job_end", "run_id": "r", "t": 12.0},
        ]

    def test_summarize_counts_and_span(self):
        summary = summarize_ledger(self._records())
        assert summary["events"] == 3
        assert summary["event_counts"] == {"run_start": 1, "job_end": 2}
        assert summary["run_ids"] == ["r"]
        assert summary["wall_s"] == 2.0

    def test_render_contains_counts(self):
        text = render_ledger_summary(self._records())
        assert "job_end" in text
        assert "run_start" in text

    def test_read_ledger_skips_meta_and_blanks(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "format": LEDGER_FORMAT, "version": 1,
                        "run_id": "r"})
            + "\n\n"
            + json.dumps({"type": "event", "event": "x", "run_id": "r", "t": 1.0})
            + "\n"
        )
        assert [r["event"] for r in read_ledger(path)] == ["x"]

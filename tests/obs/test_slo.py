"""Multi-window error-budget burn rates."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.obs.slo import BurnRateMonitor, SLOConfig, summarize_slo

#: tight geometry for tests: 1% budget, 1s fast / 10s slow windows
CONFIG = SLOConfig(
    goodput_target=0.99, deadline_target=0.99,
    fast_window_s=1.0, slow_window_s=10.0,
    fast_burn_threshold=14.0, slow_burn_threshold=6.0,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestConfig:
    def test_validates_targets_and_windows(self):
        with pytest.raises(ValidationError):
            SLOConfig(goodput_target=1.0)
        with pytest.raises(ValidationError):
            SLOConfig(fast_window_s=0.0)
        with pytest.raises(ValidationError):
            SLOConfig(fast_window_s=10.0, slow_window_s=5.0)


class TestBurnRates:
    def test_burn_is_error_rate_over_budget(self):
        clock = FakeClock()
        monitor = BurnRateMonitor(CONFIG, clock=clock)
        for i in range(100):
            monitor.record(ok=(i % 10 != 0))  # 10% errors, 1% budget
        snapshot = monitor.snapshot()
        assert snapshot["goodput"]["fast_burn"] == pytest.approx(10.0)
        assert snapshot["goodput"]["slow_burn"] == pytest.approx(10.0)
        assert snapshot["deadline"]["fast_burn"] == 0.0

    def test_clean_stream_burns_nothing(self):
        monitor = BurnRateMonitor(CONFIG, clock=FakeClock())
        for _ in range(50):
            monitor.record(ok=True)
        snapshot = monitor.snapshot()
        assert snapshot["goodput"]["fast_burn"] == 0.0
        assert snapshot["goodput"]["budget_remaining"] == 1.0
        assert not snapshot["paging"]

    def test_windows_prune_old_events(self):
        clock = FakeClock()
        monitor = BurnRateMonitor(CONFIG, clock=clock)
        for _ in range(10):
            monitor.record(ok=False)  # a burst of failures at t=0
        clock.now = 2.0  # past the 1s fast window, inside the 10s slow one
        monitor.record(ok=True)
        snapshot = monitor.snapshot()
        assert snapshot["goodput"]["fast_burn"] == 0.0
        assert snapshot["goodput"]["slow_burn"] > 0.0
        clock.now = 20.0  # past the slow window too
        monitor.record(ok=True)
        assert monitor.snapshot()["goodput"]["slow_burn"] == 0.0

    def test_lifetime_totals_survive_pruning(self):
        clock = FakeClock()
        monitor = BurnRateMonitor(CONFIG, clock=clock)
        for _ in range(4):
            monitor.record(ok=False)
        clock.now = 100.0
        monitor.record(ok=True)
        snapshot = monitor.snapshot()["goodput"]
        assert snapshot["total"] == 5
        assert snapshot["bad_total"] == 4


class TestPaging:
    def test_a_transient_blip_does_not_page(self):
        # a dense healthy history dilutes the slow window: one failure
        # makes the fast window hot (1 bad / 5 -> 20x >= 14) while the
        # slow window stays cold (1 bad / 41 -> ~2.4x < 6) -> no page
        clock = FakeClock()
        monitor = BurnRateMonitor(CONFIG, clock=clock)
        for t in range(40):
            clock.now = t * 0.25
            monitor.record(ok=True)
        clock.now = 10.0
        monitor.record(ok=False)
        assert monitor.snapshot()["goodput"]["fast_burn"] >= 14.0
        assert not monitor.paging

    def test_pages_when_both_windows_burn(self):
        # sparse history: the same single failure is 1 bad / 9 in the
        # slow window (~11x >= 6) AND hot in the fast window -> page
        clock = FakeClock()
        monitor = BurnRateMonitor(CONFIG, clock=clock)
        for t in range(8):
            clock.now = float(t)
            monitor.record(ok=True)
        clock.now = 9.0
        monitor.record(ok=False)
        assert monitor.paging

    def test_pages_count_rising_edges_not_samples(self):
        clock = FakeClock()
        monitor = BurnRateMonitor(CONFIG, clock=clock)
        for _ in range(20):
            monitor.record(ok=False)  # sustained burn
        assert monitor.paging
        assert monitor.pages_total == 1  # one incident, not twenty pages
        clock.now = 50.0
        for _ in range(10):
            monitor.record(ok=True)  # recovery clears the condition
        assert not monitor.paging
        clock.now = 51.0
        for _ in range(20):
            monitor.record(ok=False)  # second incident
        assert monitor.pages_total == 2

    def test_deadline_objective_can_page_alone(self):
        monitor = BurnRateMonitor(CONFIG, clock=FakeClock())
        for _ in range(20):
            monitor.record(ok=True, deadline_missed=True)
        snapshot = monitor.snapshot()
        assert snapshot["goodput"]["fast_burn"] == 0.0
        assert snapshot["deadline"]["burning"]
        assert monitor.paging


class TestSummarize:
    def test_reports_the_worst_burn_not_the_final_one(self):
        # a burst of failures early, full recovery by the end
        outcomes = [(float(t) * 0.1, t >= 10, False) for t in range(110)]
        summary = summarize_slo(outcomes, CONFIG)
        assert summary["goodput"]["fast_burn"] == 0.0  # recovered
        assert summary["worst_fast_burn"] >= summary["goodput"]["fast_burn"]
        assert summary["worst_fast_burn"] > 50.0
        assert summary["pages_total"] >= 1

    def test_orders_outcomes_by_time(self):
        shuffled = [(2.0, True, False), (0.0, False, False), (1.0, True, False)]
        summary = summarize_slo(shuffled, CONFIG)
        assert summary["goodput"]["total"] == 3
        assert summary["goodput"]["bad_total"] == 1

    def test_deadline_misses_feed_the_worst_burn(self):
        outcomes = [(float(t), True, t == 0) for t in range(3)]
        summary = summarize_slo(outcomes, CONFIG)
        assert summary["worst_fast_burn"] == pytest.approx(100.0)

    def test_empty_stream(self):
        summary = summarize_slo([], CONFIG)
        assert summary["goodput"]["total"] == 0
        assert summary["worst_fast_burn"] == 0.0

"""JSON-lines round trip and Prometheus text-format export."""

from __future__ import annotations

import json
import math

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import (
    collect,
    escape_label_value,
    load_jsonl,
    prometheus_from_collected,
    prometheus_name,
    to_prometheus_text,
    write_jsonl,
)
from repro.obs.tracing import Tracer


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("solver/solves", {"solver": "tacc"}).inc(3)
    registry.gauge("rl/epsilon").set(0.05)
    hist = registry.histogram("sim/queue_wait_s", buckets=[0.01, 0.1])
    for value in (0.005, 0.05, 0.5):
        hist.observe(value)
    registry.timer("solver/runtime_s").observe(1.25)
    return registry


class TestJsonl:
    def test_round_trip(self, tmp_path):
        registry = _populated_registry()
        tracer = Tracer()
        with tracer.span("solve/tacc"):
            with tracer.span("rl/train"):
                pass
        path = write_jsonl(tmp_path / "run.jsonl", registry, tracer)
        data = load_jsonl(path)
        metrics = data["metrics"]
        assert metrics["counters"]["solver/solves{solver=tacc}"] == 3
        assert metrics["gauges"]["rl/epsilon"] == 0.05
        wait = metrics["histograms"]["sim/queue_wait_s"]
        assert wait["count"] == 3
        assert wait["buckets"][-1][0] == math.inf
        assert data["spans"][0]["name"] == "solve/tacc"
        assert data["spans"][0]["children"][0]["name"] == "rl/train"

    def test_every_line_is_valid_json(self, tmp_path):
        path = write_jsonl(tmp_path / "run.jsonl", _populated_registry())
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert {r["type"] for r in records[1:]} <= {"counter", "gauge", "histogram", "timer"}

    def test_collect_matches_loaded_shape(self, tmp_path):
        registry = _populated_registry()
        live = collect(registry)
        loaded = load_jsonl(write_jsonl(tmp_path / "run.jsonl", registry))
        assert live["metrics"]["counters"] == loaded["metrics"]["counters"]
        assert live["metrics"]["gauges"] == loaded["metrics"]["gauges"]

    def test_non_finite_values_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("m/inf").inc(math.inf)
        registry.gauge("m/nan").set(math.nan)
        registry.gauge("m/neg").set(-math.inf)
        loaded = load_jsonl(write_jsonl(tmp_path / "run.jsonl", registry))
        metrics = loaded["metrics"]
        assert math.isinf(metrics["counters"]["m/inf"])
        assert metrics["counters"]["m/inf"] > 0
        assert math.isnan(metrics["gauges"]["m/nan"])
        assert metrics["gauges"]["m/neg"] == -math.inf
        # downstream consumers keep working on the revived floats
        assert "repro_m_inf_total +Inf" in prometheus_from_collected(loaded)


class TestPrometheus:
    def test_name_sanitization(self):
        assert prometheus_name("sim/queue_wait_s") == "repro_sim_queue_wait_s"
        assert prometheus_name("solver/solves", "_total") == "repro_solver_solves_total"

    def test_label_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escaped_labels_in_output(self):
        registry = MetricsRegistry()
        registry.counter("c", {"k": 'quo"te\nnew\\line'}).inc()
        text = to_prometheus_text(registry)
        assert 'k="quo\\"te\\nnew\\\\line"' in text
        assert "\n\n" not in text  # the raw newline never leaks into a line

    def test_counter_gauge_lines(self):
        text = to_prometheus_text(_populated_registry())
        assert "# TYPE repro_solver_solves_total counter" in text
        assert 'repro_solver_solves_total{solver="tacc"} 3.0' in text
        assert "# TYPE repro_rl_epsilon gauge" in text
        assert "repro_rl_epsilon 0.05" in text

    def test_histogram_triple_with_inf_bucket(self):
        text = to_prometheus_text(_populated_registry())
        assert 'repro_sim_queue_wait_s_bucket{le="0.01"} 1' in text
        assert 'repro_sim_queue_wait_s_bucket{le="0.1"} 2' in text
        assert 'repro_sim_queue_wait_s_bucket{le="+Inf"} 3' in text
        assert "repro_sim_queue_wait_s_count 3" in text

    def test_from_collected_matches_live_export(self, tmp_path):
        registry = _populated_registry()
        live = to_prometheus_text(registry)
        loaded = prometheus_from_collected(
            load_jsonl(write_jsonl(tmp_path / "run.jsonl", registry))
        )
        assert sorted(live.splitlines()) == sorted(loaded.splitlines())

"""Cross-process tracing: contexts, sampling, sinks, stitching."""

from __future__ import annotations

import json

import pytest

from repro.errors import SerializationError, ValidationError
from repro.obs import runtime as obs_runtime
from repro.obs.trace import (
    SPAN_FILE_PREFIX,
    NullSpanRecorder,
    SpanRecord,
    SpanRecorder,
    SpanSink,
    TraceContext,
    TraceSampler,
    build_trace,
    context_from_wire,
    critical_path,
    load_span_file,
    load_trace_dir,
    new_trace_id,
    render_critical_path,
    render_waterfall,
    trace_ids,
)


def make_recorder(tmp_path, process="test", **sampler_kwargs):
    sink = SpanSink(tmp_path / f"{SPAN_FILE_PREFIX}{process}.jsonl", process)
    return SpanRecorder(sink, process, TraceSampler(**sampler_kwargs))


class TestTraceContext:
    def test_round_trip(self):
        context = TraceContext(trace_id="t1", span_id="p:3", sampled=False)
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_wire_form_omits_defaults(self):
        assert TraceContext(trace_id="t1").to_dict() == {"trace_id": "t1"}
        assert TraceContext(trace_id="t1", sampled=False).to_dict() == {
            "trace_id": "t1", "sampled": False,
        }

    def test_from_dict_rejects_junk(self):
        with pytest.raises(SerializationError):
            TraceContext.from_dict({"span_id": "p:1"})

    def test_context_from_wire_is_lenient(self):
        assert context_from_wire(None) is None
        assert context_from_wire({}) is None
        assert context_from_wire({"span_id": "p:1"}) is None
        parsed = context_from_wire({"trace_id": "t1", "span_id": "p:2"})
        assert parsed == TraceContext(trace_id="t1", span_id="p:2")


class TestSampling:
    def test_trace_ids_are_deterministic(self):
        assert new_trace_id(7, 3) == new_trace_id(7, 3)
        assert new_trace_id(7, 3) != new_trace_id(7, 4)
        assert new_trace_id(8, 3) != new_trace_id(7, 3)
        assert len(new_trace_id(0, 0)) == 16

    def test_sampler_is_a_pure_function_of_the_id(self):
        a = TraceSampler(rate=0.5, seed=3)
        b = TraceSampler(rate=0.5, seed=3)
        ids = [new_trace_id(0, n) for n in range(200)]
        assert [a.sampled(t) for t in ids] == [b.sampled(t) for t in ids]

    def test_rate_extremes(self):
        always = TraceSampler(rate=1.0)
        never = TraceSampler(rate=0.0)
        for n in range(20):
            trace_id = new_trace_id(0, n)
            assert always.sampled(trace_id)
            assert not never.sampled(trace_id)

    def test_partial_rate_hits_roughly_the_target(self):
        sampler = TraceSampler(rate=0.3, seed=1)
        hits = sum(sampler.sampled(new_trace_id(0, n)) for n in range(1000))
        assert 200 < hits < 400

    def test_rate_is_validated(self):
        with pytest.raises(ValidationError):
            TraceSampler(rate=1.5)


class TestSpanSink:
    def test_emit_and_load_round_trip(self, tmp_path):
        path = tmp_path / "spans-a.jsonl"
        sink = SpanSink(path, "a")
        record = SpanRecord(
            trace_id="t1", span_id="a:1", parent_id="c:9",
            name="serve/request", process="a", start_ms=100.0,
            duration_ms=2.5, events=[{"name": "dequeued", "t_ms": 1.0}],
            attributes={"op": "assign"},
        )
        sink.emit(record)
        sink.close()
        (loaded,) = load_span_file(path)
        assert loaded == record

    def test_header_line_is_stamped_once_and_skipped(self, tmp_path):
        path = tmp_path / "spans-a.jsonl"
        for _ in range(2):
            sink = SpanSink(path, "a")
            sink.emit(SpanRecord(
                trace_id="t1", span_id="a:1", parent_id="",
                name="x", process="a", start_ms=0.0,
            ))
            sink.close()
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["format"] == "repro-trace"
        assert len(lines) == 3  # one header + two spans
        assert len(load_span_file(path)) == 2

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "spans-a.jsonl"
        sink = SpanSink(path, "a")
        sink.emit(SpanRecord(
            trace_id="t1", span_id="a:1", parent_id="",
            name="x", process="a", start_ms=0.0,
        ))
        sink.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"trace_id": "t1", "span')  # SIGKILL mid-append
        assert len(load_span_file(path)) == 1

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "spans-a.jsonl"
        path.write_text('not json\n{"trace_id": "t"}\n')
        with pytest.raises(SerializationError, match="line 1"):
            load_span_file(path)

    def test_load_trace_dir_merges_per_process_files(self, tmp_path):
        for process in ("a", "b"):
            sink = SpanSink(
                tmp_path / f"{SPAN_FILE_PREFIX}{process}.jsonl", process
            )
            sink.emit(SpanRecord(
                trace_id="t1", span_id=f"{process}:1", parent_id="",
                name="x", process=process, start_ms=0.0,
            ))
            sink.close()
        records = load_trace_dir(tmp_path)
        assert {r.process for r in records} == {"a", "b"}

    def test_load_trace_dir_rejects_non_directories(self, tmp_path):
        with pytest.raises(ValidationError):
            load_trace_dir(tmp_path / "missing")


class TestSpanRecorder:
    def test_with_bound_span_exports_on_exit(self, tmp_path):
        recorder = make_recorder(tmp_path)
        context = recorder.new_context("t1")
        with recorder.start_span("serve/request", context, op="assign") as span:
            span.event("dequeued", batch=3)
            span.annotate(device=7)
        recorder.close()
        (record,) = load_span_file(recorder.sink.path)
        assert record.name == "serve/request"
        assert record.span_id == "test:1"
        assert record.parent_id == ""
        assert record.status == "ok"
        assert record.attributes == {"op": "assign", "device": 7}
        assert record.events[0]["name"] == "dequeued"
        assert record.events[0]["batch"] == 3
        assert recorder.spans_exported == 1

    def test_child_span_links_to_parent(self, tmp_path):
        recorder = make_recorder(tmp_path)
        context = recorder.new_context("t1")
        with recorder.start_span("router/route", context) as parent:
            with recorder.start_span("router/forward", parent.context) as child:
                assert child.span_id == "test:2"
        recorder.close()
        records = load_span_file(recorder.sink.path)
        by_name = {r.name: r for r in records}
        assert by_name["router/forward"].parent_id == by_name["router/route"].span_id

    def test_exception_sets_error_status(self, tmp_path):
        recorder = make_recorder(tmp_path)
        context = recorder.new_context("t1")
        with pytest.raises(RuntimeError):
            with recorder.start_span("serve/request", context):
                raise RuntimeError("boom")
        recorder.close()
        (record,) = load_span_file(recorder.sink.path)
        assert record.status == "error:RuntimeError"

    def test_unsampled_context_gets_the_null_span(self, tmp_path):
        recorder = make_recorder(tmp_path, rate=0.0)
        context = recorder.new_context("t1")
        assert not context.sampled
        with recorder.start_span("serve/request", context) as span:
            span.event("never recorded")
        assert recorder.spans_exported == 0
        assert recorder.traces_started == 0

    def test_current_span_follows_nesting(self, tmp_path):
        recorder = make_recorder(tmp_path)
        context = recorder.new_context("t1")
        assert recorder.current().span_id == ""
        with recorder.start_span("outer", context) as outer:
            assert recorder.current() is outer
            with recorder.start_span("inner", outer.context) as inner:
                assert recorder.current() is inner
                recorder.event("hit", rule="drop")
            assert recorder.current() is outer
        assert recorder.current().span_id == ""
        recorder.close()
        by_name = {r.name: r for r in load_span_file(recorder.sink.path)}
        assert by_name["inner"].events[0]["rule"] == "drop"

    def test_manual_span_finish_is_idempotent(self, tmp_path):
        recorder = make_recorder(tmp_path)
        context = recorder.new_context("t1")
        span = recorder.start_manual("client/request", context, op="assign")
        span.annotate(status="ok")
        span.finish()
        span.finish("error")  # second call must not re-export or restamp
        recorder.close()
        (record,) = load_span_file(recorder.sink.path)
        assert record.status == "ok"
        assert recorder.spans_exported == 1

    def test_null_recorder_is_inert(self):
        recorder = NullSpanRecorder()
        assert not recorder.enabled
        assert recorder.new_context("t1") is None
        with recorder.start_span("x", None) as span:
            span.event("nothing")
        recorder.start_manual("x", None).finish()
        recorder.close()

    def test_runtime_traced_scopes_the_global(self, tmp_path):
        assert not obs_runtime.is_tracing()
        with obs_runtime.traced(tmp_path, "client") as recorder:
            assert obs_runtime.is_tracing()
            assert obs_runtime.spans() is recorder
            context = recorder.new_context("t1")
            with recorder.start_span("client/request", context):
                pass
        assert not obs_runtime.is_tracing()
        (record,) = load_trace_dir(tmp_path)
        assert record.process == "client"


def span(trace_id, span_id, parent_id, name, start_ms, duration_ms,
         process="p", status="ok"):
    return SpanRecord(
        trace_id=trace_id, span_id=span_id, parent_id=parent_id,
        name=name, process=process, start_ms=start_ms,
        duration_ms=duration_ms, status=status,
    )


class TestStitching:
    def chain(self):
        return [
            span("t1", "c:1", "", "client/request", 0.0, 100.0, "client"),
            span("t1", "r:1", "c:1", "router/route", 10.0, 80.0, "router"),
            span("t1", "s:1", "r:1", "serve/request", 20.0, 40.0, "shard-0"),
        ]

    def test_build_trace_stitches_across_processes(self):
        roots, orphans = build_trace(self.chain(), "t1")
        assert orphans == []
        (root,) = roots
        assert root.record.name == "client/request"
        (child,) = root.children
        assert child.record.name == "router/route"
        (grandchild,) = child.children
        assert grandchild.record.name == "serve/request"

    def test_unresolved_parent_becomes_root_and_orphan(self):
        records = self.chain()[::2]  # drop the router span file
        roots, orphans = build_trace(records, "t1")
        assert [r.record.name for r in roots] == [
            "client/request", "serve/request",
        ]
        assert [o.name for o in orphans] == ["serve/request"]

    def test_build_trace_filters_by_trace_id(self):
        records = self.chain() + [
            span("t2", "c:9", "", "client/request", 5.0, 1.0)
        ]
        roots, _ = build_trace(records, "t2")
        assert len(roots) == 1 and roots[0].record.span_id == "c:9"

    def test_trace_ids_ordered_by_first_span_start(self):
        records = [
            span("late", "a:1", "", "x", 50.0, 1.0),
            span("early", "a:2", "", "x", 1.0, 1.0),
            span("late", "a:3", "", "x", 0.5, 1.0),  # re-dates "late"
        ]
        assert trace_ids(records) == ["late", "early"]

    def test_render_waterfall_shows_every_span(self):
        roots, _ = build_trace(self.chain(), "t1")
        text = render_waterfall(roots)
        assert "3 spans" in text
        for name in ("client/request", "router/route", "serve/request"):
            assert name in text
        assert render_waterfall([]) == "(no spans)"

    def test_critical_path_telescopes_to_the_root_duration(self):
        roots, _ = build_trace(self.chain(), "t1")
        segments, attributed = critical_path(roots[0])
        assert [s.name for s in segments] == [
            "client/request", "router/route", "serve/request",
        ]
        assert [s.self_ms for s in segments] == [20.0, 40.0, 40.0]
        assert attributed == pytest.approx(100.0)
        text = render_critical_path(roots[0])
        assert text.endswith(
            "attributed 100.0% of end-to-end latency to 3 named spans"
        )

    def test_critical_path_follows_the_latest_finishing_child(self):
        records = [
            span("t1", "r:1", "", "router/route", 0.0, 100.0),
            span("t1", "h:1", "r:1", "hedge-a", 10.0, 20.0),
            span("t1", "h:2", "r:1", "hedge-b", 15.0, 80.0),
        ]
        roots, _ = build_trace(records, "t1")
        segments, _ = critical_path(roots[0])
        assert [s.name for s in segments] == ["router/route", "hedge-b"]

    def test_skewed_child_is_clipped_to_the_parent_interval(self):
        records = [
            span("t1", "r:1", "", "router/route", 0.0, 50.0),
            # clock skew: the child claims to end after its parent
            span("t1", "s:1", "r:1", "serve/request", 40.0, 60.0),
        ]
        roots, _ = build_trace(records, "t1")
        segments, attributed = critical_path(roots[0])
        # child contributes only its overlap (10ms), never more than elapsed
        assert segments[0].self_ms == pytest.approx(40.0)
        assert attributed <= 50.0 + 60.0

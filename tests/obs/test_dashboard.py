"""Dashboard rendering from collected and loaded data."""

from __future__ import annotations

from repro.obs.dashboard import render_dashboard, render_span_tree
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import collect
from repro.obs.tracing import Tracer


class TestRenderSpanTree:
    def test_indents_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        text = render_span_tree([span.as_dict() for span in tracer.roots])
        lines = text.splitlines()
        root_line = next(line for line in lines if "root" in line)
        child_line = next(line for line in lines if "child" in line)
        assert root_line.startswith("root")
        assert child_line.startswith("  child")

    def test_error_status_visible(self):
        tree = {"name": "x", "duration_s": 0.5, "status": "error:ValueError"}
        assert "error:ValueError" in render_span_tree([tree])


class TestRenderDashboard:
    def test_empty_data_says_so(self):
        assert "no observability data" in render_dashboard({"metrics": {}, "spans": []})

    def test_all_sections_render(self):
        registry = MetricsRegistry()
        registry.counter("rl/episodes", {"solver": "tacc"}).inc(40)
        registry.gauge("rl/epsilon").set(0.05)
        hist = registry.histogram("sim/queue_wait_s")
        for i in range(50):
            hist.observe(i / 1000.0)
        tracer = Tracer()
        with tracer.span("solve/tacc"):
            pass
        text = render_dashboard(collect(registry, tracer))
        assert "## spans" in text
        assert "solve/tacc" in text
        assert "## counters" in text
        assert "rl/episodes{solver=tacc}" in text
        assert "## gauges" in text
        assert "## distributions" in text
        assert "sim/queue_wait_s" in text

    def test_busiest_distribution_gets_a_chart(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sim/queue_wait_s")
        for i in range(1, 200):
            hist.observe(i / 100.0)
        text = render_dashboard(collect(registry))
        assert "distribution: sim/queue_wait_s" in text

    def test_serve_section_renders(self):
        registry = MetricsRegistry()
        registry.counter("serve/requests", {"op": "assign"}).inc(90)
        registry.counter("serve/requests", {"op": "release"}).inc(10)
        registry.counter("serve/admitted", {"priority": "normal"}).inc(75)
        registry.counter(
            "serve/rejected", {"priority": "low", "reason": "watermark"}
        ).inc(25)
        registry.counter("serve/batch_flushes", {"reason": "size"}).inc(3)
        registry.counter("serve/batch_flushes", {"reason": "deadline"}).inc(2)
        registry.counter("serve/reopt_runs", {"outcome": "swapped"}).inc()
        registry.gauge("serve/queue_depth").set(4)
        registry.gauge("serve/reopt_gain_ms").set(12.5)
        registry.histogram("serve/batch_size").observe(16)
        registry.timer("serve/assign_latency_s").observe(0.002)
        text = render_dashboard(collect(registry))
        assert "## serve" in text
        assert "100" in text  # requests summed across op labels
        assert "25.0%" in text  # rejection ratio
        assert "size=3 deadline=2" in text or "deadline=2 size=3" in text
        assert "swapped=1" in text
        assert "12.5" in text

    def test_serve_section_covers_deadline_and_retry_families(self):
        registry = MetricsRegistry()
        registry.counter("serve/requests", {"op": "assign"}).inc(50)
        registry.counter("serve/deadline_exceeded").inc(4)
        registry.counter("serve/client_retries").inc(9)
        registry.counter("serve/retry_budget_exhausted").inc(2)
        text = render_dashboard(collect(registry))
        assert "deadline exceeded" in text
        assert "client retries" in text
        assert "retry budget exhausted" in text

    def test_trace_and_slo_sections_render(self):
        registry = MetricsRegistry()
        registry.counter("trace/traces_sampled").inc(12)
        registry.counter("trace/spans_exported").inc(48)
        registry.gauge("slo/fast_burn_rate").set(14.5)
        registry.gauge("slo/slow_burn_rate").set(6.25)
        registry.counter("slo/pages").inc(1)
        text = render_dashboard(collect(registry))
        assert "## trace" in text
        assert "traces sampled" in text
        assert "spans exported" in text
        assert "## slo" in text
        assert "14.50x" in text
        assert "6.25x" in text
        assert "pages fired" in text

    def test_trace_and_slo_sections_absent_without_metrics(self):
        registry = MetricsRegistry()
        registry.counter("serve/requests").inc()
        text = render_dashboard(collect(registry))
        assert "## trace" not in text
        assert "## slo" not in text

    def test_shard_section_renders(self):
        registry = MetricsRegistry()
        registry.counter("shard/routed", {"shard": "shard-0", "op": "assign"}).inc(60)
        registry.counter("shard/routed", {"shard": "shard-1", "op": "assign"}).inc(40)
        registry.counter("shard/spillovers").inc(5)
        registry.counter("shard/unroutable").inc(1)
        registry.counter("shard/migrated_devices").inc(8)
        registry.counter("shard/breaker_trips", {"shard": "shard-0"}).inc(2)
        registry.counter("shard/migration_rounds", {"outcome": "moved"}).inc(3)
        registry.gauge("shard/active_devices").set(17)
        registry.timer("shard/route_latency_s").observe(0.001)
        text = render_dashboard(collect(registry))
        assert "## shard" in text
        assert "100" in text  # routed summed across shards and ops
        assert "spillovers" in text
        assert "shard-0=2" in text
        assert "moved=3" in text
        assert "17" in text

    def test_shard_section_absent_without_shard_metrics(self):
        registry = MetricsRegistry()
        registry.counter("serve/requests").inc()
        assert "## shard" not in render_dashboard(collect(registry))

    def test_serve_section_absent_without_serve_metrics(self):
        registry = MetricsRegistry()
        registry.counter("engine/jobs_scheduled").inc()
        assert "## serve" not in render_dashboard(collect(registry))

    def test_sections_without_data_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter("only/counter").inc()
        text = render_dashboard(collect(registry))
        assert "## counters" in text
        assert "## gauges" not in text
        assert "## spans" not in text

"""Validation of the shipped benchmark artifacts.

The repository ships the full-scale result JSONs in
``benchmarks/results/full/`` (the data behind EXPERIMENTS.md).  These tests
check that every shipped artifact is structurally sound and that the
headline reproduction claims hold *in the shipped data* — so a stale
or corrupted artifact set fails CI rather than silently shipping a
wrong EXPERIMENTS.md.

All tests skip when the results directory is absent (fresh clones
before the first benchmark run).
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest

from repro.experiments.harness import ResultTable
from repro.experiments.report import EXPERIMENTS, render_report

RESULTS_DIR = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "results" / "full"
)

requires_results = pytest.mark.skipif(
    not RESULTS_DIR.exists() or not any(RESULTS_DIR.glob("*.json")),
    reason="benchmark results not generated yet",
)


def load(name: str) -> ResultTable:
    path = RESULTS_DIR / f"{name}.json"
    if not path.exists():
        pytest.skip(f"{name} not generated yet")
    return ResultTable.load_json(path)


@requires_results
class TestArtifactsStructure:
    def test_every_artifact_loads_and_is_nonempty(self):
        for path in RESULTS_DIR.glob("*.json"):
            table = ResultTable.load_json(path)
            assert len(table) > 0, path.name
            assert table.columns, path.name

    def test_every_artifact_has_report_metadata(self):
        for path in RESULTS_DIR.glob("*.json"):
            assert path.stem in EXPERIMENTS, path.name

    def test_report_renders_from_shipped_data(self):
        body = render_report(RESULTS_DIR)
        assert "Missing results" not in body
        for meta in EXPERIMENTS.values():
            assert f"## {meta.experiment_id}" in body

    def test_no_all_nan_value_columns(self):
        for path in RESULTS_DIR.glob("*.json"):
            table = ResultTable.load_json(path)
            for column in table.columns:
                values = table.column(column)
                numeric = [v for v in values if isinstance(v, (int, float))]
                if not numeric:
                    continue
                assert any(
                    not (isinstance(v, float) and math.isnan(v)) for v in numeric
                ), f"{path.name}:{column} is entirely NaN"


@requires_results
class TestShippedClaims:
    def test_t1_tacc_near_optimal(self):
        table = load("t1_optimality_gap")
        gaps = [
            r["gap_pct_mean"]
            for r in table.rows
            if r["solver"] == "tacc" and not math.isnan(r["gap_pct_mean"])
        ]
        assert gaps
        assert sum(gaps) / len(gaps) < 10.0

    def test_t1_tacc_beats_plain_qlearning(self):
        table = load("t1_optimality_gap")

        def mean_gap(solver):
            values = [
                r["gap_pct_mean"]
                for r in table.rows
                if r["solver"] == solver and not math.isnan(r["gap_pct_mean"])
            ]
            return sum(values) / len(values)

        assert mean_gap("tacc") < mean_gap("qlearning")

    def test_f4_no_overload_guarantee(self):
        table = load("f4_load_balance")
        rows = {r["solver"]: r for r in table.rows}
        assert rows["tacc"]["overloaded_servers_mean"] == 0.0
        assert rows["nearest"]["max_utilization_mean"] > 1.0

    def test_f8_static_drifts_controllers_hold(self):
        table = load("f8_dynamic")
        last = max(r["epoch"] for r in table.rows)
        final = {r["strategy"]: r for r in table.rows if r["epoch"] == last}
        first = {r["strategy"]: r for r in table.rows if r["epoch"] == 0}
        static_drift = final["static"]["cost_ms_mean"] / first["static"]["cost_ms_mean"]
        always_drift = final["always"]["cost_ms_mean"] / first["always"]["cost_ms_mean"]
        assert static_drift > always_drift

    def test_f7_tacc_near_lp_on_every_family(self):
        table = load("f7_topology_sensitivity")
        for row in table.rows:
            if row["solver"] == "tacc":
                assert row["cost_over_lp_mean"] < 1.2, row["family"]

    def test_x4_regret_monotone_in_noise(self):
        table = load("x4_noise")
        probes = min(r["probes"] for r in table.rows)
        series = sorted(
            (r["jitter_sigma"], r["regret_pct_mean"])
            for r in table.rows
            if r["solver"] == "tacc" and r["probes"] == probes
        )
        assert series[-1][1] >= series[0][1]

    def test_x5_reactive_availability_wins(self):
        table = load("x5_faults")

        def availability(policy):
            rows = [r for r in table.rows if r["policy"] == policy and r["epoch"] > 0]
            return sum(r["serving_fraction_mean"] for r in rows) / len(rows)

        assert availability("reactive") >= availability("static")

    def test_x6_failover_recovers_crash_goodput(self):
        table = load("x6_chaos")
        rows = {r["policy"]: r for r in table.rows}
        # the acceptance bar of the fault-injection subsystem: failover
        # holds >= 95% goodput through the crash window, no-retry does not
        assert rows["failover"]["crash_goodput_mean"] >= 0.95
        assert rows["none"]["crash_goodput_mean"] < 0.95
        assert rows["failover"]["tasks_lost_mean"] <= rows["none"]["tasks_lost_mean"]

"""Tests for the experiment harness."""

from __future__ import annotations

import math
import time

import pytest

from repro.errors import ValidationError
from repro.experiments.harness import (
    ResultTable,
    normalized_cost,
    run_solver_field,
    run_sweep,
    sweep_seeds,
)
from repro.solvers.base import SolverResult


class TestResultTable:
    def make(self):
        table = ResultTable(["solver", "n", "cost"], title="demo")
        table.add_row(solver="a", n=10, cost=1.0)
        table.add_row(solver="a", n=10, cost=3.0)
        table.add_row(solver="b", n=10, cost=2.0)
        return table

    def test_add_row_checks_columns(self):
        table = ResultTable(["a"])
        with pytest.raises(ValidationError):
            table.add_row(b=1)
        with pytest.raises(ValidationError):
            table.add_row(a=1, b=2)

    def test_column_extraction(self):
        table = self.make()
        assert table.column("cost") == [1.0, 3.0, 2.0]

    def test_filtered(self):
        table = self.make()
        assert len(table.filtered(solver="a")) == 2
        assert len(table.filtered(solver="a", n=11)) == 0

    def test_aggregate_means(self):
        table = self.make()
        agg = table.aggregate(["solver"], ["cost"])
        row_a = agg.filtered(solver="a").rows[0]
        assert row_a["cost_mean"] == pytest.approx(2.0)
        assert row_a["cost_ci"] > 0
        row_b = agg.filtered(solver="b").rows[0]
        assert row_b["cost_ci"] == 0.0

    def test_aggregate_skips_nan(self):
        table = ResultTable(["solver", "cost"])
        table.add_row(solver="a", cost=1.0)
        table.add_row(solver="a", cost=math.nan)
        agg = table.aggregate(["solver"], ["cost"])
        assert agg.rows[0]["cost_mean"] == pytest.approx(1.0)

    def test_aggregate_all_nan_group_is_nan(self):
        table = ResultTable(["solver", "cost"])
        table.add_row(solver="a", cost=math.nan)
        agg = table.aggregate(["solver"], ["cost"])
        assert math.isnan(agg.rows[0]["cost_mean"])

    def test_aggregate_preserves_first_seen_order(self):
        table = self.make()
        agg = table.aggregate(["solver"], ["cost"])
        assert [r["solver"] for r in agg.rows] == ["a", "b"]

    def test_render_text_and_markdown(self):
        table = self.make()
        assert "demo" in table.to_text()
        assert table.to_markdown().startswith("| solver")

    def test_json_roundtrip(self, tmp_path):
        table = self.make()
        path = tmp_path / "table.json"
        table.save_json(path)
        loaded = ResultTable.load_json(path)
        assert loaded.columns == table.columns
        assert loaded.rows == table.rows
        assert loaded.title == "demo"

    def test_save_json_is_atomic(self, tmp_path):
        table = self.make()
        path = tmp_path / "table.json"
        table.save_json(path)
        table.save_json(path)  # overwrite in place
        assert ResultTable.load_json(path).rows == table.rows
        # no temp-file droppings next to the table
        assert [p.name for p in tmp_path.iterdir()] == ["table.json"]

    def test_aggregate_scales_linearly(self):
        """A few thousand rows group in one pass, order-stable."""
        table = ResultTable(["solver", "n", "cost"])
        groups = [(f"s{i % 40}", ((i // 40) % 25) * 10) for i in range(5000)]
        for index, (solver, n) in enumerate(groups):
            table.add_row(solver=solver, n=n, cost=float(index % 17))
        started = time.perf_counter()
        agg = table.aggregate(["solver", "n"], ["cost"])
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0  # the old per-key rescan took quadratic time
        assert len(agg) == 1000  # 40 solvers x 25 sizes
        # first-seen order: the first few groups come straight from row order
        seen_in_rows = list(dict.fromkeys(groups))
        assert [(r["solver"], r["n"]) for r in agg.rows] == seen_in_rows


class TestSweepSeeds:
    def test_distinct_and_reproducible(self):
        seeds = sweep_seeds(7, 5, "t1", "10x3")
        assert len(set(seeds)) == 5
        assert seeds == sweep_seeds(7, 5, "t1", "10x3")

    def test_labels_differentiate(self):
        assert sweep_seeds(7, 3, "a") != sweep_seeds(7, 3, "b")


class TestRunSolverField:
    def test_runs_all_named_solvers(self, small_problem):
        results = run_solver_field(small_problem, ["greedy", "random"], seed=1)
        assert set(results) == {"greedy", "random"}
        assert all(r.assignment.is_complete for r in results.values())

    def test_solver_kwargs_forwarded(self, small_problem):
        results = run_solver_field(
            small_problem,
            ["tacc"],
            seed=1,
            solver_kwargs={"tacc": {"episodes": 15}},
        )
        assert results["tacc"].iterations == 15

    def test_seeding_is_per_solver_deterministic(self, small_problem):
        a = run_solver_field(small_problem, ["random"], seed=5)
        b = run_solver_field(small_problem, ["random"], seed=5)
        assert a["random"].assignment == b["random"].assignment

    def test_caller_kwargs_never_mutated(self, small_problem):
        """The per-solver kwargs are deep-copied before seeding."""
        kwargs = {"tacc": {"episodes": 15}}
        run_solver_field(small_problem, ["tacc"], seed=1, solver_kwargs=kwargs)
        run_solver_field(small_problem, ["tacc"], seed=2, solver_kwargs=kwargs)
        assert kwargs == {"tacc": {"episodes": 15}}  # no injected "seed" key


class TestRunSweep:
    def make_specs(self, n=3):
        from repro.engine import JobSpec

        return [
            JobSpec(
                experiment="syn",
                fn="repro.engine.synthetic:cpu_cell",
                params={"iterations": 200, "cell": i},
                seed=i,
            )
            for i in range(n)
        ]

    def test_collects_rows_in_spec_order(self):
        table = run_sweep(self.make_specs(), ["cell", "seed", "value"], title="syn")
        assert table.title == "syn"
        assert table.column("cell") == [0, 1, 2]

    def test_engine_options_forwarded(self, tmp_path):
        from repro.engine import EngineOptions

        options = EngineOptions(jobs=2, cache_dir=tmp_path / "cache")
        first = run_sweep(self.make_specs(), ["cell", "seed", "value"], engine=options)
        again = EngineOptions(jobs=2, cache_dir=tmp_path / "cache")
        second = run_sweep(self.make_specs(), ["cell", "seed", "value"], engine=again)
        assert first.rows == second.rows
        assert again.last_report.cache.hits == 3


class TestNormalizedCost:
    def test_ratio(self, small_problem):
        result = run_solver_field(small_problem, ["greedy"], seed=1)["greedy"]
        assert normalized_cost(result, result.objective_value) == pytest.approx(1.0)

    def test_nan_for_infeasible_reference(self, small_problem):
        result = run_solver_field(small_problem, ["greedy"], seed=1)["greedy"]
        assert math.isnan(normalized_cost(result, 0.0))

"""Tests for the EXPERIMENTS.md report generator."""

from __future__ import annotations

import math

import pytest

from repro.experiments.harness import ResultTable
from repro.experiments.report import (
    EXPERIMENTS,
    render_report,
    render_section,
)


def t1_table():
    table = ResultTable(
        ["size", "klass", "solver", "gap_pct_mean", "gap_pct_ci"], title="T1"
    )
    for solver, gap in (("tacc", 2.0), ("greedy", 8.0), ("random", 60.0)):
        table.add_row(size="10x3", klass="c", solver=solver,
                      gap_pct_mean=gap, gap_pct_ci=0.5)
    return table


class TestRenderSection:
    def test_contains_expected_and_measured(self):
        section = render_section("t1_optimality_gap", t1_table())
        assert section.startswith("## T1")
        assert "Expected shape" in section
        assert "| size |" in section
        assert "Observations" in section

    def test_t1_observation_verdict(self):
        section = render_section("t1_optimality_gap", t1_table())
        assert "holds" in section
        assert "2.00%" in section

    def test_t1_failed_verdict_when_gap_large(self):
        table = ResultTable(
            ["size", "klass", "solver", "gap_pct_mean", "gap_pct_ci"], title="T1"
        )
        table.add_row(size="10x3", klass="c", solver="tacc",
                      gap_pct_mean=35.0, gap_pct_ci=1.0)
        table.add_row(size="10x3", klass="c", solver="greedy",
                      gap_pct_mean=40.0, gap_pct_ci=1.0)
        table.add_row(size="10x3", klass="c", solver="random",
                      gap_pct_mean=80.0, gap_pct_ci=1.0)
        section = render_section("t1_optimality_gap", table)
        assert "does not hold" in section

    def test_observation_failure_does_not_crash(self):
        # f4's observer indexes rows by solver name; a table without the
        # expected solvers triggers a KeyError, which must be reported
        # inline rather than aborting the whole report
        broken = ResultTable(
            ["solver", "max_utilization_mean", "overloaded_servers_mean"],
            title="F4",
        )
        broken.add_row(solver="somebody_else", max_utilization_mean=1.0,
                       overloaded_servers_mean=0.0)
        section = render_section("f4_load_balance", broken)
        assert "observation extraction failed" in section

    def test_empty_table_renders_na_observations(self):
        empty = ResultTable(["solver", "gap_pct_mean"], title="T1")
        section = render_section("t1_optimality_gap", empty)
        assert "n/a" in section

    def test_every_experiment_has_metadata(self):
        # 10 paper artifacts + X1-X6 extensions + G1 obs / G2 engine /
        # G3 serving / G4 sharding / G5 gray-failure / G6 contention guards
        assert len(EXPERIMENTS) == 22
        for meta in EXPERIMENTS.values():
            assert meta.expected
            assert callable(meta.observe)


class TestRenderReport:
    def test_missing_results_listed(self, tmp_path):
        body = render_report(tmp_path)
        assert "Missing results" in body
        assert "t1_optimality_gap" in body

    def test_present_results_rendered(self, tmp_path):
        t1_table().save_json(tmp_path / "t1_optimality_gap.json")
        body = render_report(tmp_path)
        assert "## T1" in body
        assert "t1_optimality_gap" not in body.split("Missing results")[1].split(
            "f2"
        )[0] or True  # t1 no longer missing
        assert "f2_delay_vs_devices" in body  # still missing

    def test_scale_note_embedded(self, tmp_path):
        body = render_report(tmp_path, scale_note="Scale: full, seed 0.")
        assert "Scale: full, seed 0." in body

    def test_header_mentions_reconstruction(self, tmp_path):
        body = render_report(tmp_path)
        assert "abstract" in body
        assert "reconstruction" in body

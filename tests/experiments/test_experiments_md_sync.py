"""Guard: the committed EXPERIMENTS.md matches the shipped result data.

EXPERIMENTS.md is generated from ``benchmarks/results/full``; if either
side is regenerated without the other, the document silently lies.
These tests re-render each experiment's measured table from the shipped
JSON and require it to appear verbatim in the committed document.

Skipped when either artifact is absent (fresh checkouts).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.harness import ResultTable
from repro.experiments.report import EXPERIMENTS

ROOT = Path(__file__).resolve().parents[2]
RESULTS_DIR = ROOT / "benchmarks" / "results" / "full"
EXPERIMENTS_MD = ROOT / "EXPERIMENTS.md"

requires_artifacts = pytest.mark.skipif(
    not EXPERIMENTS_MD.exists()
    or not RESULTS_DIR.exists()
    or not any(RESULTS_DIR.glob("*.json")),
    reason="EXPERIMENTS.md or full results not generated yet",
)


@requires_artifacts
class TestExperimentsMdSync:
    def test_every_section_present(self):
        body = EXPERIMENTS_MD.read_text(encoding="utf-8")
        for meta in EXPERIMENTS.values():
            assert f"## {meta.experiment_id} — {meta.title}" in body

    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_measured_table_matches_shipped_json(self, name):
        path = RESULTS_DIR / f"{name}.json"
        if not path.exists():
            pytest.skip(f"{name} not generated")
        body = EXPERIMENTS_MD.read_text(encoding="utf-8")
        table = ResultTable.load_json(path)
        rendered = table.to_markdown()
        assert rendered in body, (
            f"EXPERIMENTS.md is stale for {name}: regenerate with "
            "`python -m repro report`"
        )

    def test_expected_shapes_present(self):
        body = EXPERIMENTS_MD.read_text(encoding="utf-8")
        assert body.count("**Expected shape (reconstruction):**") == len(EXPERIMENTS)
        assert body.count("**Observations:**") == len(EXPERIMENTS)

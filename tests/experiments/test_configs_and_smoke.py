"""Config lookups plus micro-scale smoke runs of each experiment module.

The smoke tests patch each experiment's config to a single tiny cell so
the entire suite stays fast while still executing every experiment's
real code path end-to-end.
"""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.experiments import configs
from repro.experiments.configs import QUICK_SOLVER_KWARGS, Scale, get_config


class TestConfigs:
    @pytest.mark.parametrize("experiment", sorted(configs._CONFIGS))
    @pytest.mark.parametrize("scale", ["quick", "full"])
    def test_every_cell_defined(self, experiment, scale):
        cfg = get_config(experiment, scale)
        assert cfg.repeats >= 1
        assert isinstance(cfg.params, dict)

    def test_unknown_experiment(self):
        with pytest.raises(ValidationError):
            get_config("t99", "quick")

    def test_unknown_scale(self):
        with pytest.raises(ValidationError):
            get_config("t1", "enormous")

    def test_full_scale_at_least_as_large(self):
        for experiment in configs._CONFIGS:
            quick = get_config(experiment, "quick")
            full = get_config(experiment, "full")
            assert full.repeats >= quick.repeats


@pytest.fixture
def micro(monkeypatch):
    """Shrink every experiment to a single micro cell."""
    micro_configs = {
        "t1": Scale(repeats=1, params={"sizes": [(6, 2)], "klasses": ["c"]},
                    solver_kwargs=_micro_kwargs()),
        "f2": Scale(repeats=1, params={"n_devices": [8], "n_servers": 2, "n_routers": 10},
                    solver_kwargs=_micro_kwargs()),
        "f3": Scale(repeats=1, params={"n_servers": [2], "n_devices": 8, "n_routers": 10},
                    solver_kwargs=_micro_kwargs()),
        "f4": Scale(repeats=1, params={"n_devices": 10, "n_servers": 2, "n_routers": 10,
                                       "tightness": 0.85}, solver_kwargs=_micro_kwargs()),
        "f5": Scale(repeats=1, params={"rate_scales": [1.0], "n_devices": 6,
                                       "n_servers": 2, "n_routers": 8,
                                       "duration_s": 3.0, "deadline_s": 0.05},
                    solver_kwargs=_micro_kwargs()),
        "f6": Scale(repeats=1, params={"episodes": 25, "n_devices": 8, "n_servers": 2,
                                       "n_routers": 10}),
        "t2": Scale(repeats=1, params={"sizes": [(8, 2)], "include_exact_upto": 8},
                    solver_kwargs=_micro_kwargs()),
        "f7": Scale(repeats=1, params={"families": ["grid"], "n_devices": 8,
                                       "n_servers": 2, "n_routers": 9},
                    solver_kwargs=_micro_kwargs()),
        "f8": Scale(repeats=1, params={"epochs": 2, "n_devices": 8, "n_servers": 2,
                                       "n_routers": 10}, solver_kwargs=_micro_kwargs()),
        "t3": Scale(repeats=1, params={"n_devices": 8, "n_servers": 2, "n_routers": 10,
                                       "tightness": 0.8, "episodes": 20}),
        "x1": Scale(repeats=1, params={"epochs": 3, "n_devices": 10, "n_servers": 2,
                                       "n_routers": 10, "tightness": 0.8,
                                       "join_prob": 0.2, "leave_prob": 0.1,
                                       "capacity_scale": 0.7},
                    solver_kwargs=_micro_kwargs()),
        "x2": Scale(repeats=1, params={"n_devices": 8, "n_servers": 2, "n_routers": 10,
                                       "tightness": 0.75},
                    solver_kwargs=_micro_kwargs()),
        "x3": Scale(repeats=1, params={"n_devices": 8, "n_servers": 2, "n_routers": 10,
                                       "tightness": 0.8},
                    solver_kwargs=_micro_kwargs()),
        "x4": Scale(repeats=1, params={"n_devices": 8, "n_servers": 2, "n_routers": 10,
                                       "tightness": 0.8,
                                       "jitter_sigmas": [0.0, 0.5],
                                       "probe_counts": [1, 3]},
                    solver_kwargs=_micro_kwargs()),
        "x5": Scale(repeats=1, params={"epochs": 3, "n_devices": 8, "n_servers": 2,
                                       "n_routers": 10, "tightness": 0.5,
                                       "fail_prob": 0.5, "repair_prob": 0.5},
                    solver_kwargs=_micro_kwargs()),
        "x6": Scale(repeats=1, params={"n_devices": 8, "n_servers": 2,
                                       "n_routers": 10, "tightness": 0.5,
                                       "duration_s": 4.0, "crash_frac": 0.4,
                                       "repair_frac": 0.8, "timeout_s": 0.25,
                                       "max_retries": 2, "window_s": 1.0}),
        "x7": Scale(repeats=1, params={"family": "edge_hierarchy",
                                       "n_routers": 10, "n_devices": 8,
                                       "n_servers": 2, "tightness": 0.8,
                                       "flow_scale": 500.0,
                                       "oversubscription_factors": [1.0, 8.0]}),
    }
    monkeypatch.setattr(configs, "_CONFIGS", {
        key: {"quick": value, "full": value} for key, value in micro_configs.items()
    })


def _micro_kwargs():
    return {
        "tacc": {"episodes": 15},
        "qlearning": {"episodes": 15},
        "reinforce": {"episodes": 10},
        "bandit": {"rounds": 10},
        "annealing": {"steps": 400},
        "genetic": {"population": 8, "generations": 6},
    }


@pytest.mark.parametrize(
    "module_name",
    [
        "t1_optimality",
        "f2_devices",
        "f3_servers",
        "f4_load",
        "f5_deadline",
        "f6_convergence",
        "t2_runtime",
        "f7_topology",
        "f8_dynamic",
        "t3_ablation",
        "x1_churn",
        "x2_placement",
        "x3_objective",
        "x4_noise",
        "x5_faults",
        "x6_chaos",
        "x7_contention",
    ],
)
def test_every_experiment_runs_end_to_end(micro, module_name):
    import importlib

    module = importlib.import_module(f"repro.experiments.{module_name}")
    table = module.run("quick", seed=0)
    assert len(table) > 0
    # every experiment must render without error
    assert module_name.split("_")[0].upper()[0] in table.to_text()[0].upper() or table.to_text()


class TestExperimentShapes:
    """Spot-checks of the qualitative claims on the micro cells."""

    def test_t1_random_worse_than_tacc(self, micro):
        from repro.experiments import t1_optimality

        table = t1_optimality.run("quick", seed=3)
        random_gap = table.filtered(solver="random").rows[0]["gap_pct_mean"]
        tacc_gap = table.filtered(solver="tacc").rows[0]["gap_pct_mean"]
        assert tacc_gap <= random_gap

    def test_f4_nearest_overloads_tacc_does_not(self, micro):
        from repro.experiments import f4_load

        table = f4_load.run("quick", seed=1)
        nearest = table.filtered(solver="nearest").rows[0]
        tacc = table.filtered(solver="tacc").rows[0]
        assert tacc["max_utilization_mean"] <= 1.0 + 1e-9
        assert nearest["max_utilization_mean"] >= tacc["max_utilization_mean"]

"""NetemEngine decisions: determinism, independence, windowing."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netem import NetemEngine, NetemRule, NetemScript
from tests.strategies import netem_scripts


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _trace(script: NetemScript, messages: "list[tuple[str, str]]",
           times: "list[float]") -> "list[tuple]":
    """Replay one message sequence against a frozen clock."""
    clock = FakeClock()
    engine = NetemEngine(script, clock=clock, record_trace=True)
    for (edge, direction), t in zip(messages, times):
        clock.t = t
        engine.decide(edge, direction)
    return engine.trace


@settings(max_examples=60, deadline=None)
@given(
    script=netem_scripts(),
    data=st.data(),
)
def test_same_seed_and_script_give_identical_traces(script, data):
    """The tentpole determinism property: decisions are a pure function
    of ``(seed, edge, direction, n)`` plus the frozen clock — replaying
    the same message sequence twice gives byte-identical traces."""
    edges = st.sampled_from(
        ["router->shard-0", "router->shard-1", "client->server"]
    )
    directions = st.sampled_from(["forward", "reverse"])
    n = data.draw(st.integers(min_value=1, max_value=40))
    messages = [
        (data.draw(edges), data.draw(directions)) for _ in range(n)
    ]
    times = sorted(
        data.draw(st.floats(min_value=0.0, max_value=10.0))
        for _ in range(n)
    )
    assert _trace(script, messages, times) == _trace(script, messages, times)


@settings(max_examples=30, deadline=None)
@given(script=netem_scripts(), seed=st.integers(0, 2**31 - 1))
def test_interleaved_edges_do_not_shift_each_other(script, seed):
    """Decisions per edge come from independent streams: injecting
    traffic on a second edge must not change the first edge's fate."""
    solo = _trace(script, [("a->b", "forward")] * 10, [0.0] * 10)
    noisy_messages = []
    for _ in range(10):
        noisy_messages.append(("x->y", "forward"))
        noisy_messages.append(("a->b", "forward"))
    mixed = _trace(script, noisy_messages, [0.0] * 20)
    assert [e for e in mixed if e[0] == "a->b"] == solo


def test_windows_consult_the_clock_but_draws_do_not():
    """A rule outside its window is inert; the same message index keeps
    the same draw when the window opens (clock moves, seed does not)."""
    script = NetemScript(seed=3, rules=(
        NetemRule(kind="drop", p=1.0, at_s=5.0),
    ))
    clock = FakeClock()
    engine = NetemEngine(script, clock=clock)
    assert not engine.decide("a->b", "forward").lost
    clock.t = 5.0
    assert engine.decide("a->b", "forward").lost


def test_partition_loses_everything_in_direction():
    script = NetemScript(rules=(
        NetemRule(kind="partition", edge="*->s", direction="forward"),
    ))
    engine = NetemEngine(script, clock=FakeClock())
    assert engine.decide("r->s", "forward").partitioned
    assert not engine.decide("r->s", "reverse").lost


def test_slow_factor_stretches_injected_delay():
    script = NetemScript(rules=(
        NetemRule(kind="delay", delay_s=0.01),
        NetemRule(kind="slow", factor=4.0),
    ))
    engine = NetemEngine(script, clock=FakeClock())
    decision = engine.decide("a->b", "forward")
    assert decision.slow_factor == 4.0
    assert decision.delay_s == 0.04


def test_stats_count_decisions_and_losses():
    script = NetemScript(rules=(NetemRule(kind="drop", p=1.0),))
    engine = NetemEngine(script, clock=FakeClock())
    engine.decide("a->b", "forward")
    engine.decide("a->b", "reverse")
    stats = engine.stats()
    assert stats["decisions_total"] == 2
    assert stats["lost_total"] == 2
    assert stats["edges"] == ["a->b#forward", "a->b#reverse"]

"""NetemScript validation, matching, and JSON round-trips."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.errors import NetemError, SerializationError, ValidationError
from repro.faults.scenario import FaultEventSpec, FaultScenario
from repro.netem import (
    NetemRule,
    NetemScript,
    load_script,
    script_from_scenario,
)
from tests.strategies import netem_scripts


class TestNetemRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValidationError, match="unknown netem rule kind"):
            NetemRule(kind="explode")

    def test_rejects_unknown_direction(self):
        with pytest.raises(ValidationError, match="unknown direction"):
            NetemRule(kind="drop", direction="sideways")

    def test_rejects_malformed_edge(self):
        with pytest.raises(ValidationError, match="src->dst"):
            NetemRule(kind="drop", edge="router")

    def test_rejects_probability_out_of_range(self):
        with pytest.raises(ValidationError, match="p must be"):
            NetemRule(kind="drop", p=1.5)

    def test_reorder_needs_a_hold(self):
        with pytest.raises(ValidationError, match="extra_s"):
            NetemRule(kind="reorder", extra_s=0.0)

    def test_edge_wildcards_match_per_side(self):
        rule = NetemRule(kind="drop", edge="*->shard-1")
        assert rule.matches("router->shard-1", "forward")
        assert rule.matches("client->shard-1", "reverse")
        assert not rule.matches("router->shard-0", "forward")

    def test_direction_filters(self):
        rule = NetemRule(kind="drop", direction="forward")
        assert rule.matches("a->b", "forward")
        assert not rule.matches("a->b", "reverse")

    def test_window_gates_activity(self):
        rule = NetemRule(kind="drop", at_s=2.0, duration_s=3.0)
        assert not rule.active(1.9)
        assert rule.active(2.0)
        assert rule.active(4.9)
        assert not rule.active(5.0)

    def test_open_ended_window(self):
        rule = NetemRule(kind="partition", at_s=1.0)
        assert rule.active(1e9)


class TestNetemScript:
    def test_rules_are_sorted_by_onset(self):
        late = NetemRule(kind="drop", at_s=5.0)
        early = NetemRule(kind="slow", factor=2.0, at_s=1.0)
        script = NetemScript(rules=(late, early))
        assert script.rules == (early, late)

    def test_matching_respects_edge_direction_and_time(self):
        script = NetemScript(rules=(
            NetemRule(kind="drop", edge="*->shard-0", direction="forward"),
            NetemRule(kind="slow", edge="*->shard-0", factor=2.0, at_s=10.0),
        ))
        now = script.matching("router->shard-0", "forward", elapsed_s=0.0)
        assert [r.kind for r in now] == ["drop"]
        later = script.matching("router->shard-0", "forward", elapsed_s=11.0)
        assert sorted(r.kind for r in later) == ["drop", "slow"]
        assert script.matching("router->shard-0", "reverse", 0.0) == []

    @settings(max_examples=50, deadline=None)
    @given(script=netem_scripts())
    def test_json_round_trip_is_identity(self, script):
        assert NetemScript.from_json(script.to_json()) == script

    def test_from_json_rejects_junk(self):
        with pytest.raises(SerializationError):
            NetemScript.from_json("not json")
        with pytest.raises(SerializationError):
            NetemScript.from_json('{"no": "rules"}')
        with pytest.raises(SerializationError):
            NetemScript.from_json('{"rules": [{"kind": "explode"}]}')


class TestLoadScript:
    def test_loads_bare_script(self, tmp_path):
        script = NetemScript(
            rules=(NetemRule(kind="drop", edge="*->shard-0", p=0.5),),
            seed=7, name="gray",
        )
        path = script.save(tmp_path / "netem.json")
        assert load_script(path) == script

    def test_loads_scenario_with_embedded_netem(self, tmp_path):
        script = NetemScript(rules=(NetemRule(kind="slow", factor=2.0),))
        payload = {
            "name": "combo", "events": [],
            "netem": script.to_dict(),
        }
        path = tmp_path / "combo.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert load_script(path) == script

    def test_converts_plain_scenario_when_given_shard_names(self, tmp_path):
        scenario = FaultScenario(name="s", events=(
            FaultEventSpec(at_s=1.0, kind="server_crash", server=0),
            FaultEventSpec(at_s=3.0, kind="server_repair", server=0),
        ))
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(scenario.to_dict()), encoding="utf-8")
        script = load_script(path, shard_names=["shard-0", "shard-1"])
        assert [r.kind for r in script.rules] == ["partition"]
        with pytest.raises(NetemError, match="shard names"):
            load_script(path)

    def test_rejects_shapeless_payload(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"neither": true}', encoding="utf-8")
        with pytest.raises(SerializationError, match="neither"):
            load_script(path)


class TestScriptFromScenario:
    def test_slowdown_becomes_inverse_slow_rule(self):
        scenario = FaultScenario(name="s", events=(
            FaultEventSpec(at_s=2.0, kind="server_slowdown", server=1,
                           factor=0.25, duration_s=4.0),
        ))
        script = script_from_scenario(scenario, ["shard-0", "shard-1"])
        (rule,) = script.rules
        assert rule.kind == "slow"
        assert rule.edge == "*->shard-1"
        assert rule.factor == pytest.approx(4.0)
        assert (rule.at_s, rule.duration_s) == (2.0, 4.0)

    def test_crash_repair_pair_becomes_partition_window(self):
        scenario = FaultScenario(name="s", events=(
            FaultEventSpec(at_s=1.0, kind="server_crash", server=0),
            FaultEventSpec(at_s=4.0, kind="server_repair", server=0),
        ))
        script = script_from_scenario(scenario, ["shard-0"])
        (rule,) = script.rules
        assert rule.kind == "partition"
        assert (rule.at_s, rule.duration_s) == (1.0, 3.0)

    def test_unrepaired_crash_partitions_forever(self):
        scenario = FaultScenario(name="s", events=(
            FaultEventSpec(at_s=1.0, kind="server_crash", server=0),
        ))
        script = script_from_scenario(scenario, ["shard-0"])
        (rule,) = script.rules
        assert rule.kind == "partition"
        assert rule.duration_s is None

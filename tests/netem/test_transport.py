"""NetemBackend: scripted chaos around a real in-process shard."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import DeadlineExceededError, ShardUnavailableError
from repro.model.instances import random_instance
from repro.netem import NetemBackend, NetemEngine, NetemRule, NetemScript
from repro.serve.protocol import Request
from repro.serve.service import AssignmentService, ServiceConfig
from repro.shard.backend import InProcessBackend


def run(coro):
    return asyncio.run(coro)


def _engine(*rules: NetemRule, seed: int = 0) -> NetemEngine:
    return NetemEngine(NetemScript(rules=tuple(rules), seed=seed))


async def _backend():
    problem = random_instance(10, 3, tightness=0.6, seed=2)
    service = AssignmentService(problem, ServiceConfig(max_wait_s=0.0))
    await service.start()
    return service, InProcessBackend("shard-0", service)


class TestNetemBackend:
    def test_forward_drop_is_fast_failure_plus_breaker_hit(self):
        async def scenario():
            service, inner = await _backend()
            wire = NetemBackend(inner, _engine(
                NetemRule(kind="drop", p=1.0, direction="forward"),
            ))
            with pytest.raises(ShardUnavailableError, match="dropped request"):
                await wire.request(Request(op="assign", device=0))
            # the request never reached the shard
            stats = (await inner.request(Request(op="stats"))).stats
            assert stats["assigns_total"] == 0
            await service.stop()

        run(scenario())

    def test_reverse_drop_loses_the_answer_after_the_apply(self):
        async def scenario():
            service, inner = await _backend()
            wire = NetemBackend(inner, _engine(
                NetemRule(kind="drop", p=1.0, direction="reverse"),
            ))
            with pytest.raises(ShardUnavailableError,
                               match="dropped response"):
                await wire.request(Request(op="assign", device=0))
            # the gray ambiguity: the shard *did* apply the assign
            stats = (await inner.request(Request(op="stats"))).stats
            assert stats["assigns_total"] == 1
            await service.stop()

        run(scenario())

    def test_partition_window_heals(self):
        async def scenario():
            service, inner = await _backend()
            engine = NetemEngine(NetemScript(rules=(
                NetemRule(kind="partition", duration_s=0.05),
            )))
            wire = NetemBackend(inner, engine)
            with pytest.raises(ShardUnavailableError):
                await wire.request(Request(op="stats"))
            await asyncio.sleep(0.06)
            inner.breaker.record_success()  # close what the drop opened
            response = await wire.request(Request(op="stats"))
            assert response.ok
            await service.stop()

        run(scenario())

    def test_clean_wire_passes_through(self):
        async def scenario():
            service, inner = await _backend()
            wire = NetemBackend(inner, _engine())
            assert wire.name == "shard-0"
            assert wire.breaker is inner.breaker
            response = await wire.request(Request(op="assign", device=3))
            assert response.ok
            await service.stop()

        run(scenario())

    def test_duplicate_of_deadlined_probe_is_absorbed_silently(self):
        # a duplicated stats probe carries the router's deadline; when
        # the budget expires the duplicate's DeadlineExceededError must
        # be swallowed inside the tracked absorb task, not surface as
        # 'Task exception was never retrieved' noise
        async def scenario():
            service, inner = await _backend()
            wire = NetemBackend(inner, _engine(
                NetemRule(kind="duplicate", p=1.0, direction="forward"),
            ))
            probe = Request(op="stats", deadline_ms=1.0)  # long expired
            with pytest.raises(DeadlineExceededError):
                await wire.request(probe)
            assert wire._absorb_tasks  # strong reference held
            await asyncio.gather(*tuple(wire._absorb_tasks))
            assert not wire._absorb_tasks
            await service.stop()

        run(scenario())

    def test_duplicate_never_reapplies_non_idempotent_ops(self):
        async def scenario():
            service, inner = await _backend()
            wire = NetemBackend(inner, _engine(
                NetemRule(kind="duplicate", p=1.0, direction="forward"),
            ))
            response = await wire.request(Request(op="assign", device=0))
            assert response.ok
            await asyncio.sleep(0)  # let any stray duplicate land
            stats = (await inner.request(Request(op="stats"))).stats
            # the wire may duplicate; an at-most-once server must not
            assert stats["assigns_total"] == 1
            await service.stop()

        run(scenario())

"""Tests for device/server entities."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.model.entities import EdgeServer, IoTDevice


class TestIoTDevice:
    def test_valid_device(self):
        device = IoTDevice(device_id=0, node_id=5, demand=10.0, rate_hz=2.0)
        assert device.deadline_s is None

    def test_deadline_optional_but_positive(self):
        IoTDevice(device_id=0, node_id=5, demand=1.0, deadline_s=0.05)
        with pytest.raises(ValidationError):
            IoTDevice(device_id=0, node_id=5, demand=1.0, deadline_s=0.0)

    def test_demand_must_be_positive(self):
        with pytest.raises(ValidationError):
            IoTDevice(device_id=0, node_id=5, demand=0.0)

    def test_rate_must_be_positive(self):
        with pytest.raises(ValidationError):
            IoTDevice(device_id=0, node_id=5, demand=1.0, rate_hz=-1.0)

    def test_frozen(self):
        device = IoTDevice(device_id=0, node_id=5, demand=1.0)
        with pytest.raises(AttributeError):
            device.demand = 2.0


class TestEdgeServer:
    def test_valid_server(self):
        server = EdgeServer(server_id=0, node_id=3, capacity=100.0)
        assert server.service_rate == 100.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValidationError):
            EdgeServer(server_id=0, node_id=3, capacity=0.0)

    def test_service_rate_must_be_positive(self):
        with pytest.raises(ValidationError):
            EdgeServer(server_id=0, node_id=3, capacity=1.0, service_rate=0.0)

    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            EdgeServer(server_id=-1, node_id=3, capacity=1.0)

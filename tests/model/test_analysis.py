"""Tests for instance difficulty diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.analysis import (
    capacity_pressure,
    classify_difficulty,
    delay_structure,
    difficulty_report,
    server_contention,
)
from repro.model.instances import gap_instance, random_instance
from repro.model.problem import AssignmentProblem


class TestCapacityPressure:
    def test_loose_instance_no_relaxed_overload(self):
        problem = random_instance(20, 4, tightness=0.3, seed=1)
        problem.capacity[:] = 1e9
        pressure = capacity_pressure(problem)
        assert pressure["relaxed_overload_fraction"] == 0.0
        assert pressure["relaxed_max_utilization"] < 1.0

    def test_hotspot_overloads_under_relaxation(self):
        # every device prefers server 0; capacity only fits half
        problem = AssignmentProblem(
            delay=[[1.0, 9.0]] * 10,
            demand=[10.0] * 10,
            capacity=[50.0, 200.0],
        )
        pressure = capacity_pressure(problem)
        assert pressure["relaxed_overload_fraction"] == 0.5
        assert pressure["relaxed_max_utilization"] == pytest.approx(2.0)

    def test_tightness_passthrough(self, small_problem):
        assert capacity_pressure(small_problem)["tightness"] == pytest.approx(
            small_problem.tightness
        )


class TestDelayStructure:
    def test_class_d_detected_as_anticorrelated(self):
        problem = gap_instance(100, 5, "d", seed=2)
        assert delay_structure(problem)["delay_demand_correlation"] < -0.5

    def test_uncorrelated_class_near_zero(self):
        problem = gap_instance(100, 5, "c", seed=2)
        assert abs(delay_structure(problem)["delay_demand_correlation"]) < 0.2

    def test_constant_delay_zero_regret(self):
        problem = AssignmentProblem(
            delay=[[2.0, 2.0]] * 4, demand=[1.0] * 4, capacity=[10.0, 10.0]
        )
        structure = delay_structure(problem)
        assert structure["normalized_regret"] == 0.0
        assert structure["delay_spread"] == pytest.approx(1.0)

    def test_single_server_handled(self):
        problem = AssignmentProblem(
            delay=[[1.0], [2.0]], demand=[1.0, 1.0], capacity=[10.0]
        )
        assert delay_structure(problem)["normalized_regret"] == 0.0


class TestServerContention:
    def test_single_hotspot(self):
        problem = AssignmentProblem(
            delay=[[1.0, 9.0]] * 8,
            demand=[1.0] * 8,
            capacity=[100.0, 100.0],
        )
        contention = server_contention(problem)
        assert contention["nearest_share_top"] == 1.0
        assert contention["nearest_servers_used"] == 0.5

    def test_spread_preferences(self):
        rng = np.random.default_rng(3)
        problem = random_instance(200, 4, seed=3)
        contention = server_contention(problem)
        assert contention["nearest_share_top"] < 0.5
        assert contention["nearest_servers_used"] == 1.0


class TestReportAndClassification:
    def test_report_contains_all_sections(self, small_problem):
        report = difficulty_report(small_problem)
        for key in (
            "tightness",
            "relaxed_overload_fraction",
            "delay_demand_correlation",
            "nearest_share_top",
        ):
            assert key in report

    def test_easy_classification(self):
        problem = random_instance(20, 4, tightness=0.3, seed=4)
        problem.capacity[:] = 1e9
        assert classify_difficulty(problem) == "easy"

    def test_hard_classification_for_class_d(self):
        for seed in range(5):
            problem = gap_instance(40, 5, "d", seed=seed)
            label = classify_difficulty(problem)
            if label == "hard":
                return
        pytest.fail("no class-d instance classified as hard")

    def test_moderate_between(self):
        # tight but uncorrelated: relaxation overloads, correlation ~0
        for seed in range(5):
            problem = gap_instance(40, 5, "c", seed=seed)
            if classify_difficulty(problem) == "moderate":
                return
        pytest.fail("no class-c instance classified as moderate")

"""Tests for AssignmentProblem."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import SerializationError, ValidationError
from repro.model.instances import topology_instance
from repro.model.problem import AssignmentProblem
from repro.topology.delay import TransmissionDelayModel
from tests.strategies import small_problems


def simple_problem():
    return AssignmentProblem(
        delay=[[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]],
        demand=[10.0, 20.0, 30.0],
        capacity=[40.0, 40.0],
    )


class TestConstruction:
    def test_shapes(self):
        problem = simple_problem()
        assert problem.n_devices == 3
        assert problem.n_servers == 2

    def test_1d_demand_broadcast(self):
        problem = simple_problem()
        assert problem.demand.shape == (3, 2)
        assert np.all(problem.demand[:, 0] == problem.demand[:, 1])

    def test_2d_demand_kept(self):
        problem = AssignmentProblem(
            delay=[[1.0, 2.0]], demand=[[5.0, 7.0]], capacity=[10.0, 10.0]
        )
        assert problem.demand[0, 0] == 5.0
        assert problem.demand[0, 1] == 7.0

    def test_wrong_demand_length_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentProblem(delay=[[1.0]], demand=[1.0, 2.0], capacity=[1.0])

    def test_wrong_capacity_length_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentProblem(delay=[[1.0, 2.0]], demand=[1.0], capacity=[1.0])

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentProblem(delay=[[-1.0]], demand=[1.0], capacity=[1.0])

    def test_zero_demand_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentProblem(delay=[[1.0]], demand=[0.0], capacity=[1.0])

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentProblem(delay=[[1.0]], demand=[1.0], capacity=[0.0])

    def test_nan_delay_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentProblem(delay=[[float("nan")]], demand=[1.0], capacity=[1.0])


class TestDerivedQuantities:
    def test_delay_lower_bound(self):
        problem = simple_problem()
        assert problem.delay_lower_bound() == pytest.approx(1.0 + 3.0 + 5.0)

    def test_tightness(self):
        problem = simple_problem()
        assert problem.tightness == pytest.approx(60.0 / 80.0)

    def test_normalized_delay_in_unit_interval(self):
        problem = simple_problem()
        norm = problem.normalized_delay()
        assert norm.min() == 0.0
        assert norm.max() == 1.0

    def test_normalized_delay_constant_matrix(self):
        problem = AssignmentProblem(
            delay=[[2.0, 2.0]], demand=[1.0], capacity=[5.0, 5.0]
        )
        assert np.all(problem.normalized_delay() == 0.0)

    @settings(max_examples=25, deadline=None)
    @given(problem=small_problems())
    def test_property_lower_bound_below_any_assignment(self, problem):
        rng = np.random.default_rng(0)
        vector = rng.integers(problem.n_servers, size=problem.n_devices)
        cost = float(np.sum(problem.delay[np.arange(problem.n_devices), vector]))
        assert problem.delay_lower_bound() <= cost + 1e-12


class TestFailedServerMasking:
    def degraded(self):
        return AssignmentProblem(
            delay=[[1.0, 2.0, 9.0], [3.0, 1.0, 9.0], [5.0, 6.0, 9.0]],
            demand=[10.0, 20.0, 30.0],
            capacity=[90.0, 90.0, 90.0],
            failed_servers=frozenset({0}),
        )

    def test_lower_bound_ignores_failed_columns(self):
        # server 0 holds every row minimum; with it failed the bound
        # must come from the healthy columns only
        assert self.degraded().delay_lower_bound() == pytest.approx(
            2.0 + 1.0 + 6.0
        )

    def test_lower_bound_unchanged_without_failures(self):
        problem = simple_problem()
        assert problem.delay_lower_bound() == pytest.approx(1.0 + 3.0 + 5.0)

    def test_normalized_delay_stats_over_healthy_columns(self):
        norm = self.degraded().normalized_delay()
        healthy = norm[:, 1:]
        assert healthy.min() == 0.0
        assert healthy.max() == 1.0
        # failed columns pin to the worst normalized value, so a solver
        # reading the normalized matrix never prefers a dead server
        assert np.all(norm[:, 0] == 1.0)

    def test_normalized_delay_in_unit_interval_when_degraded(self):
        norm = self.degraded().normalized_delay()
        assert np.all(norm >= 0.0)
        assert np.all(norm <= 1.0)

    def test_healthy_mask(self):
        mask = self.degraded().healthy_mask()
        assert mask.tolist() == [False, True, True]


class TestFromTopology:
    def test_matrix_matches_delay_model(self, topo_problem):
        model = TransmissionDelayModel()
        expected = model.matrix(
            topo_problem.graph,
            [d.node_id for d in topo_problem.devices],
            [s.node_id for s in topo_problem.servers],
        )
        assert np.allclose(topo_problem.delay, expected)

    def test_entities_aligned(self, topo_problem):
        assert len(topo_problem.devices) == topo_problem.n_devices
        assert len(topo_problem.servers) == topo_problem.n_servers

    def test_capacity_from_entities(self, topo_problem):
        for j, server in enumerate(topo_problem.servers):
            assert topo_problem.capacity[j] == pytest.approx(server.capacity)


class TestSerialization:
    def test_roundtrip(self):
        problem = simple_problem()
        clone = AssignmentProblem.from_json(problem.to_json())
        assert np.allclose(clone.delay, problem.delay)
        assert np.allclose(clone.demand, problem.demand)
        assert np.allclose(clone.capacity, problem.capacity)
        assert clone.name == problem.name

    def test_topology_instance_roundtrips_matrices(self):
        problem = topology_instance(n_routers=10, n_devices=6, n_servers=2, seed=1)
        clone = AssignmentProblem.from_json(problem.to_json())
        assert np.allclose(clone.delay, problem.delay)
        assert clone.graph is None  # the graph is not serialized

    def test_missing_field_raises(self):
        with pytest.raises(SerializationError):
            AssignmentProblem.from_dict({"delay": [[1.0]]})

    def test_objective_default_not_serialized(self):
        payload = simple_problem().to_dict()
        assert "objective" not in payload

    def test_objective_roundtrip(self):
        problem = AssignmentProblem(
            delay=[[1.0, 2.0]],
            demand=[1.0],
            capacity=[5.0, 5.0],
            objective="congestion",
        )
        clone = AssignmentProblem.from_json(problem.to_json())
        assert clone.objective == "congestion"

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValidationError):
            AssignmentProblem(
                delay=[[1.0]], demand=[1.0], capacity=[5.0], objective="latency"
            )

    def test_invalid_json_raises(self):
        with pytest.raises(SerializationError):
            AssignmentProblem.from_json("{not json")

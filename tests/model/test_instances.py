"""Tests for instance generators — especially the feasibility certificate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.model.instances import (
    _first_fit_decreasing,
    ensure_feasible_capacity,
    gap_instance,
    random_instance,
    topology_instance,
)
from repro.model.problem import AssignmentProblem
from repro.topology.delay import HopCountDelayModel


class TestRandomInstance:
    def test_shapes_and_ranges(self):
        problem = random_instance(20, 4, seed=1)
        assert problem.n_devices == 20
        assert problem.n_servers == 4
        assert np.all(problem.delay >= 1e-3)
        assert np.all(problem.delay <= 20e-3)

    def test_feasible_by_construction(self):
        for seed in range(10):
            problem = random_instance(25, 4, tightness=0.9, seed=seed)
            witness = _first_fit_decreasing(problem)
            assert witness is not None
            assert witness.is_feasible()

    def test_tightness_close_to_requested(self):
        problem = random_instance(200, 8, tightness=0.7, seed=3)
        assert problem.tightness == pytest.approx(0.7, abs=0.12)

    def test_deterministic(self):
        a = random_instance(10, 3, seed=5)
        b = random_instance(10, 3, seed=5)
        assert np.allclose(a.delay, b.delay)
        assert np.allclose(a.capacity, b.capacity)

    def test_invalid_tightness_rejected(self):
        with pytest.raises(ValidationError):
            random_instance(10, 3, tightness=1.0)
        with pytest.raises(ValidationError):
            random_instance(10, 3, tightness=0.0)


class TestGapInstance:
    @pytest.mark.parametrize("klass", ["a", "b", "c", "d"])
    def test_all_classes_feasible(self, klass):
        problem = gap_instance(30, 5, klass, seed=7)
        assert _first_fit_decreasing(problem) is not None

    def test_class_d_is_inversely_correlated(self):
        problem = gap_instance(200, 5, "d", seed=11)
        correlation = np.corrcoef(
            problem.demand.reshape(-1), problem.delay.reshape(-1)
        )[0, 1]
        assert correlation < -0.8

    def test_uncorrelated_classes(self):
        problem = gap_instance(200, 5, "c", seed=11)
        correlation = np.corrcoef(
            problem.demand.reshape(-1), problem.delay.reshape(-1)
        )[0, 1]
        assert abs(correlation) < 0.2

    def test_unknown_class_rejected(self):
        with pytest.raises(ValidationError):
            gap_instance(10, 3, "z")

    def test_class_a_looser_than_c(self):
        loose = gap_instance(100, 5, "a", seed=13)
        tight = gap_instance(100, 5, "c", seed=13)
        assert loose.tightness < tight.tightness


class TestEnsureFeasibleCapacity:
    def test_relaxes_until_feasible(self):
        # an instance that is clearly infeasible as stated
        problem = AssignmentProblem(
            delay=[[1.0], [1.0], [1.0]],
            demand=[10.0, 10.0, 10.0],
            capacity=[12.0],
        )
        ensure_feasible_capacity(problem)
        assert _first_fit_decreasing(problem) is not None
        assert problem.capacity[0] >= 30.0

    def test_noop_when_already_feasible(self):
        problem = AssignmentProblem(
            delay=[[1.0]], demand=[5.0], capacity=[100.0]
        )
        before = problem.capacity.copy()
        ensure_feasible_capacity(problem)
        assert np.allclose(problem.capacity, before)


class TestTopologyInstance:
    def test_graph_and_entities_attached(self):
        problem = topology_instance(n_routers=15, n_devices=10, n_servers=3, seed=1)
        assert problem.graph is not None
        assert len(problem.devices) == 10
        assert len(problem.servers) == 3

    def test_feasible_by_construction(self):
        for seed in range(5):
            problem = topology_instance(
                n_routers=15, n_devices=20, n_servers=3, tightness=0.9, seed=seed
            )
            assert _first_fit_decreasing(problem) is not None

    def test_deadline_stamped(self):
        problem = topology_instance(
            n_routers=10, n_devices=5, n_servers=2, seed=2, deadline_s=0.1
        )
        assert all(d.deadline_s == 0.1 for d in problem.devices)

    def test_heterogeneous_servers_vary_demand(self):
        problem = topology_instance(
            n_routers=15, n_devices=10, n_servers=4, seed=3, heterogeneous_servers=True
        )
        # at least one device must cost different load on different servers
        assert np.any(np.ptp(problem.demand, axis=1) > 1e-9)

    def test_homogeneous_demand_constant_per_device(self):
        problem = topology_instance(n_routers=15, n_devices=10, n_servers=4, seed=3)
        assert np.allclose(np.ptp(problem.demand, axis=1), 0.0)

    def test_delay_model_respected(self):
        hop = topology_instance(
            n_routers=15, n_devices=8, n_servers=3, seed=4,
            delay_model=HopCountDelayModel(seconds_per_hop=1.0),
        )
        # hop counts are small integers (in seconds with 1 s/hop)
        assert np.allclose(hop.delay, np.round(hop.delay))
        assert np.all(hop.delay >= 1.0)

    def test_deterministic(self):
        a = topology_instance(n_routers=12, n_devices=8, n_servers=2, seed=9)
        b = topology_instance(n_routers=12, n_devices=8, n_servers=2, seed=9)
        assert np.allclose(a.delay, b.delay)
        assert np.allclose(a.capacity, b.capacity)

    def test_server_capacity_entities_synced_after_relaxation(self):
        problem = topology_instance(
            n_routers=12, n_devices=30, n_servers=2, tightness=0.95, seed=10
        )
        for j, server in enumerate(problem.servers):
            assert server.capacity == pytest.approx(problem.capacity[j])


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(3, 25),
    m=st.integers(2, 5),
    tightness=st.floats(0.3, 0.95),
    seed=st.integers(0, 10_000),
)
def test_property_generators_always_feasible(n, m, tightness, seed):
    """Every generated instance must carry a feasibility witness."""
    problem = random_instance(n, m, tightness=tightness, seed=seed)
    witness = _first_fit_decreasing(problem)
    assert witness is not None
    witness.validate()

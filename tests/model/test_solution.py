"""Tests for Assignment: feasibility, loads, objectives."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import InfeasibleSolutionError, SerializationError, ValidationError
from repro.model.problem import AssignmentProblem
from repro.model.solution import UNASSIGNED, Assignment
from tests.strategies import assignment_vectors, small_problems


@pytest.fixture
def problem():
    return AssignmentProblem(
        delay=[[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]],
        demand=[10.0, 20.0, 30.0],
        capacity=[35.0, 45.0],
    )


class TestConstruction:
    def test_starts_unassigned(self, problem):
        assignment = Assignment(problem)
        assert not assignment.is_complete
        assert all(v == UNASSIGNED for v in assignment.vector)

    def test_explicit_vector(self, problem):
        assignment = Assignment(problem, [0, 1, 1])
        assert assignment.server_of(0) == 0
        assert assignment.server_of(2) == 1

    def test_vector_length_checked(self, problem):
        with pytest.raises(ValidationError):
            Assignment(problem, [0, 1])

    def test_out_of_range_server_rejected(self, problem):
        with pytest.raises(ValidationError):
            Assignment(problem, [0, 1, 2])

    def test_vector_is_copied_in_and_out(self, problem):
        source = np.array([0, 1, 1])
        assignment = Assignment(problem, source)
        source[0] = 1
        assert assignment.server_of(0) == 0
        out = assignment.vector
        out[0] = 1
        assert assignment.server_of(0) == 0


class TestMutation:
    def test_assign_and_unassign(self, problem):
        assignment = Assignment(problem)
        assignment.assign(0, 1)
        assert assignment.server_of(0) == 1
        assignment.unassign(0)
        assert assignment.server_of(0) == UNASSIGNED

    def test_assign_bounds_checked(self, problem):
        assignment = Assignment(problem)
        with pytest.raises(ValidationError):
            assignment.assign(5, 0)
        with pytest.raises(ValidationError):
            assignment.assign(0, 5)

    def test_copy_is_independent(self, problem):
        original = Assignment(problem, [0, 1, 1])
        clone = original.copy()
        clone.assign(0, 1)
        assert original.server_of(0) == 0


class TestLoadsAndFeasibility:
    def test_loads(self, problem):
        assignment = Assignment(problem, [0, 0, 1])
        loads = assignment.loads()
        assert loads[0] == pytest.approx(30.0)
        assert loads[1] == pytest.approx(30.0)

    def test_partial_loads_count_assigned_only(self, problem):
        assignment = Assignment(problem)
        assignment.assign(2, 1)
        assert assignment.loads()[1] == pytest.approx(30.0)
        assert assignment.loads()[0] == 0.0

    def test_feasible_case(self, problem):
        assignment = Assignment(problem, [0, 0, 1])
        assert assignment.is_feasible()
        assignment.validate()  # no raise

    def test_overload_detected(self, problem):
        assignment = Assignment(problem, [0, 1, 0])  # server0: 10+30=40 > 35
        assert not assignment.is_feasible()
        assert assignment.overloaded_servers() == [0]
        assert assignment.total_violation() == pytest.approx(5.0)

    def test_incomplete_is_infeasible(self, problem):
        assignment = Assignment(problem)
        assert not assignment.is_feasible()
        with pytest.raises(InfeasibleSolutionError, match="unassigned"):
            assignment.validate()

    def test_validate_reports_overload(self, problem):
        assignment = Assignment(problem, [0, 1, 0])
        with pytest.raises(InfeasibleSolutionError, match="overloaded"):
            assignment.validate()

    def test_utilization(self, problem):
        assignment = Assignment(problem, [0, 0, 1])
        util = assignment.utilization()
        assert util[0] == pytest.approx(30.0 / 35.0)
        assert util[1] == pytest.approx(30.0 / 45.0)

    def test_devices_on(self, problem):
        assignment = Assignment(problem, [0, 0, 1])
        assert assignment.devices_on(0) == [0, 1]
        assert assignment.devices_on(1) == [2]


class TestObjectives:
    def test_total_delay(self, problem):
        assignment = Assignment(problem, [0, 0, 1])
        assert assignment.total_delay() == pytest.approx(1.0 + 3.0 + 6.0)

    def test_mean_and_max_delay(self, problem):
        assignment = Assignment(problem, [1, 1, 1])
        assert assignment.mean_delay() == pytest.approx((2 + 4 + 6) / 3)
        assert assignment.max_delay() == pytest.approx(6.0)

    def test_partial_total_counts_assigned(self, problem):
        assignment = Assignment(problem)
        assignment.assign(0, 0)
        assert assignment.total_delay() == pytest.approx(1.0)

    def test_empty_mean_is_nan(self, problem):
        assert math.isnan(Assignment(problem).mean_delay())
        assert math.isnan(Assignment(problem).max_delay())

    def test_per_device_delay_nan_for_unassigned(self, problem):
        assignment = Assignment(problem)
        assignment.assign(1, 0)
        delays = assignment.per_device_delay()
        assert math.isnan(delays[0])
        assert delays[1] == pytest.approx(3.0)


class TestSerialization:
    def test_roundtrip(self, problem):
        assignment = Assignment(problem, [0, 1, 1])
        clone = Assignment.from_json(problem, assignment.to_json())
        assert clone == assignment

    def test_bad_json(self, problem):
        with pytest.raises(SerializationError):
            Assignment.from_json(problem, "nope")


class TestEquality:
    def test_equal_same_vector(self, problem):
        assert Assignment(problem, [0, 1, 1]) == Assignment(problem, [0, 1, 1])

    def test_unequal_different_vector(self, problem):
        assert Assignment(problem, [0, 1, 1]) != Assignment(problem, [1, 1, 1])


@settings(max_examples=30, deadline=None)
@given(data=small_problems())
def test_property_loads_equal_manual_sum(data):
    """loads() must agree with a straightforward per-server summation."""
    problem = data
    rng = np.random.default_rng(1)
    vector = rng.integers(problem.n_servers, size=problem.n_devices)
    assignment = Assignment(problem, vector)
    loads = assignment.loads()
    for server in range(problem.n_servers):
        manual = sum(
            problem.demand[i, server]
            for i in range(problem.n_devices)
            if vector[i] == server
        )
        assert loads[server] == pytest.approx(manual)


@settings(max_examples=30, deadline=None)
@given(data=small_problems())
def test_property_feasibility_consistent_with_violation(data):
    """is_feasible ⇔ complete and total_violation == 0."""
    problem = data
    rng = np.random.default_rng(2)
    vector = rng.integers(problem.n_servers, size=problem.n_devices)
    assignment = Assignment(problem, vector)
    assert assignment.is_feasible() == (
        assignment.is_complete and assignment.total_violation() <= 1e-9
    )

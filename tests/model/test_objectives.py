"""Tests for objective functions."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.model.entities import EdgeServer, IoTDevice
from repro.model.objectives import (
    DeadlineViolations,
    LoadBalancedDelay,
    MaxDelay,
    TotalDelay,
    resolve_objective,
)
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment


@pytest.fixture
def problem():
    return AssignmentProblem(
        delay=[[0.010, 0.060], [0.030, 0.040]],
        demand=[10.0, 10.0],
        capacity=[20.0, 20.0],
    )


class TestTotalAndMax:
    def test_total(self, problem):
        assignment = Assignment(problem, [0, 1])
        assert TotalDelay().evaluate(assignment) == pytest.approx(0.05)

    def test_max(self, problem):
        assignment = Assignment(problem, [0, 1])
        assert MaxDelay().evaluate(assignment) == pytest.approx(0.04)

    def test_callable_protocol(self, problem):
        assignment = Assignment(problem, [0, 0])
        assert TotalDelay()(assignment) == assignment.total_delay()


class TestDeadlineViolations:
    def test_default_deadline(self, problem):
        assignment = Assignment(problem, [1, 1])  # delays 0.06 and 0.04
        objective = DeadlineViolations(default_deadline_s=0.05)
        assert objective.evaluate(assignment) == 1.0

    def test_no_deadline_never_violates(self, problem):
        assignment = Assignment(problem, [1, 1])
        assert DeadlineViolations().evaluate(assignment) == 0.0

    def test_entity_deadlines_override_default(self):
        devices = [
            IoTDevice(device_id=0, node_id=0, demand=10.0, deadline_s=0.005),
            IoTDevice(device_id=1, node_id=1, demand=10.0, deadline_s=1.0),
        ]
        servers = [EdgeServer(server_id=0, node_id=2, capacity=50.0)]
        problem = AssignmentProblem(
            delay=[[0.010], [0.010]],
            demand=[10.0, 10.0],
            capacity=[50.0],
            devices=devices,
            servers=servers,
        )
        assignment = Assignment(problem, [0, 0])
        # device 0's tight 5 ms deadline is violated, device 1's is not,
        # even with a permissive default
        assert DeadlineViolations(default_deadline_s=10.0).evaluate(assignment) == 1.0


class TestLoadBalancedDelay:
    def test_balanced_assignment_scores_lower(self, problem):
        balanced = Assignment(problem, [0, 1])
        skewed = Assignment(problem, [0, 0])
        objective = LoadBalancedDelay(weight=10.0)
        # same or worse delay but zero imbalance: relative ordering should
        # favour the balanced one once weight dominates
        assert objective.evaluate(balanced) < objective.evaluate(skewed) * 2

    def test_zero_weight_equals_total_delay(self, problem):
        assignment = Assignment(problem, [0, 1])
        assert LoadBalancedDelay(weight=0.0).evaluate(assignment) == pytest.approx(
            assignment.total_delay()
        )


class TestResolveObjective:
    def test_none_defaults_to_total(self):
        assert isinstance(resolve_objective(None), TotalDelay)

    def test_by_name(self):
        assert isinstance(resolve_objective("max_delay"), MaxDelay)

    def test_instance_passthrough(self):
        objective = MaxDelay()
        assert resolve_objective(objective) is objective

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError):
            resolve_objective("fastest_vibe")

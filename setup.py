"""Legacy setup shim.

The offline environment has setuptools but not the ``wheel`` package,
so PEP 517 editable installs fail with ``invalid command bdist_wheel``.
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517``
take the classic develop-mode path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()

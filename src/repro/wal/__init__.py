"""Durable crash recovery for the serving tier.

An append-only assignment journal plus periodic snapshots
(:class:`WriteAheadLog`) that :class:`~repro.serve.state.ServiceState`
writes through and replays on restart, so a SIGKILLed shard comes back
with its exact pre-crash assignment instead of starting empty.  See
``docs/robustness.md``.
"""

from repro.wal.log import DEFAULT_SNAPSHOT_EVERY, WriteAheadLog

__all__ = ["DEFAULT_SNAPSHOT_EVERY", "WriteAheadLog"]

"""Append-only assignment WAL with periodic snapshots.

One directory per service instance, two files:

* ``snapshot.json`` — the full :class:`~repro.serve.state.ServiceState`
  payload as of journal sequence ``seq`` (written atomically:
  temp-file + rename, so a crash mid-snapshot leaves the previous one
  intact);
* ``journal.jsonl`` — one JSON record per state mutation since that
  snapshot (``assign``/``release``/``migrate``/``swap``, each stamped
  with a monotonically increasing ``seq``).  Writing a snapshot
  truncates the journal, so recovery cost is bounded by
  ``snapshot_every`` regardless of uptime.

Crash discipline: records are flushed per append (``fsync`` optional —
the crash the experiments inject is SIGKILL, which loses nothing that
reached the kernel).  A SIGKILL mid-append leaves a torn final line;
:meth:`WriteAheadLog.load` drops exactly that line and replays the
rest.  A torn line anywhere *else* means real corruption and raises
:class:`~repro.errors.WalError` instead of silently replaying a hole.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.errors import WalError
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.utils.validation import require

SNAPSHOT_FILE = "snapshot.json"
JOURNAL_FILE = "journal.jsonl"

#: default mutations between snapshots (bounds replay length)
DEFAULT_SNAPSHOT_EVERY = 256


class WriteAheadLog:
    """Durable journal + snapshot pair for one service's assignments."""

    def __init__(
        self,
        directory: "str | Path",
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        fsync: bool = False,
    ) -> None:
        require(snapshot_every >= 1, "snapshot_every must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = int(snapshot_every)
        self.fsync = bool(fsync)
        self._journal = None  # opened lazily, append mode
        self._seq = 0
        self._since_snapshot = 0
        self.appends_total = 0
        self.snapshots_total = 0

    @property
    def snapshot_path(self) -> Path:
        """Where the latest snapshot lives."""
        return self.directory / SNAPSHOT_FILE

    @property
    def journal_path(self) -> Path:
        """Where the journal lives."""
        return self.directory / JOURNAL_FILE

    @property
    def seq(self) -> int:
        """Sequence number of the last record written or loaded."""
        return self._seq

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: dict) -> int:
        """Write one mutation record; returns its sequence number."""
        require("seq" not in record, "the WAL stamps seq itself")
        self._seq += 1
        stamped = {"seq": self._seq, **record}
        if self._journal is None:
            self._journal = open(  # noqa: SIM115 — long-lived handle
                self.journal_path, "a", encoding="utf-8"
            )
        self._journal.write(json.dumps(stamped, sort_keys=True) + "\n")
        self._journal.flush()
        if self.fsync:
            os.fsync(self._journal.fileno())
        self._since_snapshot += 1
        self.appends_total += 1
        obs_runtime.metrics().counter(obs_names.WAL_APPENDS).inc()
        return self._seq

    def should_snapshot(self) -> bool:
        """Whether enough mutations accumulated to roll a snapshot."""
        return self._since_snapshot >= self.snapshot_every

    def write_snapshot(self, state: dict) -> None:
        """Atomically persist ``state`` and truncate the journal."""
        payload = {
            "seq": self._seq,
            "written_at": time.time(),
            "state": state,
        }
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.snapshot_path)
        # journal restarts empty: everything up to seq lives in the snapshot
        if self._journal is not None:
            self._journal.close()
        self._journal = open(  # noqa: SIM115 — long-lived handle
            self.journal_path, "w", encoding="utf-8"
        )
        self._since_snapshot = 0
        self.snapshots_total += 1
        obs_runtime.metrics().counter(obs_names.WAL_SNAPSHOTS).inc()

    def close(self) -> None:
        """Close the journal handle (records already on disk stay)."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def load(self) -> "tuple[dict | None, list[dict]]":
        """Read ``(snapshot_state, journal_records)`` for replay.

        Returns ``(None, [])`` for a fresh directory.  Also primes this
        instance's sequence counter so post-recovery appends continue
        the numbering instead of colliding with replayed records.
        """
        require(self._journal is None and self._seq == 0,
                "load() must run before any append")
        state: "dict | None" = None
        base_seq = 0
        if self.snapshot_path.exists():
            try:
                payload = json.loads(
                    self.snapshot_path.read_text(encoding="utf-8")
                )
                state = payload["state"]
                base_seq = int(payload["seq"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise WalError(
                    f"corrupt WAL snapshot {self.snapshot_path}: {exc}"
                ) from exc
        records: "list[dict]" = []
        if self.journal_path.exists():
            lines = self.journal_path.read_text(
                encoding="utf-8"
            ).splitlines()
            for index, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    if index == len(lines) - 1:
                        break  # torn tail: the append SIGKILL interrupted
                    raise WalError(
                        f"corrupt WAL journal {self.journal_path} "
                        f"at line {index + 1}: {exc}"
                    ) from exc
                if int(record.get("seq", 0)) <= base_seq:
                    continue  # predates the snapshot (pre-truncate leftover)
                records.append(record)
        last_seq = max(
            [base_seq] + [int(r["seq"]) for r in records]
        )
        self._seq = last_seq
        self._since_snapshot = len(records)
        return state, records

"""Bounded multiprocessing execution of job specs.

``run_jobs_pooled`` fans a list of :class:`JobSpec` out over a
``multiprocessing.Pool`` of at most ``workers`` processes (chunk size
1, unordered collection, so long and short cells interleave freely)
and returns one :class:`JobOutcome` per spec.  ``workers <= 1`` runs
inline in the current process — the serial path and the pooled path
share the exact same per-job code, so they produce identical rows.

Per-job timeouts are enforced *inside* the worker with
``signal.setitimer`` (real time): the cell is interrupted where it
runs instead of leaving a zombie computation behind, and the outcome
records a timeout error.  On platforms without ``SIGALRM`` the
timeout degrades to unenforced (documented in docs/engine.md).

Workers never touch the cache, the parent's observability registry,
or the run ledger — single-writer bookkeeping stays in the parent.
When the parent has observability enabled (``collect_obs=True``) each
worker instead runs its job under a *fresh local* registry/tracer
(:func:`repro.obs.runtime.observed`), serializes the collected state
into the outcome, and the parent folds it back in with
:meth:`MetricsRegistry.merge` — so a ``--jobs 4 --obs`` sweep reports
the same solver/sim totals as a serial run.  ``profile=True``
additionally wraps the cell in :func:`repro.obs.profile.profile_call`
and ships the flattened stats home the same way.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import traceback
from dataclasses import dataclass

from repro.engine.jobspec import JobSpec, execute_spec
from repro.errors import JobTimeoutError


@dataclass
class JobOutcome:
    """What happened to one scheduled job."""

    index: int
    spec: JobSpec
    rows: "list[dict] | None"
    duration_s: float
    queue_wait_s: float
    cached: bool = False
    error: "str | None" = None
    #: worker-local MetricsRegistry.dump_state payload (obs runs only)
    obs_state: "dict | None" = None
    #: worker-local finished span trees (obs runs only)
    spans: "list[dict] | None" = None
    #: flattened cProfile stats (profiled runs only)
    profile: "dict | None" = None

    @property
    def ok(self) -> bool:
        """Return ok."""
        return self.error is None

    @property
    def timed_out(self) -> bool:
        """Whether the error records a per-job timeout."""
        return bool(self.error) and self.error.startswith(JobTimeoutError.__name__)


def _call_with_timeout(spec: JobSpec, timeout_s: "float | None") -> "list[dict]":
    """Execute one spec, interrupting it after ``timeout_s`` seconds."""
    if not timeout_s or not hasattr(signal, "SIGALRM"):
        return execute_spec(spec)

    def _on_alarm(signum, frame):
        raise JobTimeoutError(
            f"job {spec.describe()!r} exceeded its {timeout_s:.1f}s timeout"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return execute_spec(spec)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute(spec: JobSpec, timeout_s: "float | None", profile: bool):
    """Run one cell, optionally profiled; returns (rows, profile_stats)."""
    if profile:
        from repro.obs.profile import profile_call

        return profile_call(_call_with_timeout, spec, timeout_s)
    return _call_with_timeout(spec, timeout_s), None


def _worker(payload: tuple) -> tuple:
    """Pool entry point: run one job, never raise."""
    index, spec, timeout_s, submitted_at, collect_obs, profile = payload
    started_at = time.monotonic()
    obs_state = None
    spans = None
    profile_stats = None
    try:
        from repro.obs import runtime as obs_runtime

        # the parent is the ledger's single writer; a cell emitting
        # lifecycle events here would differ between serial and pooled
        with obs_runtime.unledgered():
            if collect_obs:
                with obs_runtime.observed() as session:
                    rows, profile_stats = _execute(spec, timeout_s, profile)
                    obs_state = session.registry.dump_state()
                    spans = [span.as_dict() for span in session.tracer.roots]
            else:
                rows, profile_stats = _execute(spec, timeout_s, profile)
        error = None
    except KeyboardInterrupt:  # pragma: no cover - interactive abort
        raise
    except BaseException as exc:
        rows = None
        error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=5)}"
    duration = time.monotonic() - started_at
    return (
        index,
        rows,
        duration,
        max(0.0, started_at - submitted_at),
        error,
        obs_state,
        spans,
        profile_stats,
    )


def run_jobs_pooled(
    specs: "list[JobSpec]",
    workers: int = 1,
    timeout_s: "float | None" = None,
    on_outcome=None,
    collect_obs: bool = False,
    profile: bool = False,
) -> "list[JobOutcome]":
    """Execute ``specs`` with at most ``workers`` processes.

    Outcomes are returned in spec order regardless of completion
    order; ``on_outcome`` (if given) fires once per completion, in
    completion order, for progress reporting, incremental cache
    writes, and telemetry folds.  ``collect_obs`` runs each job under
    a worker-local observability session shipped back in the outcome;
    ``profile`` additionally attaches flattened cProfile stats.
    """
    outcomes: "list[JobOutcome | None]" = [None] * len(specs)

    def record(result: tuple) -> JobOutcome:
        index, rows, duration, wait, error, obs_state, spans, profile_stats = result
        outcome = JobOutcome(
            index=index,
            spec=specs[index],
            rows=rows,
            duration_s=duration,
            queue_wait_s=wait,
            error=error,
            obs_state=obs_state,
            spans=spans,
            profile=profile_stats,
        )
        outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)
        return outcome

    payloads = [
        (index, spec, timeout_s, time.monotonic(), collect_obs, profile)
        for index, spec in enumerate(specs)
    ]
    if workers <= 1 or len(specs) <= 1:
        for payload in payloads:
            record(_worker(payload))
        return [outcome for outcome in outcomes if outcome is not None]

    with multiprocessing.Pool(processes=min(workers, len(specs))) as pool:
        for result in pool.imap_unordered(_worker, payloads, chunksize=1):
            record(result)
    return [outcome for outcome in outcomes if outcome is not None]

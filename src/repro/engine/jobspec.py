"""The unit of work the engine schedules: one deterministic job.

A :class:`JobSpec` names a *cell function* — a module-level callable
``cell(params, seed) -> list[dict]`` — plus the JSON-serializable
parameters and the derived seed it runs with.  Because the spec is
pure data, it can be pickled to a worker process, hashed into a cache
key, and re-created bit-for-bit by a later run of the same sweep.

Cell functions must be importable top-level callables (workers resolve
them by dotted path) and must derive *all* randomness from the spec's
seed; nothing else about the process may influence the rows they
return.
"""

from __future__ import annotations

import importlib
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import EngineError
from repro.utils.validation import require


@dataclass(frozen=True)
class JobSpec:
    """One schedulable cell of a sweep grid.

    ``fn`` is a ``"package.module:callable"`` path; ``params`` is the
    cell's full parameter dict (everything the cell needs — workers
    never read global experiment configs, so monkeypatched or
    programmatic grids parallelize correctly); ``seed`` is the cell's
    derived seed.  ``label`` is only for progress/error reporting and
    is excluded from the cache key.
    """

    experiment: str
    fn: str
    params: dict = field(default_factory=dict)
    seed: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        require(
            isinstance(self.fn, str) and ":" in self.fn,
            f"fn must be a 'module:callable' path, got {self.fn!r}",
        )
        require(isinstance(self.params, dict), "params must be a dict")

    def resolve(self) -> Callable:
        """Import and return the cell callable this spec names."""
        module_name, _, attr = self.fn.partition(":")
        try:
            module = importlib.import_module(module_name)
            fn = getattr(module, attr)
        except (ImportError, AttributeError) as exc:
            raise EngineError(f"cannot resolve job fn {self.fn!r}: {exc}") from exc
        if not callable(fn):
            raise EngineError(f"job fn {self.fn!r} is not callable")
        return fn

    def describe(self) -> str:
        """Short human-readable identity for progress and errors."""
        return self.label or f"{self.experiment}:{self.fn.partition(':')[0]}"


def normalize_value(value):
    """Coerce one cell-row value to a plain JSON-serializable scalar.

    NumPy scalars become native Python numbers via ``.item()``; lists
    and tuples normalize element-wise (tuples become lists, matching
    what a JSON round-trip through the cache would produce anyway).
    This runs on *every* execution path — serial, pooled, cached — so
    fresh rows and cache-loaded rows are indistinguishable.
    """
    # .item() first: numpy scalars subclass int/float and would otherwise
    # pass the isinstance check below without losing their numpy type
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return normalize_value(value.item())
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [normalize_value(item) for item in value]
    raise EngineError(
        f"cell rows must hold JSON-serializable scalars, got {type(value).__name__}"
    )


def normalize_rows(rows) -> "list[dict]":
    """Validate and canonicalize a cell function's return value."""
    require(isinstance(rows, list), "cell functions must return a list of row dicts")
    out = []
    for row in rows:
        require(isinstance(row, dict), "cell rows must be dicts")
        out.append({str(key): normalize_value(value) for key, value in row.items()})
    return out


def execute_spec(spec: JobSpec) -> "list[dict]":
    """Run one job in the current process and normalize its rows."""
    return normalize_rows(spec.resolve()(dict(spec.params), spec.seed))


def finite_or_nan(value: float) -> float:
    """The harness idiom ``x if math.isfinite(x) else nan`` as a helper."""
    value = float(value)
    return value if math.isfinite(value) else math.nan

"""Stable content hashing for cache keys.

A cache entry may only be reused when *everything* that determines a
job's rows is unchanged: the cell parameters, the seed, the cell
function's identity, and the code generation that produced it.  All of
that is folded into one SHA-256 over a canonical JSON encoding —
sorted keys, fixed separators, NaN/Infinity spelled out — so the key
is independent of dict insertion order, process, platform, and Python
version.

Code changes are captured by :func:`code_fingerprint`: the package
version plus a cache-schema epoch that engine maintainers bump when
the row payload format changes.  Bumping either invalidates every
prior entry at once — coarse, but sound; see docs/engine.md for the
invalidation rules.
"""

from __future__ import annotations

import hashlib
import json
import math

import repro
from repro.engine.jobspec import JobSpec
from repro.errors import EngineError

#: bump to invalidate every existing cache entry (payload format changes,
#: or a default-behavior change that alters rows for unchanged params —
#: v2: RetryPolicy's default backoff moved to decorrelated jitter)
CACHE_SCHEMA_VERSION = 2


def _canonical(value):
    """JSON-encodable form with deterministic float spelling."""
    if isinstance(value, float):
        if math.isnan(value):
            return {"__float__": "nan"}
        if math.isinf(value):
            return {"__float__": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, dict):
        return {str(key): _canonical(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, bool, int)) or value is None:
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return _canonical(value.item())
    raise EngineError(f"value of type {type(value).__name__} is not hashable as JSON")


def canonical_json(value) -> str:
    """Deterministic JSON text: sorted keys, no whitespace, tagged NaN."""
    return json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))


def sha256_hex(text: str) -> str:
    """SHA-256 hex digest of ``text`` (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def code_fingerprint() -> str:
    """The code generation cached rows belong to."""
    return f"repro-{repro.__version__}/cache-v{CACHE_SCHEMA_VERSION}"


def job_key(spec: JobSpec, fingerprint: "str | None" = None) -> str:
    """Content-addressed cache key of one job.

    Covers the code fingerprint, experiment name, cell function path,
    full parameter dict (solver names and kwargs included — they live
    in ``params``), and the derived seed.  Excludes the display label.
    """
    payload = {
        "fingerprint": fingerprint or code_fingerprint(),
        "experiment": spec.experiment,
        "fn": spec.fn,
        "params": spec.params,
        "seed": int(spec.seed),
    }
    return sha256_hex(canonical_json(payload))

"""repro.engine — parallel sweep execution with content-addressed caching.

Every experiment's sweep grid compiles into a list of deterministic
:class:`JobSpec` cells; the engine runs them on a bounded
``multiprocessing`` pool with per-job timeouts, memoizes each cell's
rows in an on-disk content-addressed cache, and returns results in
spec order — so serial, parallel, and cached executions of the same
grid produce identical tables.

Typical use (the harness does this for every experiment)::

    from repro.engine import EngineOptions, JobSpec, run_jobs

    specs = [
        JobSpec("f2", "repro.experiments.f2_devices:cell", params, seed)
        for params, seed in grid
    ]
    rows_per_job = run_jobs(specs, EngineOptions(jobs=4, cache_dir=".repro-cache"))

See docs/engine.md for the job model, the cache-key definition and
the invalidation rules.
"""

from repro.engine.cache import CacheStats, NullCache, ResultCache
from repro.engine.hashing import (
    CACHE_SCHEMA_VERSION,
    canonical_json,
    code_fingerprint,
    job_key,
    sha256_hex,
)
from repro.engine.jobspec import JobSpec, execute_spec, normalize_rows
from repro.engine.pool import JobOutcome, run_jobs_pooled
from repro.engine.progress import ProgressReporter
from repro.engine.runner import (
    EngineOptions,
    EngineReport,
    print_profile,
    print_report,
    run_jobs,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "EngineOptions",
    "EngineReport",
    "JobOutcome",
    "JobSpec",
    "NullCache",
    "ProgressReporter",
    "ResultCache",
    "canonical_json",
    "code_fingerprint",
    "execute_spec",
    "job_key",
    "normalize_rows",
    "print_profile",
    "print_report",
    "run_jobs",
    "run_jobs_pooled",
    "sha256_hex",
]

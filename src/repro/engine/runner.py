"""The engine front door: cache-aware execution of a job list.

:func:`run_jobs` is what the experiment harness and the CLI call: it
looks every :class:`JobSpec` up in the content-addressed cache,
executes only the misses on the worker pool, persists fresh rows, and
returns each job's rows *in spec order* — so a sweep's output table is
identical whether it ran serially, on four workers, or entirely from
cache.

Engine telemetry (jobs scheduled/completed/failed, cache hits and
misses, queue wait, job runtime, worker utilization) is recorded on
the parent's :mod:`repro.obs` registry.  When observability is
enabled, each worker's own solver/sim/RL telemetry — collected under
a worker-local registry (see :mod:`repro.engine.pool`) — is folded
into the parent registry as outcomes arrive, and worker span trees
are adopted by the parent tracer; cache hits recompute nothing and
therefore contribute no solver/sim samples.  Run-lifecycle events
(``run_start``, per-job ``job_start``/``job_end``, ``cache_hit``,
``run_end``) stream to the active :mod:`repro.obs.ledger`.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.cache import CacheStats, NullCache, ResultCache
from repro.engine.hashing import job_key
from repro.engine.jobspec import JobSpec
from repro.engine.pool import JobOutcome, run_jobs_pooled
from repro.engine.progress import ProgressReporter
from repro.errors import EngineError
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.utils.validation import require


@dataclass
class EngineOptions:
    """How a sweep should execute.

    The all-defaults instance reproduces the historical serial
    behavior exactly: one in-process worker, no cache, no progress
    output.  ``jobs`` is the worker-pool width; ``cache_dir`` enables
    the content-addressed result cache (``no_cache`` wins over it);
    ``timeout_s`` bounds each job's runtime; ``profile`` wraps every
    executed cell in cProfile and aggregates the stats into
    :attr:`last_profile` (cache hits are not profiled — nothing runs).
    """

    jobs: int = 1
    cache_dir: "str | Path | None" = None
    no_cache: bool = False
    timeout_s: "float | None" = None
    progress: bool = False
    profile: bool = False
    #: filled in by :func:`run_jobs` after each execution
    last_report: "EngineReport | None" = field(default=None, repr=False, compare=False)
    #: merged cProfile stats of the last execution (``profile=True`` only)
    last_profile: "dict | None" = field(default=None, repr=False, compare=False)

    def make_cache(self) -> "ResultCache | NullCache":
        """The cache this configuration asks for."""
        if self.no_cache or self.cache_dir is None:
            return NullCache()
        return ResultCache(Path(self.cache_dir))


@dataclass
class EngineReport:
    """Aggregate record of one :func:`run_jobs` execution."""

    scheduled: int
    completed: int
    failed: int
    cache: CacheStats
    wall_s: float
    busy_s: float
    workers: int

    @property
    def worker_utilization(self) -> float:
        """Busy worker-seconds over available worker-seconds."""
        if self.wall_s <= 0.0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.wall_s * self.workers))

    def summary(self) -> str:
        """One-line human summary (the CLI prints this to stderr)."""
        return (
            f"engine: {self.scheduled} jobs on {self.workers} worker(s) in "
            f"{self.wall_s:.1f}s — cache hits: {self.cache.hits}, "
            f"misses: {self.cache.misses}, hit ratio: {self.cache.hit_ratio:.0%}, "
            f"failed: {self.failed}, worker utilization: "
            f"{self.worker_utilization:.0%}"
        )


def run_jobs(
    specs: "list[JobSpec]", options: "EngineOptions | None" = None
) -> "list[list[dict]]":
    """Execute every spec (cache-first) and return rows per spec, in order.

    Raises :class:`~repro.errors.EngineError` listing every failed job
    if any cell crashed or timed out; partial results are still cached,
    so a re-run resumes from what completed.
    """
    options = options or EngineOptions()
    require(options.jobs >= 1, f"jobs must be >= 1, got {options.jobs}")
    registry = obs_runtime.metrics()
    ledger = obs_runtime.ledger()
    cache = options.make_cache()
    started = time.monotonic()
    registry.counter(obs_names.ENGINE_JOBS_SCHEDULED).inc(len(specs))
    ledger.emit(
        "run_start",
        jobs=len(specs),
        workers=options.jobs,
        experiment=specs[0].experiment if specs else "",
    )
    progress = ProgressReporter(
        total=len(specs), enabled=options.progress and len(specs) > 0
    )

    # cache pass: resolve hits, collect misses for the pool
    rows_by_index: "dict[int, list[dict]]" = {}
    pending: "list[tuple[int, JobSpec, str]]" = []
    for index, spec in enumerate(specs):
        key = job_key(spec)
        hit = cache.get(key)
        if hit is not None:
            rows_by_index[index] = hit
            ledger.emit("cache_hit", job=spec.describe(), seed=spec.seed)
            progress.update(cached=True)
        else:
            pending.append((index, spec, key))

    # execute the misses
    busy_s = 0.0
    failures: "list[JobOutcome]" = []
    profiles: "list[dict]" = []
    if pending:
        # outcomes come back with pool-local indices (0..len(pending));
        # these two maps translate back to cache keys and spec order
        pool_keys = [key for _, _, key in pending]
        queue_wait = registry.timer(obs_names.ENGINE_QUEUE_WAIT)
        job_runtime = registry.timer(obs_names.ENGINE_JOB_RUNTIME)
        for _, spec, _ in pending:
            ledger.emit("job_start", job=spec.describe(), seed=spec.seed)

        def on_outcome(outcome: JobOutcome) -> None:
            queue_wait.observe(outcome.queue_wait_s)
            job_runtime.observe(outcome.duration_s)
            # fold the worker-local telemetry into the parent session
            # before anything can read the registry, so partial states
            # are never visible
            if outcome.obs_state:
                registry.merge_state(outcome.obs_state)
            if outcome.spans:
                obs_runtime.tracer().adopt(outcome.spans)
            if outcome.profile:
                profiles.append(outcome.profile)
            status = "ok" if outcome.ok else (
                "timeout" if outcome.timed_out else "error"
            )
            ledger.emit(
                "job_end",
                job=outcome.spec.describe(),
                seed=outcome.spec.seed,
                status=status,
                duration_s=outcome.duration_s,
                queue_wait_s=outcome.queue_wait_s,
            )
            if outcome.ok:
                cache.put(pool_keys[outcome.index], outcome.spec, outcome.rows)
            progress.update(failed=not outcome.ok)

        index_map = {pool_i: index for pool_i, (index, _, _) in enumerate(pending)}
        outcomes = _run_pending(pending, options, on_outcome)
        for outcome in outcomes:
            busy_s += outcome.duration_s
            original = index_map[outcome.index]
            if outcome.ok:
                rows_by_index[original] = outcome.rows
            else:
                failures.append(outcome)

    wall_s = time.monotonic() - started
    completed = len(rows_by_index)
    registry.counter(obs_names.ENGINE_JOBS_COMPLETED).inc(completed)
    registry.counter(obs_names.ENGINE_JOBS_FAILED).inc(len(failures))
    registry.counter(obs_names.ENGINE_CACHE_HITS).inc(cache.stats.hits)
    registry.counter(obs_names.ENGINE_CACHE_MISSES).inc(cache.stats.misses)
    registry.counter(obs_names.ENGINE_CACHE_CORRUPT).inc(cache.stats.corrupt)
    report = EngineReport(
        scheduled=len(specs),
        completed=completed,
        failed=len(failures),
        cache=cache.stats,
        wall_s=wall_s,
        busy_s=busy_s,
        workers=max(1, min(options.jobs, max(1, len(specs)))),
    )
    registry.gauge(obs_names.ENGINE_WORKER_UTILIZATION).set(report.worker_utilization)
    options.last_report = report
    if options.profile:
        from repro.obs.profile import merge_profiles

        options.last_profile = merge_profiles(profiles)
    ledger.emit(
        "run_end",
        jobs=report.scheduled,
        completed=report.completed,
        failed=report.failed,
        cache_hits=cache.stats.hits,
        cache_misses=cache.stats.misses,
        wall_s=wall_s,
    )
    if failures:
        details = "; ".join(
            f"{outcome.spec.describe()} (seed {outcome.spec.seed}): "
            f"{(outcome.error or '').splitlines()[0]}"
            for outcome in failures
        )
        raise EngineError(f"{len(failures)} job(s) failed: {details}")
    return [rows_by_index[index] for index in range(len(specs))]


def _run_pending(pending, options: EngineOptions, on_outcome) -> "list[JobOutcome]":
    """Pool execution of the cache misses (indices are pool-local)."""
    return run_jobs_pooled(
        [spec for _, spec, _ in pending],
        workers=options.jobs,
        timeout_s=options.timeout_s,
        on_outcome=on_outcome,
        collect_obs=obs_runtime.is_enabled(),
        profile=options.profile,
    )


def print_report(options: "EngineOptions | None", stream=None) -> None:
    """Print the last engine summary, if any (CLI helper)."""
    if options is not None and options.last_report is not None:
        print(options.last_report.summary(), file=stream or sys.stderr)


def print_profile(options: "EngineOptions | None", top: int = 15, stream=None) -> None:
    """Print the last merged cell profile, if one was collected."""
    if options is not None and options.last_profile is not None:
        from repro.obs.profile import render_profile

        print(render_profile(options.last_profile, top=top), file=stream or sys.stderr)

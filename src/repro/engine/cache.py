"""Content-addressed on-disk result cache.

Layout: ``<cache_dir>/<key[:2]>/<key>.json`` — one JSON document per
job, sharded by key prefix so a full-scale sweep does not pile tens of
thousands of files into one directory.  Each entry embeds a SHA-256
checksum of its canonical row payload; :meth:`ResultCache.get`
re-verifies it (plus basic structure) on every read, so a truncated,
corrupted, or hand-edited entry is treated as a miss and recomputed —
never returned.

Writes go through :func:`repro.utils.fileio.atomic_write_text`, so an
interrupted sweep leaves either a complete entry or none at all, and
concurrent workers writing the same key are safe (last replace wins;
both wrote identical content by construction).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.hashing import canonical_json, code_fingerprint, sha256_hex
from repro.engine.jobspec import JobSpec
from repro.utils.fileio import atomic_write_text


@dataclass
class CacheStats:
    """Hit/miss accounting for one engine run."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        """Return lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """Content-addressed store of job row payloads."""

    root: Path
    fingerprint: str = field(default_factory=code_fingerprint)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Entry path of one cache key."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> "list[dict] | None":
        """Verified rows for ``key``, or ``None`` (miss or corruption).

        A malformed entry — unreadable JSON, missing fields, checksum
        mismatch — counts as both ``corrupt`` and a miss, and the
        caller recomputes; the bad file is removed so the recomputed
        entry replaces it.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        rows = payload.get("rows") if isinstance(payload, dict) else None
        checksum = payload.get("rows_sha256") if isinstance(payload, dict) else None
        if (
            not isinstance(rows, list)
            or not isinstance(checksum, str)
            or sha256_hex(canonical_json(rows)) != checksum
        ):
            self._quarantine(path)
            return None
        self.stats.hits += 1
        return rows

    def put(self, key: str, spec: JobSpec, rows: "list[dict]") -> Path:
        """Persist one job's rows atomically; returns the entry path."""
        entry = {
            "key": key,
            "fingerprint": self.fingerprint,
            "experiment": spec.experiment,
            "fn": spec.fn,
            "params": spec.params,
            "seed": int(spec.seed),
            "rows": rows,
            "rows_sha256": sha256_hex(canonical_json(rows)),
        }
        self.stats.writes += 1
        return atomic_write_text(self.path_for(key), json.dumps(entry, indent=1))

    def _quarantine(self, path: Path) -> None:
        """Drop a corrupt entry and account for it."""
        self.stats.corrupt += 1
        self.stats.misses += 1
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass  # unreadable *and* undeletable: the atomic replace on put() wins

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


class NullCache:
    """The disabled cache: every lookup misses, writes vanish."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    def get(self, key: str) -> None:
        """Always a miss."""
        self.stats.misses += 1
        return None

    def put(self, key: str, spec: JobSpec, rows: "list[dict]") -> None:
        """No-op."""

    def __len__(self) -> int:
        return 0

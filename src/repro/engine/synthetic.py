"""Synthetic cell functions for engine benchmarks and tests.

Real solver cells conflate engine behavior with solver behavior; these
cells isolate the engine.  ``latency_cell`` models a latency-bound job
(a measurement probe, a remote call) — it sleeps, so a worker pool
overlaps the waits and shows its concurrency even on a single core.
``cpu_cell`` burns deterministic arithmetic, so pool speedup tracks
the machine's truly available cores.  ``failing_cell`` and the row
payloads are deterministic in (params, seed), making all of them
cacheable like any experiment cell.
"""

from __future__ import annotations

import time

from repro.utils.rng import derive_seed


def latency_cell(params: dict, seed: int) -> "list[dict]":
    """Sleep ``sleep_s`` and return one deterministic row."""
    sleep_s = float(params.get("sleep_s", 0.05))
    time.sleep(sleep_s)
    return [
        {
            "cell": int(params.get("cell", 0)),
            "seed": int(seed),
            "value": float(derive_seed(seed, "latency") % 1000) / 1000.0,
        }
    ]


def cpu_cell(params: dict, seed: int) -> "list[dict]":
    """Burn ``iterations`` of integer arithmetic; deterministic result."""
    iterations = int(params.get("iterations", 200_000))
    accumulator = derive_seed(seed, "cpu") & 0xFFFF
    for i in range(iterations):
        accumulator = (accumulator * 1103515245 + 12345 + i) & 0x7FFFFFFF
    return [
        {
            "cell": int(params.get("cell", 0)),
            "seed": int(seed),
            "value": float(accumulator % 1000) / 1000.0,
        }
    ]


def failing_cell(params: dict, seed: int) -> "list[dict]":
    """Raise (or loop past any timeout) — the error-path test fixture."""
    if params.get("hang_s"):
        time.sleep(float(params["hang_s"]))
        return [{"cell": 0, "seed": int(seed), "value": 0.0}]
    raise RuntimeError(f"synthetic failure (seed {seed})")

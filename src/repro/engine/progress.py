"""Rate-limited progress line for long sweeps.

The engine reports to stderr (tables go to stdout; keeping the
channels separate means ``repro experiment f2 --jobs 4 > table.txt``
still shows progress).  Updates are throttled to one line per
``min_interval_s`` plus a final summary, so a thousand-job sweep does
not flood a CI log.
"""

from __future__ import annotations

import sys
import time


class ProgressReporter:
    """Prints ``engine: done/total (cached C, failed F) elapsed``."""

    def __init__(
        self,
        total: int,
        enabled: bool = True,
        stream=None,
        min_interval_s: float = 0.5,
    ) -> None:
        self.total = total
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.done = 0
        self.cached = 0
        self.failed = 0
        self._started = time.monotonic()
        self._last_emit = 0.0

    def update(self, cached: bool = False, failed: bool = False) -> None:
        """Record one finished job and maybe emit a line."""
        self.done += 1
        self.cached += int(cached)
        self.failed += int(failed)
        now = time.monotonic()
        if self.done == self.total or now - self._last_emit >= self.min_interval_s:
            self._last_emit = now
            self._emit()

    def _emit(self) -> None:
        if not self.enabled:
            return
        elapsed = time.monotonic() - self._started
        print(
            f"engine: {self.done}/{self.total} jobs "
            f"(cached {self.cached}, failed {self.failed}) {elapsed:.1f}s",
            file=self.stream,
        )

"""Task-lifecycle policies: timeouts, bounded backoff, dispatch modes.

:class:`RetryPolicy` is the knob set of the chaos experiments: how long
a task may be in flight before its timeout event fires, how many times
it is re-sent, and how the backoff between attempts grows.  Two backoff
shapes are available:

* ``decorrelated`` (the default) — decorrelated jitter: each delay is
  drawn uniformly from ``[base, 3 × previous]`` and capped, so the next
  sleep depends on the previous *draw*, not the attempt number.
  Concurrent retriers spread out instead of re-synchronizing on the
  same exponential schedule — the herd behavior plain exponential
  backoff is known for;
* ``exponential`` — the legacy shape (compat flag: old traces replay
  bit-for-bit under it): ``base * multiplier**attempt`` with
  multiplicative jitter and a hard cap, constructed so two properties
  hold for *every* parameterization (the Hypothesis tests pin them
  down):

  * **bounded** — every delay is in ``[0, max_delay_s]``;
  * **monotone** — a later attempt never backs off for less than an
    earlier one, regardless of the jitter draws, because the
    constructor requires ``multiplier >= 1 + jitter``.

  (Decorrelated jitter is bounded too, but deliberately *not*
  monotone — forgetting the attempt number is what decorrelates.)

Dispatch modes (who handles a failed attempt):

* ``none`` — no second chances; a failed task is lost (the availability
  baseline);
* ``retry`` — re-send to the same server after backoff (helps against
  transient faults, useless while the server stays down);
* ``failover`` — re-dispatch to the cheapest *healthy* alternate server
  by static delay (restores goodput while the home server is down, at
  the price of a delay spike).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive, require

#: who handles a failed attempt
DISPATCH_MODES = ("none", "retry", "failover")

#: how the delay between attempts grows
BACKOFF_MODES = ("decorrelated", "exponential")


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout, retry budget and backoff shape for one simulation."""

    max_retries: int = 3
    timeout_s: "float | None" = 0.25
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.5
    backoff: str = "decorrelated"

    def __post_init__(self) -> None:
        require(self.max_retries >= 0, "max_retries must be >= 0")
        if self.timeout_s is not None:
            check_positive(self.timeout_s, "timeout_s")
        check_positive(self.base_delay_s, "base_delay_s")
        check_positive(self.max_delay_s, "max_delay_s")
        require(self.base_delay_s <= self.max_delay_s,
                "base_delay_s must not exceed max_delay_s")
        check_nonnegative(self.jitter, "jitter")
        require(
            self.backoff in BACKOFF_MODES,
            f"unknown backoff mode {self.backoff!r}; known: {BACKOFF_MODES}",
        )
        if self.backoff == "exponential":
            require(
                self.multiplier >= 1.0 + self.jitter,
                "multiplier must be >= 1 + jitter (keeps backoff monotone "
                "in attempt number for every jitter draw)",
            )

    def should_retry(self, retries_done: int) -> bool:
        """Whether another attempt is allowed after ``retries_done`` retries."""
        return retries_done < self.max_retries

    def backoff_s(
        self,
        attempt: int,
        rng: np.random.Generator,
        prev_delay_s: "float | None" = None,
    ) -> float:
        """Delay before re-sending after failed attempt number ``attempt``.

        ``attempt`` counts failures so far (0 = first retry).

        ``decorrelated`` draws uniformly from ``[base, 3·prev]`` where
        ``prev`` is the previous delay actually drawn for this task
        (``prev_delay_s``; the base delay on the first retry) — the
        attempt number is deliberately ignored.  ``exponential`` grows
        the nominal delay as ``base * multiplier**attempt``, then
        multiplies by ``1 + jitter*U`` with ``U ~ Uniform[0, 1)``.
        Both shapes are clipped to ``max_delay_s``.
        """
        require(attempt >= 0, "attempt must be >= 0")
        if self.backoff == "exponential":
            nominal = self.base_delay_s * self.multiplier**attempt
            jittered = nominal * (1.0 + self.jitter * float(rng.random()))
            return min(self.max_delay_s, jittered)
        prev = self.base_delay_s if prev_delay_s is None else float(prev_delay_s)
        span = max(0.0, 3.0 * prev - self.base_delay_s)
        drawn = self.base_delay_s + float(rng.random()) * span
        return min(self.max_delay_s, drawn)

"""One-call chaos simulation: an assignment replayed under faults.

:func:`simulate_with_faults` is the fault-injection counterpart of
:func:`~repro.sim.runner.simulate_assignment`: same topology-backed
problem, same traffic model, but every task flows through a
:class:`~repro.faults.dispatch.TaskDispatcher` (timeout / retry /
failover per the chosen policy) while a
:class:`~repro.faults.injector.FaultInjector` drives the scenario's
crashes, stragglers and link degradations against the live components.

Determinism: the arrival and service processes use exactly the same
derived seeds as the fault-free runner, so for a fixed ``seed`` the
*offered load* is identical across dispatch modes — the comparison the
X6 experiment relies on.  The dispatcher's backoff jitter draws from
its own derived stream, so retries don't perturb arrivals either.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.faults.dispatch import TaskDispatcher
from repro.faults.injector import FaultInjector
from repro.faults.policies import RetryPolicy
from repro.faults.scenario import FaultScenario
from repro.model.solution import Assignment
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.sim.device import IoTTrafficSource
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRecorder, SimReport
from repro.sim.network import NetworkFabric
from repro.sim.server import EdgeServerQueue
from repro.topology.delay import TransmissionDelayModel
from repro.topology.routing import routing_paths
from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import check_nonnegative, check_positive, require
from repro.workload.arrivals import ArrivalProcess, PoissonProcess
from repro.workload.tasks import TaskFactory


def simulate_with_faults(
    assignment: Assignment,
    scenario: FaultScenario,
    duration_s: float = 60.0,
    seed: int = 0,
    mode: str = "retry",
    policy: "RetryPolicy | None" = None,
    crash_policy: str = "drop",
    rate_scale: float = 1.0,
    drain_s: float = 5.0,
    service: str = "exponential",
    task_factory: "TaskFactory | None" = None,
    arrivals: "dict[int, ArrivalProcess] | None" = None,
    warmup_s: float = 0.0,
    window_s: "float | None" = None,
) -> SimReport:
    """Simulate ``assignment`` under ``scenario`` for ``duration_s``.

    Parameters beyond :func:`~repro.sim.runner.simulate_assignment`:

    mode:
        Dispatch mode — ``"none"`` (failed tasks are lost), ``"retry"``
        (re-send to the same server after backoff) or ``"failover"``
        (re-dispatch to the cheapest healthy alternate).
    policy:
        :class:`RetryPolicy` (timeout, retry budget, backoff shape);
        defaults to ``RetryPolicy()``.
    crash_policy:
        What a crash does to queued tasks — ``"drop"`` loses them,
        ``"requeue"`` parks them for post-repair service.
    window_s:
        When set, the report carries a per-creation-window goodput
        timeline (see :meth:`MetricsRecorder.goodput_timeline`).
    """
    problem = assignment.problem
    if problem.graph is None or problem.devices is None or problem.servers is None:
        raise ValidationError(
            "simulation requires a topology-backed problem (use topology_instance)"
        )
    if not assignment.is_complete:
        raise ValidationError("cannot simulate a partial assignment")
    check_positive(duration_s, "duration_s")
    check_positive(rate_scale, "rate_scale")
    check_nonnegative(drain_s, "drain_s")
    check_nonnegative(warmup_s, "warmup_s")
    require(warmup_s < duration_s, "warmup_s must be shorter than duration_s")
    if policy is None:
        policy = RetryPolicy()

    sim = Simulator()
    recorder = MetricsRecorder(warmup_s=warmup_s, window_s=window_s)
    fabric = NetworkFabric(
        sim, problem.graph, rng=make_rng(derive_seed(seed, "fault-link-jitter"))
    )
    delay_model = TransmissionDelayModel()

    queues: list[EdgeServerQueue] = []
    for server in problem.servers:
        queues.append(
            EdgeServerQueue(
                sim,
                server,
                rng=make_rng(derive_seed(seed, "server", server.server_id)),
                service=service,
                crash_policy=crash_policy,
            )
        )

    dispatcher = TaskDispatcher(
        sim=sim,
        problem=problem,
        queues=queues,
        fabric=fabric,
        recorder=recorder,
        policy=policy,
        mode=mode,
        rng=make_rng(derive_seed(seed, "fault-dispatch")),
        delay_model=delay_model,
    )
    injector = FaultInjector(
        sim,
        scenario,
        queues={index: queue for index, queue in enumerate(queues)},
        fabric=fabric,
    )

    factory = task_factory if task_factory is not None else TaskFactory()
    sources: list[IoTTrafficSource] = []
    vector = assignment.vector
    for server_index, server in enumerate(problem.servers):
        assigned = np.flatnonzero(vector == server_index)
        if assigned.size == 0:
            continue
        device_nodes = [problem.devices[int(i)].node_id for i in assigned]
        paths = routing_paths(
            problem.graph, device_nodes, server.node_id, delay_model.link_weight
        )
        for device_index in assigned:
            device = problem.devices[int(device_index)]
            dispatcher.seed_path(
                device.device_id, server_index, paths[device.node_id]
            )
            process = (arrivals or {}).get(device.device_id) or PoissonProcess(
                device.rate_hz * rate_scale
            )
            if arrivals and device.device_id in arrivals and rate_scale != 1.0:
                process = arrivals[device.device_id]
            sources.append(
                IoTTrafficSource(
                    sim=sim,
                    device=device,
                    server_id=server.server_id,
                    path=paths[device.node_id],
                    fabric=fabric,
                    server_queue=queues[server_index],
                    arrivals=process,
                    task_factory=factory,
                    rng=make_rng(derive_seed(seed, "device", device.device_id)),
                    horizon_s=duration_s,
                    on_created=recorder.on_created,
                    sink=dispatcher.sink_for(server_index),
                )
            )

    with obs_runtime.tracer().span(
        obs_names.SPAN_CHAOS,
        scenario=scenario.name,
        fault_events=len(scenario),
        mode=mode,
        duration_s=duration_s,
        sources=len(sources),
    ):
        injector.arm()
        for source in sources:
            source.start()
        sim.run(until=duration_s + drain_s)

    accounted = (
        recorder.tasks_completed_total
        + recorder.tasks_lost
        + dispatcher.tasks_in_flight
    )
    if accounted != recorder.tasks_created:
        raise SimulationError(
            f"conservation violated: created={recorder.tasks_created} != "
            f"completed={recorder.tasks_completed_total} + "
            f"lost={recorder.tasks_lost} + in_flight={dispatcher.tasks_in_flight}"
        )
    registry = obs_runtime.metrics()
    registry.counter(obs_names.SIM_TASKS_CREATED).inc(recorder.tasks_created)
    registry.counter(obs_names.SIM_TASKS_COMPLETED).inc(recorder.tasks_completed_total)
    utilizations = [q.utilization(duration_s) for q in queues]
    if registry.enabled:
        link_hist = registry.histogram(obs_names.SIM_LINK_UTILIZATION)
        for value in fabric.link_utilization(duration_s).values():
            link_hist.observe(value)
        for queue, value in zip(queues, utilizations):
            registry.gauge(
                obs_names.SIM_SERVER_UTILIZATION,
                {"server": str(queue.server.server_id)},
            ).set(value)
    return recorder.report(duration_s=duration_s, server_utilization=utilizations)

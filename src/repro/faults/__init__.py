"""repro.faults — scriptable fault injection and task-lifecycle resilience.

The subsystem has four pieces, layered from description to execution:

* :mod:`repro.faults.scenario` — :class:`FaultScenario`, a deterministic,
  JSON-serializable schedule of mid-simulation faults (server crashes
  and repairs, straggler slowdowns, link degradation with jitter);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the component
  that arms a scenario on a live :class:`~repro.sim.engine.Simulator`
  and drives server queues and the network fabric through it;
* :mod:`repro.faults.policies` — :class:`RetryPolicy` (per-task timeout,
  bounded exponential backoff with jitter) and the dispatch modes
  (``none`` / ``retry`` / ``failover``);
* :mod:`repro.faults.runner` — :func:`simulate_with_faults`, the
  one-call chaos counterpart of
  :func:`~repro.sim.runner.simulate_assignment`.

The X6 chaos experiment compares dispatch policies on one shared fault
timeline; ``repro simulate --faults scenario.json`` exposes the same
machinery on the command line.
"""

from repro.faults.injector import FaultInjector
from repro.faults.policies import DISPATCH_MODES, RetryPolicy
from repro.faults.runner import simulate_with_faults
from repro.faults.scenario import FaultEventSpec, FaultScenario, compose

__all__ = [
    "DISPATCH_MODES",
    "FaultEventSpec",
    "FaultInjector",
    "FaultScenario",
    "RetryPolicy",
    "compose",
    "simulate_with_faults",
]

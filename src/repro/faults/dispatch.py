"""Task-lifecycle dispatch: timeouts, bounded retries, failover.

:class:`TaskDispatcher` sits between the traffic sources and the
network/server layer: every task is *dispatched* rather than thrown
straight at its assigned server, so the dispatcher can watch for
failures and give the task another chance per its
:class:`~repro.faults.policies.RetryPolicy` and dispatch mode.

Failure sources it handles uniformly:

* the server rejects the task (down at arrival, crashed while the task
  was queued or in service) — reported by
  :class:`~repro.sim.server.EdgeServerQueue` through ``on_failed``;
* the per-task timeout fires while the attempt is still in flight
  (covers tasks stuck behind a degraded link or a straggler server).

**Stale-copy discipline.**  A timed-out attempt may still have its task
object inside a link queue (links cannot be preempted).  Each re-send
therefore uses a *fresh clone* of the task, and the dispatcher tracks
the one live object per task id: the server-side ``admit`` guard drops
any object that is not the current live one, so a stale copy arriving
late can neither be served twice nor clobber the timestamps of the
attempt that succeeded.  Timeout events are cancelled on completion,
so a cancelled timeout can never fire (:class:`~repro.sim.events.Event`
supports cancellation).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.faults.policies import DISPATCH_MODES, RetryPolicy
from repro.model.problem import AssignmentProblem
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.metrics import MetricsRecorder
from repro.sim.network import NetworkFabric
from repro.sim.server import EdgeServerQueue
from repro.sim.task import Task
from repro.topology.delay import TransmissionDelayModel
from repro.topology.routing import Path, routing_paths
from repro.utils.validation import require


class TaskDispatcher:
    """Routes every task attempt and arbitrates its retries."""

    def __init__(
        self,
        sim: Simulator,
        problem: AssignmentProblem,
        queues: "list[EdgeServerQueue]",
        fabric: NetworkFabric,
        recorder: MetricsRecorder,
        policy: RetryPolicy,
        mode: str = "retry",
        rng: "np.random.Generator | None" = None,
        delay_model: "TransmissionDelayModel | None" = None,
    ) -> None:
        require(
            mode in DISPATCH_MODES,
            f"unknown dispatch mode {mode!r}; known: {DISPATCH_MODES}",
        )
        require(problem.graph is not None and problem.devices is not None,
                "dispatcher requires a topology-backed problem")
        self._sim = sim
        self._problem = problem
        self._queues = queues
        self._fabric = fabric
        self._recorder = recorder
        self.policy = policy
        self.mode = mode
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._delay_model = (
            delay_model if delay_model is not None else TransmissionDelayModel()
        )
        self._device_index = {
            device.device_id: index for index, device in enumerate(problem.devices)
        }
        #: the one live object per task id; anything else is a stale copy
        self._live: dict[int, Task] = {}
        #: server index the live attempt was sent to
        self._target: dict[int, int] = {}
        #: failures seen so far per task id (= retries already spent)
        self._attempts: dict[int, int] = {}
        #: last backoff drawn per task id (decorrelated jitter feeds on it)
        self._prev_backoff: dict[int, float] = {}
        self._timeout_events: dict[int, Event] = {}
        self._paths: dict[tuple[int, int], Path] = {}
        self.tasks_lost = 0
        self.tasks_done = 0
        metrics = obs_runtime.metrics()
        self._obs_timeouts = metrics.counter(obs_names.FAULTS_TASK_TIMEOUTS)
        self._obs_retries = metrics.counter(obs_names.FAULTS_TASK_RETRIES)
        self._obs_failovers = metrics.counter(obs_names.FAULTS_TASK_FAILOVERS)
        self._obs_lost = metrics.counter(obs_names.FAULTS_TASKS_LOST)
        self._ledger = obs_runtime.ledger()
        for queue in queues:
            queue.bind(
                on_complete=self._on_complete,
                on_failed=self._on_failed,
                admit=self._admit,
            )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def seed_path(self, device_id: int, server_index: int, path: Path) -> None:
        """Pre-populate the route cache (the runner knows home paths)."""
        self._paths[(device_id, server_index)] = path

    def _path(self, device_id: int, server_index: int) -> Path:
        key = (device_id, server_index)
        path = self._paths.get(key)
        if path is None:
            device = self._problem.devices[self._device_index[device_id]]
            server = self._queues[server_index].server
            routed = routing_paths(
                self._problem.graph,
                [device.node_id],
                server.node_id,
                self._delay_model.link_weight,
            )
            path = routed[device.node_id]
            self._paths[key] = path
        return path

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def dispatch(self, task: Task, server_index: int) -> None:
        """First attempt: send ``task`` toward its assigned server."""
        self._live[task.task_id] = task
        self._attempts[task.task_id] = 0
        self._send(task, server_index)

    def sink_for(self, server_index: int):
        """A per-source sink closure for :class:`IoTTrafficSource`."""
        def sink(task: Task) -> None:
            """Return sink."""
            self.dispatch(task, server_index)

        return sink

    def _send(self, task: Task, server_index: int) -> None:
        self._target[task.task_id] = server_index
        task.server_id = self._queues[server_index].server.server_id
        if self.policy.timeout_s is not None:
            self._timeout_events[task.task_id] = self._sim.schedule(
                self.policy.timeout_s, lambda: self._on_timeout(task)
            )
        path = self._path(task.device_id, server_index)
        self._fabric.forward(task, path, self._queues[server_index].submit)

    def _cancel_timeout(self, task_id: int) -> None:
        event = self._timeout_events.pop(task_id, None)
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # lifecycle callbacks (wired into every queue via ``bind``)
    # ------------------------------------------------------------------
    def _admit(self, task: Task) -> bool:
        return self._live.get(task.task_id) is task

    def _on_complete(self, task: Task) -> None:
        if self._live.get(task.task_id) is not task:
            return  # stale copy; cannot happen past _admit, but be safe
        self._forget(task.task_id)
        self.tasks_done += 1
        self._recorder.on_completed(task)

    def _on_failed(self, task: Task, reason: str) -> None:
        if self._live.get(task.task_id) is not task:
            return
        self._cancel_timeout(task.task_id)
        self._handle_failure(task, reason)

    def _on_timeout(self, task: Task) -> None:
        if self._live.get(task.task_id) is not task:
            return  # completed/re-sent in the same instant; event raced
        self._timeout_events.pop(task.task_id, None)
        self._obs_timeouts.inc()
        self._ledger.emit(
            "task_timeout",
            task=task.task_id,
            server=task.server_id,
            sim_t=self._sim.now,
        )
        self._recorder.on_timeout(task)
        # the attempt may be queued or in service; pull it back
        self._queues[self._target[task.task_id]].withdraw(task)
        self._handle_failure(task, "timeout")

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _handle_failure(self, task: Task, reason: str) -> None:
        retries_done = self._attempts[task.task_id]
        if self.mode == "none" or not self.policy.should_retry(retries_done):
            self._lose(task)
            return
        self._attempts[task.task_id] = retries_done + 1
        target = self._target[task.task_id]
        if self.mode == "failover":
            target = self._failover_target(task, avoid=target)
            self._obs_failovers.inc()
            self._ledger.emit(
                "task_failover",
                task=task.task_id,
                reason=reason,
                attempt=retries_done + 1,
                target=self._queues[target].server.server_id,
                sim_t=self._sim.now,
            )
            self._recorder.on_failover(task)
        else:
            self._obs_retries.inc()
            self._ledger.emit(
                "task_retry",
                task=task.task_id,
                reason=reason,
                attempt=retries_done + 1,
                sim_t=self._sim.now,
            )
            self._recorder.on_retry(task)
        backoff = self.policy.backoff_s(
            retries_done, self._rng,
            prev_delay_s=self._prev_backoff.get(task.task_id),
        )
        self._prev_backoff[task.task_id] = backoff
        # a fresh clone per attempt: the old object may survive in a link
        # queue, and identity is what _admit screens on
        clone = dataclasses.replace(task, arrived_at=None, completed_at=None)
        self._live[task.task_id] = clone

        def resend() -> None:
            """Return resend."""
            if self._live.get(task.task_id) is not clone:
                return  # lost/completed during backoff
            self._send(clone, target)

        self._sim.schedule(backoff, resend)

    def _failover_target(self, task: Task, avoid: int) -> int:
        """Cheapest *healthy* server by static delay; prefers alternates."""
        device_index = self._device_index[task.device_id]
        delays = self._problem.delay[device_index]
        candidates = [
            index for index, queue in enumerate(self._queues)
            if queue.is_up and index != avoid
        ]
        if not candidates:  # everyone else is down: retry in place
            return avoid
        return min(candidates, key=lambda index: float(delays[index]))

    def _lose(self, task: Task) -> None:
        self._forget(task.task_id)
        self.tasks_lost += 1
        self._obs_lost.inc()
        self._ledger.emit("task_lost", task=task.task_id, sim_t=self._sim.now)
        self._recorder.on_lost(task)

    def _forget(self, task_id: int) -> None:
        self._live.pop(task_id, None)
        self._target.pop(task_id, None)
        self._attempts.pop(task_id, None)
        self._prev_backoff.pop(task_id, None)
        self._cancel_timeout(task_id)

    # ------------------------------------------------------------------
    @property
    def tasks_in_flight(self) -> int:
        """Tasks dispatched but neither completed nor lost."""
        return len(self._live)

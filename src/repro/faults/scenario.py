"""Scriptable chaos scenarios: what fails, when, and for how long.

A :class:`FaultScenario` is a plain, deterministic schedule — a sorted
tuple of :class:`FaultEventSpec` — with no behaviour of its own; the
:class:`~repro.faults.injector.FaultInjector` turns it into scheduled
callbacks on a live simulator.  Keeping the description inert makes
scenarios serializable (JSON in, JSON out, byte-stable), composable
(:func:`compose` merges timelines) and replayable: the same scenario
file drives every policy in an A/B comparison over one shared fault
timeline.

JSON schema (see ``docs/faults.md`` for the full reference)::

    {
      "name": "crash-busiest",
      "events": [
        {"at_s": 10.0, "kind": "server_crash", "server": 2},
        {"at_s": 22.0, "kind": "server_repair", "server": 2},
        {"at_s": 5.0, "kind": "server_slowdown", "server": 1,
         "factor": 0.25, "duration_s": 8.0},
        {"at_s": 8.0, "kind": "link_degrade", "u": 3, "v": 7,
         "factor": 0.1, "extra_latency_s": 0.02, "jitter_s": 0.005,
         "duration_s": 12.0}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import SerializationError
from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import check_nonnegative, check_positive, require

#: every event kind the injector understands
EVENT_KINDS = (
    "server_crash",
    "server_repair",
    "server_slowdown",
    "link_degrade",
    "link_restore",
)

_SERVER_KINDS = ("server_crash", "server_repair", "server_slowdown")
_LINK_KINDS = ("link_degrade", "link_restore")


@dataclass(frozen=True)
class FaultEventSpec:
    """One scheduled fault.

    Attributes
    ----------
    at_s:
        Virtual time (seconds) at which the fault fires.
    kind:
        One of :data:`EVENT_KINDS`.
    server:
        Target server *index* for the ``server_*`` kinds.
    u, v:
        Endpoint node ids for the ``link_*`` kinds (both directions of
        the link are affected).
    factor:
        For ``server_slowdown``: service-rate multiplier (0.25 = a 4x
        straggler).  For ``link_degrade``: bandwidth multiplier.
    extra_latency_s / jitter_s:
        ``link_degrade`` only — added propagation delay, plus a
        per-packet uniform random extra in ``[0, jitter_s]``.
    duration_s:
        When set on ``server_slowdown`` / ``link_degrade``, the injector
        automatically restores the target after this long; ``None``
        means the fault persists until an explicit repair/restore event.
    """

    at_s: float
    kind: str
    server: "int | None" = None
    u: "int | None" = None
    v: "int | None" = None
    factor: float = 1.0
    extra_latency_s: float = 0.0
    jitter_s: float = 0.0
    duration_s: "float | None" = None

    def __post_init__(self) -> None:
        check_nonnegative(self.at_s, "at_s")
        require(self.kind in EVENT_KINDS, f"unknown fault kind {self.kind!r}")
        if self.kind in _SERVER_KINDS:
            require(self.server is not None and self.server >= 0,
                    f"{self.kind} needs a server index")
        if self.kind in _LINK_KINDS:
            require(self.u is not None and self.v is not None,
                    f"{self.kind} needs link endpoints u and v")
        if self.kind == "server_slowdown":
            check_positive(self.factor, "factor")
        if self.kind == "link_degrade":
            check_positive(self.factor, "factor")
            check_nonnegative(self.extra_latency_s, "extra_latency_s")
            check_nonnegative(self.jitter_s, "jitter_s")
        if self.duration_s is not None:
            check_positive(self.duration_s, "duration_s")

    def to_dict(self) -> dict:
        """JSON payload with defaulted/irrelevant fields omitted."""
        payload: dict = {"at_s": self.at_s, "kind": self.kind}
        if self.server is not None:
            payload["server"] = self.server
        if self.u is not None:
            payload["u"] = self.u
        if self.v is not None:
            payload["v"] = self.v
        if self.factor != 1.0:
            payload["factor"] = self.factor
        if self.extra_latency_s:
            payload["extra_latency_s"] = self.extra_latency_s
        if self.jitter_s:
            payload["jitter_s"] = self.jitter_s
        if self.duration_s is not None:
            payload["duration_s"] = self.duration_s
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEventSpec":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                at_s=float(payload["at_s"]),
                kind=str(payload["kind"]),
                server=payload.get("server"),
                u=payload.get("u"),
                v=payload.get("v"),
                factor=float(payload.get("factor", 1.0)),
                extra_latency_s=float(payload.get("extra_latency_s", 0.0)),
                jitter_s=float(payload.get("jitter_s", 0.0)),
                duration_s=payload.get("duration_s"),
            )
        except KeyError as exc:
            raise SerializationError(f"fault event missing field: {exc}") from exc


@dataclass(frozen=True)
class FaultScenario:
    """An ordered, inert fault timeline."""

    events: tuple[FaultEventSpec, ...] = ()
    name: str = "scenario"

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.at_s))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def shifted(self, offset_s: float) -> "FaultScenario":
        """Copy with every event delayed by ``offset_s``."""
        check_nonnegative(offset_s, "offset_s")
        return FaultScenario(
            events=tuple(
                FaultEventSpec(**{**_spec_kwargs(e), "at_s": e.at_s + offset_s})
                for e in self.events
            ),
            name=self.name,
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        return {"name": self.name, "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultScenario":
        """Inverse of :meth:`to_dict`."""
        try:
            events = tuple(FaultEventSpec.from_dict(e) for e in payload["events"])
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"invalid scenario payload: {exc}") from exc
        return cls(events=events, name=str(payload.get("name", "scenario")))

    def to_json(self) -> str:
        """Serialize to a JSON string (stable key order for byte-level diffs)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultScenario":
        """Parse a scenario previously produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: "str | Path") -> "FaultScenario":
        """Read a scenario JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def save(self, path: "str | Path") -> Path:
        """Write the scenario as JSON; returns the path."""
        target = Path(path)
        target.write_text(self.to_json(), encoding="utf-8")
        return target

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    @classmethod
    def single_crash(
        cls,
        server: int,
        at_s: float,
        repair_at_s: "float | None" = None,
        name: str = "single-crash",
    ) -> "FaultScenario":
        """Crash one server at ``at_s``, optionally repairing it later."""
        events = [FaultEventSpec(at_s=at_s, kind="server_crash", server=server)]
        if repair_at_s is not None:
            require(repair_at_s > at_s, "repair_at_s must be after at_s")
            events.append(
                FaultEventSpec(at_s=repair_at_s, kind="server_repair", server=server)
            )
        return cls(events=tuple(events), name=name)

    @classmethod
    def random(
        cls,
        n_servers: int,
        horizon_s: float,
        seed: int,
        crash_rate_hz: float = 0.02,
        mean_downtime_s: float = 10.0,
        slowdown_prob: float = 0.0,
        slowdown_factor: float = 0.25,
        name: str = "random-chaos",
    ) -> "FaultScenario":
        """Seeded crash/repair (and optional straggler) schedule.

        Per server, crash instants follow a Poisson process of rate
        ``crash_rate_hz`` and each outage lasts an exponential
        ``mean_downtime_s``; with probability ``slowdown_prob`` a crash
        is downgraded to a slowdown of the same duration.  Identical
        ``seed`` yields a byte-identical schedule (the replay/resume
        guarantee the determinism regression test pins down).
        """
        require(n_servers >= 1, "n_servers must be >= 1")
        check_positive(horizon_s, "horizon_s")
        check_positive(crash_rate_hz, "crash_rate_hz")
        check_positive(mean_downtime_s, "mean_downtime_s")
        events: list[FaultEventSpec] = []
        for server in range(n_servers):
            rng = make_rng(derive_seed(seed, "fault-scenario", server))
            t = float(rng.exponential(1.0 / crash_rate_hz))
            while t < horizon_s:
                downtime = float(rng.exponential(mean_downtime_s))
                if slowdown_prob > 0.0 and rng.random() < slowdown_prob:
                    events.append(FaultEventSpec(
                        at_s=t, kind="server_slowdown", server=server,
                        factor=slowdown_factor, duration_s=downtime,
                    ))
                else:
                    events.append(FaultEventSpec(
                        at_s=t, kind="server_crash", server=server))
                    repair_at = t + downtime
                    if repair_at < horizon_s:
                        events.append(FaultEventSpec(
                            at_s=repair_at, kind="server_repair", server=server))
                t += downtime + float(rng.exponential(1.0 / crash_rate_hz))
        return cls(events=tuple(events), name=name)


def _spec_kwargs(spec: FaultEventSpec) -> dict:
    return {f: getattr(spec, f) for f in spec.__dataclass_fields__}


def compose(*scenarios: FaultScenario, name: str = "composed") -> FaultScenario:
    """Merge several scenarios into one timeline (events re-sorted by time)."""
    events: list[FaultEventSpec] = []
    for scenario in scenarios:
        events.extend(scenario.events)
    return FaultScenario(events=tuple(events), name=name)

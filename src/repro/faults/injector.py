"""Arms a :class:`~repro.faults.scenario.FaultScenario` on a live simulator.

The injector is the bridge from description to execution: for each
:class:`~repro.faults.scenario.FaultEventSpec` it schedules a callback
at the spec's virtual time that drives the target component — server
queues crash/recover/slow down, the network fabric degrades/restores
links.  Events with a ``duration_s`` get an automatic restore scheduled
alongside the fault, so scenarios don't need to spell out both edges.

The injector never *creates* randomness: a scenario is already a fixed
timeline, so arming the same scenario twice produces the same sequence
of component calls at the same virtual times.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.faults.scenario import FaultEventSpec, FaultScenario
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.sim.engine import Simulator
from repro.sim.network import NetworkFabric
from repro.sim.server import EdgeServerQueue


class FaultInjector:
    """Schedules a scenario's faults against queues and the fabric."""

    def __init__(
        self,
        sim: Simulator,
        scenario: FaultScenario,
        queues: "dict[int, EdgeServerQueue]",
        fabric: "NetworkFabric | None" = None,
        on_event: "Callable[[FaultEventSpec], None] | None" = None,
    ) -> None:
        self._sim = sim
        self.scenario = scenario
        self._queues = queues
        self._fabric = fabric
        self._on_event = on_event
        self._armed = False
        self.events_fired = 0
        metrics = obs_runtime.metrics()
        self._crashes = metrics.counter(obs_names.FAULTS_SERVER_CRASHES)
        self._repairs = metrics.counter(obs_names.FAULTS_SERVER_REPAIRS)
        self._degradations = metrics.counter(obs_names.FAULTS_LINK_DEGRADATIONS)
        self._ledger = obs_runtime.ledger()
        self._validate()

    def _validate(self) -> None:
        for spec in self.scenario.events:
            if spec.server is not None and spec.server not in self._queues:
                raise SimulationError(
                    f"scenario {self.scenario.name!r} targets unknown server "
                    f"{spec.server} (known: {sorted(self._queues)})"
                )
            if spec.kind.startswith("link_") and self._fabric is None:
                raise SimulationError(
                    f"scenario {self.scenario.name!r} has link faults but the "
                    "injector was built without a network fabric"
                )

    def arm(self) -> None:
        """Schedule every event of the scenario; idempotent."""
        if self._armed:
            return
        self._armed = True
        for spec in self.scenario.events:
            self._sim.schedule_at(spec.at_s, self._handler(spec))

    def _handler(self, spec: FaultEventSpec) -> Callable[[], None]:
        def fire() -> None:
            """Apply the captured spec at its scheduled virtual time."""
            self._apply(spec)

        return fire

    def _apply(self, spec: FaultEventSpec) -> None:
        self.events_fired += 1
        obs_runtime.metrics().counter(
            obs_names.FAULTS_INJECTED, {"kind": spec.kind}
        ).inc()
        self._ledger.emit(
            "fault",
            kind=spec.kind,
            server=spec.server,
            sim_t=self._sim.now,
        )
        if spec.kind == "server_crash":
            self._crashes.inc()
            self._queues[spec.server].fail()
            if spec.duration_s is not None:
                self._sim.schedule(spec.duration_s, self._queues[spec.server].recover)
        elif spec.kind == "server_repair":
            self._repairs.inc()
            self._queues[spec.server].recover()
        elif spec.kind == "server_slowdown":
            queue = self._queues[spec.server]
            queue.set_speed_factor(spec.factor)
            if spec.duration_s is not None:
                self._sim.schedule(spec.duration_s, lambda: queue.set_speed_factor(1.0))
        elif spec.kind == "link_degrade":
            self._degradations.inc()
            assert self._fabric is not None
            self._fabric.degrade_link(
                spec.u, spec.v,
                bandwidth_factor=spec.factor,
                extra_latency_s=spec.extra_latency_s,
                jitter_s=spec.jitter_s,
            )
            if spec.duration_s is not None:
                self._sim.schedule(
                    spec.duration_s,
                    lambda: self._fabric.restore_link(spec.u, spec.v),
                )
        elif spec.kind == "link_restore":
            assert self._fabric is not None
            self._fabric.restore_link(spec.u, spec.v)
        if self._on_event is not None:
            self._on_event(spec)

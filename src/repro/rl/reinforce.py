"""REINFORCE policy gradient with a NumPy MLP.

The function-approximation member of the RL family: a one-hidden-layer
network maps the dense topology-aware features of each step to masked
softmax probabilities over servers.  Monte-Carlo policy gradient with
a moving-average baseline, undiscounted (finite horizon).  Like the
other RL solvers it is used as an anytime heuristic: the returned
assignment is the best feasible episode sampled during training.

No autograd: gradients of the two-layer tanh network are written out
by hand, which keeps the dependency surface at exactly NumPy.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.rl.env import AssignmentEnv
from repro.rl.features import feature_dim, state_features
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start
from repro.utils.validation import check_in_range, check_positive, require

_MASKED_LOGIT = -1e9


class ReinforceSolver(Solver):
    """Monte-Carlo policy gradient over the masked assignment MDP."""

    name = "reinforce"

    def __init__(
        self,
        episodes: int = 300,
        hidden: int = 32,
        learning_rate: float = 0.02,
        baseline_decay: float = 0.9,
        grad_clip: float = 5.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        require(episodes >= 1, "episodes must be >= 1")
        require(hidden >= 1, "hidden must be >= 1")
        check_positive(learning_rate, "learning_rate")
        check_in_range(baseline_decay, "baseline_decay", 0.0, 1.0)
        check_positive(grad_clip, "grad_clip")
        self.episodes = episodes
        self.hidden = hidden
        self.learning_rate = learning_rate
        self.baseline_decay = baseline_decay
        self.grad_clip = grad_clip

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        env = AssignmentEnv(problem, mask_infeasible=True)
        n_servers = problem.n_servers
        dim = feature_dim(n_servers)
        scale = 1.0 / math.sqrt(dim)
        w1 = rng.normal(0.0, scale, size=(self.hidden, dim))
        b1 = np.zeros(self.hidden)
        w2 = rng.normal(0.0, 1.0 / math.sqrt(self.hidden), size=(n_servers, self.hidden))
        b2 = np.zeros(n_servers)

        baseline = 0.0
        baseline_initialized = False
        best_cost = math.inf
        best_vector: "np.ndarray | None" = None
        episode_costs: list[float] = []

        for _ in range(self.episodes):
            env.reset()
            trajectory: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]] = []
            episode_return = 0.0
            while not env.done:
                mask = env.action_mask()
                x = state_features(env)
                hidden_pre = w1 @ x + b1
                hidden_act = np.tanh(hidden_pre)
                logits = w2 @ hidden_act + b2
                logits = np.where(mask, logits, _MASKED_LOGIT)
                logits = logits - logits.max()
                probs = np.exp(logits)
                probs /= probs.sum()
                action = int(rng.choice(n_servers, p=probs))
                _, reward, _, _ = env.step(action)
                episode_return += reward
                trajectory.append((x, hidden_act, probs, mask, action))

            result = env.rollout_result()
            episode_costs.append(result.total_delay if result.feasible else math.nan)
            if result.feasible and result.total_delay < best_cost:
                best_cost = result.total_delay
                best_vector = result.vector

            if not baseline_initialized:
                baseline = episode_return
                baseline_initialized = True
            else:
                baseline = (
                    self.baseline_decay * baseline
                    + (1.0 - self.baseline_decay) * episode_return
                )
            advantage = episode_return - baseline
            if advantage == 0.0:
                continue

            gw1 = np.zeros_like(w1)
            gb1 = np.zeros_like(b1)
            gw2 = np.zeros_like(w2)
            gb2 = np.zeros_like(b2)
            for x, hidden_act, probs, mask, action in trajectory:
                dlogits = -probs
                dlogits[action] += 1.0
                dlogits *= advantage
                dlogits = np.where(mask, dlogits, 0.0)
                gw2 += np.outer(dlogits, hidden_act)
                gb2 += dlogits
                dhidden = (w2.T @ dlogits) * (1.0 - hidden_act**2)
                gw1 += np.outer(dhidden, x)
                gb1 += dhidden
            # gradient ascent with clipping
            norm = math.sqrt(
                float(
                    np.sum(gw1**2) + np.sum(gb1**2) + np.sum(gw2**2) + np.sum(gb2**2)
                )
            )
            if norm > self.grad_clip:
                factor = self.grad_clip / norm
                gw1 *= factor
                gb1 *= factor
                gw2 *= factor
                gb2 *= factor
            w1 += self.learning_rate * gw1
            b1 += self.learning_rate * gb1
            w2 += self.learning_rate * gw2
            b2 += self.learning_rate * gb2

        if best_vector is None:
            return feasible_start(problem, rng), {
                "iterations": self.episodes,
                "episode_costs": episode_costs,
                "fallback": True,
            }
        return Assignment(problem, best_vector), {
            "iterations": self.episodes,
            "episode_costs": episode_costs,
        }

"""The sequential-assignment MDP.

One *episode* builds one complete assignment: at step ``t`` the agent
places device ``order[t]`` on a server; the episode ends when every
device is placed (success) or the current device fits nowhere
(dead end — only possible with masking on a pathologically tight
instance, and heavily penalized).

Rewards are negative normalized delays, so maximizing return minimizes
total communication delay; with ``gamma = 1`` the return of a complete
episode is an affine function of the paper's objective.

Feasibility masking (:meth:`AssignmentEnv.feasible_actions`) restricts
the action set to servers with residual capacity, which is how the
"none of the edge devices are overloaded" guarantee is enforced *by
construction* rather than by penalty.  The T3 ablation turns masking
off (``mask_infeasible=False``), replacing it with an overload penalty
in the reward.

The tabular state (:meth:`AssignmentEnv.state_key`) abstracts residual
capacities into ``load_buckets`` quantization levels per server; the
bucket count trades table size against aliasing and is also ablated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.utils.validation import check_nonnegative, require


@dataclass
class EpisodeResult:
    """Outcome of one rolled-out episode."""

    vector: np.ndarray
    total_delay: float
    feasible: bool
    steps: int
    dead_end: bool


class AssignmentEnv:
    """Sequential assignment environment over one problem instance."""

    #: reward for hitting a dead end (episode cannot be completed)
    DEAD_END_REWARD = -10.0

    def __init__(
        self,
        problem: AssignmentProblem,
        mask_infeasible: bool = True,
        overload_penalty: float = 10.0,
        load_buckets: int = 4,
        device_order: "np.ndarray | None" = None,
    ) -> None:
        self.problem = problem
        self.mask_infeasible = mask_infeasible
        self.overload_penalty = check_nonnegative(overload_penalty, "overload_penalty")
        require(load_buckets >= 1, "load_buckets must be >= 1")
        self.load_buckets = load_buckets
        if device_order is None:
            # decreasing demand: capacity-critical devices choose while
            # every server still has room (mirrors the exact solver)
            device_order = np.argsort(-np.mean(problem.demand, axis=1))
        order = np.asarray(device_order, dtype=np.int64)
        require(
            sorted(order.tolist()) == list(range(problem.n_devices)),
            "device_order must be a permutation of all devices",
        )
        self.order = order
        self._norm_delay = problem.normalized_delay()
        self.reset()

    # ------------------------------------------------------------------
    @property
    def n_steps(self) -> int:
        """Return n steps."""
        return self.problem.n_devices

    @property
    def n_actions(self) -> int:
        """Return n actions."""
        return self.problem.n_servers

    @property
    def current_device(self) -> int:
        """The device being placed at this step (episode must be live)."""
        require(not self.done, "episode is finished; call reset()")
        return int(self.order[self.t])

    def reset(self) -> tuple:
        """Start a new episode; returns the initial tabular state key."""
        self.t = 0
        self.residual = self.problem.capacity.copy()
        self.vector = np.full(self.problem.n_devices, -1, dtype=np.int64)
        self.done = False
        self.dead_end = False
        return self.state_key()

    # ------------------------------------------------------------------
    def action_mask(self) -> np.ndarray:
        """Boolean mask of allowed servers for the current device."""
        device = self.current_device
        if not self.mask_infeasible:
            return np.ones(self.n_actions, dtype=bool)
        return self.problem.demand[device] <= self.residual + 1e-12

    def feasible_actions(self) -> np.ndarray:
        """Indices of allowed servers (empty = dead end)."""
        return np.flatnonzero(self.action_mask())

    def state_key(self) -> tuple:
        """Hashable abstract state: (step, quantized residual fractions).

        Residual capacity of each server is quantized to
        ``load_buckets`` levels; the exact value matters less than the
        coarse "how full is each server" picture, and quantization is
        what keeps the Q-table tractable.
        """
        # a failed (zero-capacity) server reads as permanently full
        capacity = np.where(self.problem.capacity > 0, self.problem.capacity, 1.0)
        fractions = np.clip(
            np.where(self.problem.capacity > 0, self.residual / capacity, 0.0),
            0.0,
            1.0,
        )
        buckets = np.minimum(
            (fractions * self.load_buckets).astype(np.int64), self.load_buckets - 1
        )
        # a fully-empty server is informative: give exactly-full residual
        # its own top bucket value
        buckets[fractions >= 1.0 - 1e-12] = self.load_buckets - 1
        return (self.t, tuple(int(b) for b in buckets))

    # ------------------------------------------------------------------
    def step(self, action: int) -> tuple[tuple, float, bool, dict]:
        """Place the current device on server ``action``.

        Returns ``(next_state_key, reward, done, info)``.  Raises
        :class:`~repro.errors.ValidationError` for a masked action when
        masking is on — agents must sample from
        :meth:`feasible_actions`.
        """
        require(not self.done, "episode is finished; call reset()")
        require(0 <= action < self.n_actions, f"action {action} out of range")
        device = self.current_device
        demand = self.problem.demand[device, action]
        overflow = max(0.0, demand - float(self.residual[action]))
        if self.mask_infeasible and overflow > 1e-12:
            raise ValidationError(
                f"action {action} is masked for device {device} "
                f"(demand {demand:.2f} > residual {self.residual[action]:.2f})"
            )
        reward = -float(self._norm_delay[device, action])
        if overflow > 1e-12:
            reward -= self.overload_penalty * overflow / float(np.mean(self.problem.demand))
        self.vector[device] = action
        self.residual[action] -= demand
        self.t += 1
        info: dict = {}
        if self.t >= self.n_steps:
            self.done = True
        elif self.mask_infeasible and self.feasible_actions().size == 0:
            # next device fits nowhere: fail the episode
            self.done = True
            self.dead_end = True
            reward += self.DEAD_END_REWARD
            info["dead_end"] = True
        return self.state_key(), reward, self.done, info

    # ------------------------------------------------------------------
    def rollout_result(self) -> EpisodeResult:
        """Package the finished (or dead-ended) episode."""
        require(self.done, "episode is not finished")
        assignment = Assignment(self.problem, np.where(self.vector < 0, 0, self.vector))
        # only meaningful when complete; compute from the raw vector
        placed = self.vector >= 0
        total = float(
            np.sum(
                self.problem.delay[np.flatnonzero(placed), self.vector[placed]]
            )
        )
        feasible = bool(placed.all()) and not self.dead_end and assignment.is_feasible()
        return EpisodeResult(
            vector=self.vector.copy(),
            total_delay=total,
            feasible=feasible,
            steps=self.t,
            dead_end=self.dead_end,
        )

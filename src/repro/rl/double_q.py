"""Double Q-learning: the overestimation-bias ablation.

Standard Q-learning's ``max`` target systematically overestimates
action values under noise (Hasselt, 2010); Double Q-learning keeps two
tables, selects the argmax with one and evaluates it with the other.
In this finite-horizon, deterministic-reward MDP the bias is mild —
which is itself a useful finding the RL-design comparison can report —
but the variant completes the family: Q-learning (off-policy max),
SARSA (on-policy), Double Q (debiased off-policy).

Interface and defaults match :class:`~repro.rl.qlearning.QLearningSolver`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.rl.qlearning import QLearningSolver
from repro.solvers.greedy import feasible_start


class DoubleQLearningSolver(QLearningSolver):
    """Two-table debiased Q-learning over the masked assignment MDP."""

    name = "double_q"

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        env = self._make_env(problem)
        n_actions = env.n_actions
        table_a: dict[tuple, np.ndarray] = {}
        table_b: dict[tuple, np.ndarray] = {}

        def row(table: dict, state: tuple) -> np.ndarray:
            entry = table.get(state)
            if entry is None:
                entry = np.zeros(n_actions)
                table[state] = entry
            return entry

        best_cost = math.inf
        best_vector: "np.ndarray | None" = None
        episode_costs: list[float] = []
        dead_ends = 0

        for episode in range(self.episodes):
            eps = float(self.epsilon(episode))
            state = env.reset()
            while not env.done:
                actions = env.feasible_actions()
                if actions.size == 0:  # pragma: no cover - env ends episodes
                    break
                combined = row(table_a, state) + row(table_b, state)
                if rng.random() < eps:
                    action = self._explore_action(env, actions, rng)
                else:
                    action = self._exploit_action(env, combined, actions, rng)
                next_state, reward, done, _ = env.step(action)
                # flip a coin: update one table using the other's estimate
                update_a = rng.random() < 0.5
                learn = table_a if update_a else table_b
                evaluate = table_b if update_a else table_a
                if done:
                    target = reward
                else:
                    next_actions = env.feasible_actions()
                    learn_next = row(learn, next_state)
                    # select with the learning table, evaluate with the other
                    chosen = int(next_actions[int(np.argmax(learn_next[next_actions]))])
                    target = reward + self.gamma * float(row(evaluate, next_state)[chosen])
                learn_row = row(learn, state)
                learn_row[action] += self.alpha * (target - learn_row[action])
                state = next_state
            result = env.rollout_result()
            if result.dead_end:
                dead_ends += 1
            episode_costs.append(result.total_delay if result.feasible else math.nan)
            if result.feasible and result.total_delay < best_cost:
                best_cost = result.total_delay
                best_vector = result.vector

        if best_vector is None:
            return feasible_start(problem, rng), {
                "iterations": self.episodes,
                "episode_costs": episode_costs,
                "dead_ends": dead_ends,
                "fallback": True,
            }
        best_vector = self._post_process(problem, best_vector)
        return Assignment(problem, best_vector), {
            "iterations": self.episodes,
            "episode_costs": episode_costs,
            "dead_ends": dead_ends,
            "q_states": len(table_a) + len(table_b),
        }

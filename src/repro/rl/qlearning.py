"""Tabular Q-learning over the sequential-assignment MDP.

The solver trains for a fixed episode budget and returns the **best
feasible episode** encountered — the standard way RL is used as a
combinatorial-optimization heuristic: the learned Q-table steers the
sampling distribution toward low-delay feasible assignments, and the
incumbent memory turns stochastic exploration into an anytime solver
whose output can only improve with budget.

``extra`` of the result carries the per-episode cost curve, which is
what the F6 convergence figure plots.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.rl.env import AssignmentEnv
from repro.rl.schedules import ExponentialDecay
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start
from repro.utils.validation import check_in_range, check_positive, require


class QLearningSolver(Solver):
    """Epsilon-greedy tabular Q-learning (the plain variant).

    Parameters
    ----------
    episodes:
        Training episode budget; also the anytime knob.
    alpha:
        Learning rate of the Q-update.
    gamma:
        Discount; 1.0 (undiscounted) is correct for this finite-horizon
        objective and is the default.
    epsilon:
        Exploration schedule (callable episode -> probability); default
        decays exponentially from 1.0 to a 0.05 floor.
    load_buckets / mask_infeasible / overload_penalty:
        Forwarded to :class:`~repro.rl.env.AssignmentEnv`; masking on
        is the paper's overload guarantee, and the T3 ablation flips it.
    """

    name = "qlearning"

    def __init__(
        self,
        episodes: int = 400,
        alpha: float = 0.2,
        gamma: float = 1.0,
        epsilon=None,
        load_buckets: int = 4,
        mask_infeasible: bool = True,
        overload_penalty: float = 10.0,
        device_order: str = "demand",
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        require(episodes >= 1, "episodes must be >= 1")
        check_in_range(alpha, "alpha", 0.0, 1.0, low_inclusive=False)
        check_in_range(gamma, "gamma", 0.0, 1.0)
        require(
            device_order in ("demand", "index", "random"),
            f"device_order must be demand|index|random, got {device_order!r}",
        )
        self.episodes = episodes
        self.alpha = alpha
        self.gamma = gamma
        self.device_order = device_order
        if epsilon is None:
            # reach the floor about two thirds of the way through training
            epsilon = ExponentialDecay(1.0, 0.05, rate=5.0 / max(episodes, 1))
        self.epsilon = epsilon
        self.load_buckets = load_buckets
        self.mask_infeasible = mask_infeasible
        self.overload_penalty = check_positive(overload_penalty, "overload_penalty")

    # ------------------------------------------------------------------
    # hooks the topology-aware agent overrides
    # ------------------------------------------------------------------
    def _make_env(self, problem: AssignmentProblem) -> AssignmentEnv:
        if self.device_order == "index":
            order = np.arange(problem.n_devices)
        elif self.device_order == "random":
            # fixed shuffle derived from the solver seed: episodes share
            # one order, so the tabular state stays consistent
            from repro.utils.rng import derive_seed, make_rng

            shuffle_rng = make_rng(derive_seed(self.seed or 0, "device-order"))
            order = shuffle_rng.permutation(problem.n_devices)
        else:
            order = None  # env default: decreasing demand
        return AssignmentEnv(
            problem,
            mask_infeasible=self.mask_infeasible,
            overload_penalty=self.overload_penalty,
            load_buckets=self.load_buckets,
            device_order=order,
        )

    def _explore_action(self, env: AssignmentEnv, actions: np.ndarray, rng) -> int:
        """Exploration move: uniform among allowed actions."""
        return int(actions[rng.integers(actions.size)])

    def _exploit_action(
        self, env: AssignmentEnv, q_row: np.ndarray, actions: np.ndarray, rng
    ) -> int:
        """Greedy move: max-Q allowed action (first index on ties)."""
        return int(actions[int(np.argmax(q_row[actions]))])

    def _post_process(self, problem: AssignmentProblem, vector: np.ndarray) -> np.ndarray:
        """Optional polish of the incumbent (identity here)."""
        return vector

    # ------------------------------------------------------------------
    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        env = self._make_env(problem)
        n_actions = env.n_actions
        q_table: dict[tuple, np.ndarray] = {}

        def q_row(state: tuple) -> np.ndarray:
            """Return q row."""
            row = q_table.get(state)
            if row is None:
                row = np.zeros(n_actions)
                q_table[state] = row
            return row

        best_cost = math.inf
        best_vector: "np.ndarray | None" = None
        episode_costs: list[float] = []
        dead_ends = 0

        # episode telemetry: local instrument handles keep the training
        # loop at one no-op attribute call per sample when obs is off
        registry = obs_runtime.metrics()
        labels = {"solver": self.name}
        episodes_total = registry.counter(obs_names.RL_EPISODES, labels)
        episode_cost_hist = registry.histogram(obs_names.RL_EPISODE_COST, labels)
        epsilon_gauge = registry.gauge(obs_names.RL_EPSILON, labels)
        mask_blocked = registry.counter(obs_names.RL_MASK_BLOCKED, labels)
        dead_end_total = registry.counter(obs_names.RL_DEAD_ENDS, labels)

        with self.phase("train"):
            for episode in range(self.episodes):
                eps = float(self.epsilon(episode))
                epsilon_gauge.set(eps)
                state = env.reset()
                while not env.done:
                    actions = env.feasible_actions()
                    if actions.size == 0:  # pragma: no cover - env ends episodes itself
                        break
                    mask_blocked.inc(n_actions - actions.size)
                    row = q_row(state)
                    if rng.random() < eps:
                        action = self._explore_action(env, actions, rng)
                    else:
                        action = self._exploit_action(env, row, actions, rng)
                    next_state, reward, done, _ = env.step(action)
                    if done:
                        target = reward
                    else:
                        next_actions = env.feasible_actions()
                        next_row = q_row(next_state)
                        target = reward + self.gamma * float(
                            np.max(next_row[next_actions])
                        )
                    row[action] += self.alpha * (target - row[action])
                    state = next_state
                result = env.rollout_result()
                episodes_total.inc()
                if result.dead_end:
                    dead_ends += 1
                    dead_end_total.inc()
                episode_costs.append(
                    result.total_delay if result.feasible else math.nan
                )
                if result.feasible:
                    episode_cost_hist.observe(result.total_delay)
                    if result.total_delay < best_cost:
                        best_cost = result.total_delay
                        best_vector = result.vector

        registry.gauge(obs_names.RL_Q_STATES, labels).set(len(q_table))
        if best_vector is None:
            fallback = feasible_start(problem, rng)
            return fallback, {
                "iterations": self.episodes,
                "episode_costs": episode_costs,
                "dead_ends": dead_ends,
                "fallback": True,
            }
        with self.phase("polish"):
            best_vector = self._post_process(problem, best_vector)
        return Assignment(problem, best_vector), {
            "iterations": self.episodes,
            "episode_costs": episode_costs,
            "dead_ends": dead_ends,
            "q_states": len(q_table),
        }

"""TACC: the topology-aware RL agent — the paper's headline algorithm.

:class:`TaccSolver` is Q-learning specialized with the three
ingredients the title and abstract call out:

1. **Topology awareness in exploration.**  Instead of exploring
   uniformly, exploratory moves sample servers from a Boltzmann
   distribution over *routed-path delays* — near servers (in network
   terms, not geometric terms) are tried more, so the agent spends its
   episode budget in the region of the solution space where good
   assignments live.

2. **Feasibility masking.**  Actions that would overload a server are
   excluded from the action set, so every completed episode satisfies
   "none of the edge devices are overloaded" by construction.

3. **Best-episode memory + local polish.**  The returned assignment is
   the best feasible episode ever rolled out, refined by a few passes
   of feasibility-preserving shift/swap local search.  The polish is
   cheap (the RL already landed near a minimum) and is ablated in T3.

Everything else (state abstraction, Q-update, schedules) is inherited
from :class:`~repro.rl.qlearning.QLearningSolver`.
"""

from __future__ import annotations

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.rl.env import AssignmentEnv
from repro.rl.qlearning import QLearningSolver
from repro.solvers.local_search import (
    _apply_shift,
    _apply_swap,
    _shift_delta,
    _swap_delta,
)
from repro.utils.validation import check_positive


class TaccSolver(QLearningSolver):
    """Topology Aware Cluster Configuration solver."""

    name = "tacc"

    def __init__(
        self,
        episodes: int = 400,
        exploration_temperature: float = 0.25,
        polish: bool = True,
        polish_passes: int = 30,
        **kwargs,
    ) -> None:
        super().__init__(episodes=episodes, **kwargs)
        self.exploration_temperature = check_positive(
            exploration_temperature, "exploration_temperature"
        )
        self.polish = polish
        self.polish_passes = polish_passes
        self._delay_preference: "np.ndarray | None" = None

    def _make_env(self, problem: AssignmentProblem) -> AssignmentEnv:
        env = super()._make_env(problem)
        # Boltzmann preference over normalized routed delays, one row
        # per device: exp(-d / T) — the topology-aware exploration prior
        norm = problem.normalized_delay()
        logits = -norm / self.exploration_temperature
        logits -= logits.max(axis=1, keepdims=True)
        weights = np.exp(logits)
        self._delay_preference = weights / weights.sum(axis=1, keepdims=True)
        return env

    def _explore_action(self, env: AssignmentEnv, actions: np.ndarray, rng) -> int:
        """Sample allowed servers proportionally to exp(-delay / T)."""
        assert self._delay_preference is not None
        weights = self._delay_preference[env.current_device, actions]
        total = float(weights.sum())
        if total <= 0:  # pragma: no cover - defensive
            return int(actions[rng.integers(actions.size)])
        return int(rng.choice(actions, p=weights / total))

    def _exploit_action(
        self, env: AssignmentEnv, q_row: np.ndarray, actions: np.ndarray, rng
    ) -> int:
        """Max-Q allowed action; ties broken by lowest routed delay."""
        values = q_row[actions]
        best = values.max()
        tied = actions[values >= best - 1e-12]
        if tied.size == 1:
            return int(tied[0])
        delays = env.problem.delay[env.current_device, tied]
        return int(tied[int(np.argmin(delays))])

    def _post_process(self, problem: AssignmentProblem, vector: np.ndarray) -> np.ndarray:
        if not self.polish:
            return vector
        return polish_assignment(problem, vector, max_passes=self.polish_passes)


def polish_assignment(
    problem: AssignmentProblem,
    vector: np.ndarray,
    max_passes: int = 30,
) -> np.ndarray:
    """Feasibility-preserving best-improvement shift/swap descent.

    Small helper shared by the TACC polish step and the dynamic
    reconfiguration controller (which polishes incumbent assignments
    after mobility shifts instead of re-solving from scratch).
    """
    vector = np.asarray(vector, dtype=np.int64).copy()
    loads = np.zeros(problem.n_servers)
    np.add.at(loads, vector, problem.demand[np.arange(problem.n_devices), vector])
    n, m = problem.n_devices, problem.n_servers
    for _ in range(max_passes):
        best_delta = -1e-15
        best_move = None
        for device in range(n):
            for server in range(m):
                delta = _shift_delta(problem, vector, loads, device, server)
                if delta is not None and delta < best_delta:
                    best_delta = delta
                    best_move = ("shift", device, server)
        for a in range(n):
            for b in range(a + 1, n):
                delta = _swap_delta(problem, vector, loads, a, b)
                if delta is not None and delta < best_delta:
                    best_delta = delta
                    best_move = ("swap", a, b)
        if best_move is None:
            break
        kind, x, y = best_move
        if kind == "shift":
            _apply_shift(problem, vector, loads, x, y)
        else:
            _apply_swap(problem, vector, loads, x, y)
    return vector

"""RL-based assignment heuristics — the paper's contribution.

The abstract proposes "RL based heuristics to obtain a near-optimal
assignment of IoT devices to the edge cluster while ensuring that none
of the edge devices are overloaded".  This package implements that
design space:

* :mod:`repro.rl.env` — the sequential-assignment MDP: one episode
  assigns all devices, one step assigns one device to one server;
  feasibility masking makes overload *impossible by construction*;
* :mod:`repro.rl.qlearning` — tabular Q-learning over an abstracted
  (device, quantized-residual-loads) state;
* :mod:`repro.rl.bandit` — per-device UCB bandits (the lightest
  "RL based heuristic");
* :mod:`repro.rl.reinforce` — REINFORCE policy gradient with a NumPy
  MLP over topology-aware features;
* :mod:`repro.rl.agent` — :class:`~repro.rl.agent.TaccSolver`, the
  headline algorithm: Q-learning + topology-aware (delay-softmax)
  exploration + feasibility masking + best-episode memory + local
  search polish.

All of them implement the common :class:`~repro.solvers.base.Solver`
interface and are registered as ``"qlearning"``, ``"bandit"``,
``"reinforce"`` and ``"tacc"``.
"""

from repro.rl.agent import TaccSolver
from repro.rl.bandit import BanditSolver
from repro.rl.double_q import DoubleQLearningSolver
from repro.rl.env import AssignmentEnv, EpisodeResult
from repro.rl.qlearning import QLearningSolver
from repro.rl.reinforce import ReinforceSolver
from repro.rl.sarsa import SarsaSolver
from repro.rl.schedules import ConstantSchedule, ExponentialDecay, LinearDecay

__all__ = [
    "TaccSolver",
    "BanditSolver",
    "DoubleQLearningSolver",
    "AssignmentEnv",
    "EpisodeResult",
    "QLearningSolver",
    "ReinforceSolver",
    "SarsaSolver",
    "ConstantSchedule",
    "ExponentialDecay",
    "LinearDecay",
]

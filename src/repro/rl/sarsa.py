"""SARSA: the on-policy counterpart of the Q-learning heuristic.

Included for the RL-design ablation: Q-learning bootstraps off the
*greedy* next action (off-policy), SARSA off the action the behaviour
policy *actually takes* — under heavy exploration the two learn
measurably different value surfaces, and comparing them isolates how
much of TACC's performance comes from the off-policy max.

Interface, state abstraction and best-episode memory are identical to
:class:`~repro.rl.qlearning.QLearningSolver`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.rl.qlearning import QLearningSolver
from repro.solvers.greedy import feasible_start


class SarsaSolver(QLearningSolver):
    """On-policy TD(0) over the masked assignment MDP."""

    name = "sarsa"

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        env = self._make_env(problem)
        n_actions = env.n_actions
        q_table: dict[tuple, np.ndarray] = {}

        def q_row(state: tuple) -> np.ndarray:
            """Return q row."""
            row = q_table.get(state)
            if row is None:
                row = np.zeros(n_actions)
                q_table[state] = row
            return row

        def choose(state: tuple, actions: np.ndarray, eps: float) -> int:
            """Return choose."""
            if rng.random() < eps:
                return self._explore_action(env, actions, rng)
            return self._exploit_action(env, q_row(state), actions, rng)

        best_cost = math.inf
        best_vector: "np.ndarray | None" = None
        episode_costs: list[float] = []
        dead_ends = 0

        for episode in range(self.episodes):
            eps = float(self.epsilon(episode))
            state = env.reset()
            actions = env.feasible_actions()
            if actions.size == 0:  # pragma: no cover - degenerate instance
                break
            action = choose(state, actions, eps)
            while True:
                next_state, reward, done, _ = env.step(action)
                if done:
                    row = q_row(state)
                    row[action] += self.alpha * (reward - row[action])
                    break
                next_actions = env.feasible_actions()
                next_action = choose(next_state, next_actions, eps)
                # on-policy target: the action we will actually take
                target = reward + self.gamma * q_row(next_state)[next_action]
                row = q_row(state)
                row[action] += self.alpha * (target - row[action])
                state, action = next_state, next_action
            result = env.rollout_result()
            if result.dead_end:
                dead_ends += 1
            episode_costs.append(result.total_delay if result.feasible else math.nan)
            if result.feasible and result.total_delay < best_cost:
                best_cost = result.total_delay
                best_vector = result.vector

        if best_vector is None:
            return feasible_start(problem, rng), {
                "iterations": self.episodes,
                "episode_costs": episode_costs,
                "dead_ends": dead_ends,
                "fallback": True,
            }
        best_vector = self._post_process(problem, best_vector)
        return Assignment(problem, best_vector), {
            "iterations": self.episodes,
            "episode_costs": episode_costs,
            "dead_ends": dead_ends,
            "q_states": len(q_table),
        }

"""Exploration/learning-rate schedules for the RL heuristics."""

from __future__ import annotations

import math

from repro.utils.validation import check_nonnegative, check_positive, require


class ConstantSchedule:
    """Always returns the same value."""

    def __init__(self, value: float) -> None:
        self.value = check_nonnegative(value, "value")

    def __call__(self, step: int) -> float:
        return self.value


class ExponentialDecay:
    """``end + (start - end) * exp(-rate * step)``.

    The default exploration schedule: fast early decay, a floor that
    keeps a trickle of exploration for the whole run.
    """

    def __init__(self, start: float, end: float, rate: float) -> None:
        self.start = check_nonnegative(start, "start")
        self.end = check_nonnegative(end, "end")
        self.rate = check_positive(rate, "rate")
        require(start >= end, "start must be >= end")

    def __call__(self, step: int) -> float:
        return self.end + (self.start - self.end) * math.exp(-self.rate * step)


class LinearDecay:
    """Linear ramp from ``start`` to ``end`` over ``steps`` steps, then flat."""

    def __init__(self, start: float, end: float, steps: int) -> None:
        self.start = check_nonnegative(start, "start")
        self.end = check_nonnegative(end, "end")
        require(steps >= 1, "steps must be >= 1")
        self.steps = steps

    def __call__(self, step: int) -> float:
        if step >= self.steps:
            return self.end
        fraction = step / self.steps
        return self.start + (self.end - self.start) * fraction

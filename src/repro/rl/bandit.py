"""Per-device UCB bandits — the lightest "RL based heuristic".

Each device owns an independent UCB1 bandit over the servers.  A round
rolls one episode through the masked environment: each device pulls
the allowed arm with the highest upper confidence bound and is
rewarded with its negative normalized delay.  Because arms interact
only through the shared capacity mask, the bandit view is an
approximation — which is exactly why it is a useful lower rung of the
RL ladder to compare TACC against: it captures "learn per-device
server preferences" without any credit for sequencing.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.rl.env import AssignmentEnv
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start
from repro.utils.validation import check_nonnegative, require


class BanditSolver(Solver):
    """UCB1 bandit per device, rolled out through the masked env."""

    name = "bandit"

    def __init__(
        self,
        rounds: int = 200,
        exploration: float = 0.5,
        load_buckets: int = 4,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        require(rounds >= 1, "rounds must be >= 1")
        check_nonnegative(exploration, "exploration")
        self.rounds = rounds
        self.exploration = exploration
        self.load_buckets = load_buckets

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        env = AssignmentEnv(problem, mask_infeasible=True, load_buckets=self.load_buckets)
        n, m = problem.n_devices, problem.n_servers
        pulls = np.zeros((n, m))
        value = np.zeros((n, m))
        best_cost = math.inf
        best_vector: "np.ndarray | None" = None
        episode_costs: list[float] = []

        for round_index in range(self.rounds):
            env.reset()
            chosen: list[tuple[int, int, float]] = []
            while not env.done:
                device = env.current_device
                actions = env.feasible_actions()
                if actions.size == 0:  # pragma: no cover - env ends episodes
                    break
                total = pulls[device].sum()
                scores = np.empty(actions.size)
                for k, server in enumerate(actions):
                    if pulls[device, server] == 0:
                        scores[k] = math.inf  # force one pull per arm
                    else:
                        bonus = self.exploration * math.sqrt(
                            math.log(total + 1.0) / pulls[device, server]
                        )
                        scores[k] = value[device, server] + bonus
                top = scores.max()
                tied = actions[scores >= top - 1e-15]
                action = int(tied[rng.integers(tied.size)])
                _, reward, _, _ = env.step(action)
                chosen.append((device, action, reward))
            for device, action, reward in chosen:
                pulls[device, action] += 1.0
                value[device, action] += (reward - value[device, action]) / pulls[device, action]
            result = env.rollout_result()
            episode_costs.append(result.total_delay if result.feasible else math.nan)
            if result.feasible and result.total_delay < best_cost:
                best_cost = result.total_delay
                best_vector = result.vector

        if best_vector is None:
            return feasible_start(problem, rng), {
                "iterations": self.rounds,
                "episode_costs": episode_costs,
                "fallback": True,
            }
        return Assignment(problem, best_vector), {
            "iterations": self.rounds,
            "episode_costs": episode_costs,
        }

"""State featurization for the policy-gradient solver.

The tabular solvers abstract state into buckets; the policy-gradient
solver instead feeds a dense feature vector to a small MLP:

* normalized routed delays of the current device to every server
  (the topology-aware signal),
* residual capacity fraction of every server,
* the current device's demand relative to mean capacity,
* episode progress.

Feature dimension is ``2 * n_servers + 2``.
"""

from __future__ import annotations

import numpy as np

from repro.rl.env import AssignmentEnv


def feature_dim(n_servers: int) -> int:
    """Length of the feature vector for a cluster of ``n_servers``."""
    return 2 * n_servers + 2


def state_features(env: AssignmentEnv) -> np.ndarray:
    """Dense features of the environment's current step."""
    problem = env.problem
    device = env.current_device
    norm_delay = problem.normalized_delay()[device]
    # failed servers have zero capacity; report them as exactly full
    capacity = np.where(problem.capacity > 0, problem.capacity, 1.0)
    residual_fraction = np.clip(
        np.where(problem.capacity > 0, env.residual / capacity, 0.0), 0.0, 1.0
    )
    demand_fraction = float(
        np.mean(problem.demand[device]) / np.mean(problem.capacity)
    )
    progress = env.t / env.n_steps
    return np.concatenate(
        [norm_delay, residual_fraction, [demand_fraction, progress]]
    ).astype(np.float64)

"""Netem wrappers for the line-JSON transports.

Two wrappers, one per side of the sharded tier:

* :class:`NetemBackend` wraps a shard backend
  (:class:`~repro.shard.backend.InProcessBackend` /
  :class:`~repro.shard.backend.TCPBackend`) and degrades the
  ``router->shard`` edge;
* :class:`NetemClient` wraps a protocol client
  (:class:`~repro.serve.server.InProcessClient` /
  :class:`~repro.serve.server.TCPClient`) and degrades the
  ``client->server`` edge.

Semantics (both wrappers):

* **forward drop / partition** — the request never reaches the peer.
  The backend raises :class:`~repro.errors.ShardUnavailableError`
  (and records a breaker failure) so the router's failover machinery
  reacts exactly as it would to a dead shard; the client reports a
  ``timeout`` response, which is what the caller would eventually
  observe.
* **reverse drop / partition** — the request *was applied* but the
  answer is lost: the gray-failure ambiguity.  Same surface as a
  forward drop; the router additionally fires a best-effort cleanup
  release for lost assigns (see :mod:`repro.shard.router`).
* **delay / reorder hold** — an ``asyncio.sleep`` before the hop;
  held messages are overtaken by later traffic, which is precisely
  how reordering manifests on a pipelined connection.
* **slow** — gray degradation: the measured service time is padded to
  ``factor×`` and injected delays are stretched, so the shard looks
  alive-but-slow rather than dead (what hedging is for).
* **duplicate** — materialized only for idempotent ops (``stats``):
  a second copy is sent and its response discarded, exercising the
  id-matching absorb path.  Non-idempotent ops (assign/release/
  migrate) are counted but not re-applied — the wire may duplicate,
  an at-most-once server must not.
"""

from __future__ import annotations

import asyncio
import time

import dataclasses

from repro.errors import DeadlineExceededError, ShardUnavailableError
from repro.netem.engine import NetemDecision, NetemEngine
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.obs.trace import context_from_wire as trace_context_from_wire
from repro.serve.protocol import Request, Response

#: ops a duplicate may actually re-send without corrupting state
_IDEMPOTENT_OPS = ("stats",)

#: a duplicate's outcome must stay invisible: these are the failures a
#: second copy of an idempotent op can legitimately hit (dropped again
#: by netem, deadline-stamped stats probe expiring, transport death)
_ABSORBED_ERRORS = (
    ShardUnavailableError,
    DeadlineExceededError,
    ConnectionError,
    OSError,
)


def _decision_event(span, when: str, decision: NetemDecision) -> None:
    """Annotate the wire span with one netem rule hit (no-ops when the
    decision passed the message through untouched)."""
    if (
        not decision.lost
        and not decision.duplicate
        and decision.sleep_s <= 0
        and decision.slow_factor == 1.0
    ):
        return
    span.event(
        f"netem_{when}",
        lost=decision.lost,
        delay_ms=round(decision.sleep_s * 1e3, 3),
        duplicate=decision.duplicate,
        slow_factor=round(decision.slow_factor, 3),
    )


class NetemBackend:
    """Degrade the ``router->shard`` edge in front of a real backend."""

    def __init__(
        self,
        inner,
        engine: NetemEngine,
        edge: "str | None" = None,
    ) -> None:
        self.inner = inner
        self.engine = engine
        self.edge = edge or f"router->{inner.name}"
        self._absorb_tasks: "set[asyncio.Task]" = set()

    @property
    def name(self) -> str:
        """The wrapped backend's shard name."""
        return self.inner.name

    @property
    def breaker(self):
        """The wrapped backend's circuit breaker (shared, not copied)."""
        return self.inner.breaker

    async def request(self, request: Request) -> Response:
        """Forward one request through the scripted wire."""
        recorder = obs_runtime.spans()
        with recorder.start_span(
            obs_names.XSPAN_NETEM,
            trace_context_from_wire(request.trace),
            edge=self.edge,
        ) as span:
            if span.context is not None:
                # the shard parents onto the wire span, so injected
                # delay shows as wire time, not shard service time
                request = dataclasses.replace(
                    request, trace=span.context.to_dict()
                )
            forward = self.engine.decide(self.edge, "forward")
            _decision_event(span, "forward", forward)
            if forward.sleep_s > 0:
                await asyncio.sleep(forward.sleep_s)
            if forward.lost:
                # same failure surface as a dead shard: breaker + typed
                # raise
                self.breaker.record_failure()
                raise ShardUnavailableError(
                    f"netem dropped request to shard {self.name!r}"
                )
            if forward.duplicate and request.op in _IDEMPOTENT_OPS:
                self._spawn_absorb(request)
            started = time.perf_counter()
            response = await self.inner.request(request)
            service_s = time.perf_counter() - started
            reverse = self.engine.decide(self.edge, "reverse")
            _decision_event(span, "reverse", reverse)
            slow = max(forward.slow_factor, reverse.slow_factor)
            extra_s = reverse.sleep_s + service_s * (slow - 1.0)
            if extra_s > 0:
                await asyncio.sleep(extra_s)
            if reverse.lost:
                # the shard applied the request; only the answer is gone
                self.breaker.record_failure()
                raise ShardUnavailableError(
                    f"netem dropped response from shard {self.name!r}"
                )
            return response

    def _spawn_absorb(self, request: Request) -> None:
        # hold a strong reference: a bare ensure_future can be GC'd
        # mid-flight, and an unretrieved exception would log noise
        task = asyncio.ensure_future(self._absorb(request))
        self._absorb_tasks.add(task)
        task.add_done_callback(self._absorb_tasks.discard)

    async def _absorb(self, request: Request) -> None:
        # the duplicate's response is unmatched at the caller; whatever
        # happens to it must stay invisible
        try:
            await self.inner.request(request)
        except _ABSORBED_ERRORS:
            return

    async def close(self) -> None:
        """Close the wrapped backend."""
        await self.inner.close()


class NetemClient:
    """Degrade the ``client->server`` edge in front of a protocol client.

    Keeps the client surface (``send``/``flush``/``request``/``close``)
    so the load generator drives it unchanged; lost messages surface as
    ``timeout`` responses, never as hangs or protocol errors.
    """

    def __init__(
        self,
        inner,
        engine: NetemEngine,
        edge: str = "client->server",
    ) -> None:
        self.inner = inner
        self.engine = engine
        self.edge = edge
        self._absorb_tasks: "set[asyncio.Task]" = set()

    def send(self, request: Request) -> "asyncio.Future[Response]":
        """Route one request through the wire; resolves like the inner send."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Response]" = loop.create_future()
        task = loop.create_task(self._relay(request))

        def _finish(t: "asyncio.Task") -> None:
            if future.done():
                return
            exc = t.exception()
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(t.result())

        task.add_done_callback(_finish)
        return future

    async def _relay(self, request: Request) -> Response:
        recorder = obs_runtime.spans()
        with recorder.start_span(
            obs_names.XSPAN_NETEM,
            trace_context_from_wire(request.trace),
            edge=self.edge,
        ) as span:
            if span.context is not None:
                request = dataclasses.replace(
                    request, trace=span.context.to_dict()
                )
            forward = self.engine.decide(self.edge, "forward")
            _decision_event(span, "forward", forward)
            if forward.sleep_s > 0:
                await asyncio.sleep(forward.sleep_s)
            if forward.lost:
                return Response(
                    id=request.id, status="timeout",
                    detail="netem: request dropped",
                )
            if forward.duplicate and request.op in _IDEMPOTENT_OPS:
                task = asyncio.ensure_future(self._absorb(request))
                self._absorb_tasks.add(task)
                task.add_done_callback(self._absorb_tasks.discard)
            started = time.perf_counter()
            response = await self.inner.request(request)
            service_s = time.perf_counter() - started
            reverse = self.engine.decide(self.edge, "reverse")
            _decision_event(span, "reverse", reverse)
            slow = max(forward.slow_factor, reverse.slow_factor)
            extra_s = reverse.sleep_s + service_s * (slow - 1.0)
            if extra_s > 0:
                await asyncio.sleep(extra_s)
            if reverse.lost:
                return Response(
                    id=request.id, status="timeout",
                    detail="netem: response dropped",
                )
            return response

    async def _absorb(self, request: Request) -> None:
        try:
            await self.inner.request(request)
        except _ABSORBED_ERRORS:
            return

    async def flush(self) -> None:
        """Flush the wrapped client."""
        await self.inner.flush()

    async def request(self, request: Request) -> Response:
        """Submit one request and await its (possibly degraded) response."""
        return await self.send(request)

    async def close(self) -> None:
        """Close the wrapped client."""
        await self.inner.close()

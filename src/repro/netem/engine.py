"""Deterministic decision engine behind a netem script.

:class:`NetemEngine` answers one question, one message at a time:
*what happens to the n-th message on this edge in this direction?*
The answer — drop, added delay, duplication, reorder hold, slow
factor — is a pure function of ``(script.seed, edge, direction, n)``
plus the set of rules active at the decision's wall-clock offset.
Each decision draws from a fresh generator seeded with
:func:`~repro.utils.rng.derive_seed` over exactly those labels, so:

* two engines running the same script against the same clock produce
  **identical decision traces** (the Hypothesis property the tests
  pin down) — independent of asyncio scheduling, host load, or how
  many other edges interleave;
* decisions on different edges come from statistically independent
  streams, not one shared cursor that any new traffic would shift.

The clock is injectable (tests freeze it); only the rule *windows*
consult it, never the draws.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.netem.script import NetemScript
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.utils.rng import derive_seed, make_rng


@dataclass(frozen=True)
class NetemDecision:
    """What the wire does to one message."""

    edge: str
    direction: str
    n: int                    # per-(edge, direction) message counter
    drop: bool = False        # message lost (probabilistic drop)
    partitioned: bool = False  # message lost (partition rule)
    delay_s: float = 0.0      # injected latency before delivery
    duplicate: bool = False   # a second copy is emitted
    hold_s: float = 0.0       # reorder hold (later messages overtake)
    slow_factor: float = 1.0  # gray degradation: stretch service time

    @property
    def lost(self) -> bool:
        """Whether the message never arrives."""
        return self.drop or self.partitioned

    @property
    def sleep_s(self) -> float:
        """Total injected sleep before delivery (delay + reorder hold)."""
        return self.delay_s + self.hold_s

    def trace_entry(self) -> tuple:
        """Byte-stable tuple for determinism comparisons."""
        return (
            self.edge, self.direction, self.n,
            self.lost, round(self.delay_s, 9),
            self.duplicate, round(self.hold_s, 9),
            round(self.slow_factor, 9),
        )


class NetemEngine:
    """Turn a :class:`NetemScript` into per-message decisions."""

    def __init__(
        self,
        script: NetemScript,
        clock=time.monotonic,
        record_trace: bool = False,
    ) -> None:
        self.script = script
        self._clock = clock
        self._t0 = clock()
        self._counters: "dict[tuple[str, str], int]" = {}
        self.record_trace = record_trace
        self.trace: "list[tuple]" = []
        self.decisions_total = 0
        self.lost_total = 0

    def elapsed_s(self) -> float:
        """Seconds since the engine started (rule-window time base)."""
        return self._clock() - self._t0

    def decide(self, edge: str, direction: str) -> NetemDecision:
        """One message's fate; advances the (edge, direction) counter."""
        key = (edge, direction)
        n = self._counters.get(key, 0)
        self._counters[key] = n + 1
        active = self.script.matching(edge, direction, self.elapsed_s())
        decision = self._decide(edge, direction, n, active)
        self.decisions_total += 1
        if decision.lost:
            self.lost_total += 1
        if self.record_trace:
            self.trace.append(decision.trace_entry())
        self._observe(decision)
        return decision

    def _decide(
        self, edge: str, direction: str, n: int, active: "list"
    ) -> NetemDecision:
        if not active:
            return NetemDecision(edge=edge, direction=direction, n=n)
        # one independent stream per message: immune to cross-edge
        # interleaving and to how many draws each rule set consumes
        rng = make_rng(
            derive_seed(self.script.seed, "netem", edge, direction, n)
        )
        drop = partitioned = duplicate = False
        delay_s = hold_s = 0.0
        slow_factor = 1.0
        for rule in active:
            if rule.kind == "partition":
                partitioned = True
            elif rule.kind == "drop":
                if float(rng.random()) < rule.p:
                    drop = True
            elif rule.kind == "delay":
                delay_s += rule.delay_s + rule.jitter_s * float(rng.random())
            elif rule.kind == "duplicate":
                if float(rng.random()) < rule.p:
                    duplicate = True
            elif rule.kind == "reorder":
                if float(rng.random()) < rule.p:
                    hold_s += rule.extra_s
            elif rule.kind == "slow":
                slow_factor *= rule.factor
        return NetemDecision(
            edge=edge, direction=direction, n=n,
            drop=drop, partitioned=partitioned,
            delay_s=delay_s * slow_factor,
            duplicate=duplicate, hold_s=hold_s,
            slow_factor=slow_factor,
        )

    def _observe(self, decision: NetemDecision) -> None:
        registry = obs_runtime.metrics()
        if decision.partitioned:
            registry.counter(obs_names.NETEM_PARTITIONED).inc()
        elif decision.drop:
            registry.counter(obs_names.NETEM_DROPPED).inc()
        if decision.delay_s > 0 or decision.hold_s > 0:
            registry.counter(obs_names.NETEM_DELAYED).inc()
            registry.timer(obs_names.NETEM_INJECTED_DELAY).observe(
                decision.sleep_s
            )
        if decision.duplicate:
            registry.counter(obs_names.NETEM_DUPLICATED).inc()
        if decision.hold_s > 0:
            registry.counter(obs_names.NETEM_REORDERED).inc()

    def stats(self) -> dict:
        """Lifetime totals (JSON-ready)."""
        return {
            "decisions_total": self.decisions_total,
            "lost_total": self.lost_total,
            "edges": sorted(f"{e}#{d}" for e, d in self._counters),
        }

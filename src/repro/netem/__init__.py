"""Deterministic seeded network-fault injection for the serving tier.

``repro.netem`` degrades the live line-JSON transport the way
:mod:`repro.faults` degrades the simulated cluster: a JSON script
(:class:`NetemScript`) describes per-edge drop, delay, duplication,
reordering, asymmetric partitions and gray slow-shard degradation; a
seeded :class:`NetemEngine` turns it into reproducible per-message
decisions; :class:`NetemBackend`/:class:`NetemClient` apply those
decisions around the existing backends and clients without either side
knowing.  See ``docs/robustness.md``.
"""

from repro.netem.engine import NetemDecision, NetemEngine
from repro.netem.script import (
    DIRECTIONS,
    RULE_KINDS,
    NetemRule,
    NetemScript,
    load_script,
    script_from_scenario,
)
from repro.netem.transport import NetemBackend, NetemClient

__all__ = [
    "DIRECTIONS",
    "RULE_KINDS",
    "NetemDecision",
    "NetemEngine",
    "NetemBackend",
    "NetemClient",
    "NetemRule",
    "NetemScript",
    "load_script",
    "script_from_scenario",
]

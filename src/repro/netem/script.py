"""Scriptable wire chaos: which edges misbehave, how, and when.

A :class:`NetemScript` is the on-wire sibling of
:class:`~repro.faults.scenario.FaultScenario` — an inert, sorted,
JSON-round-trippable description of network faults that the
:class:`~repro.netem.engine.NetemEngine` turns into deterministic
per-message decisions.  Where the fault scenario mutates the *simulated*
cluster (crash a server, degrade a link inside the DES), a netem script
degrades the *real transport* between live processes: the line-JSON
edges ``client->router`` and ``router->shard-N``.

JSON schema (see ``docs/robustness.md`` for the full reference)::

    {
      "name": "gray-edge",
      "seed": 7,
      "rules": [
        {"kind": "drop", "edge": "router->shard-0", "p": 0.2},
        {"kind": "delay", "edge": "*->shard-1", "delay_s": 0.02,
         "jitter_s": 0.01},
        {"kind": "slow", "edge": "router->shard-1", "factor": 4.0},
        {"kind": "partition", "edge": "router->shard-2",
         "direction": "forward", "at_s": 2.0, "duration_s": 3.0},
        {"kind": "duplicate", "edge": "*", "p": 0.05},
        {"kind": "reorder", "edge": "*", "p": 0.1, "extra_s": 0.02}
      ]
    }

Edges are ``src->dst`` strings matched with shell-style wildcards per
side; ``direction`` selects the request path (``forward``), the
response path (``reverse``) or ``both``, which is how *asymmetric*
partitions are expressed.  ``at_s``/``duration_s`` window a rule
relative to engine start, so one script describes a whole gray-failure
schedule.

One JSON file can drive both chaos layers: :func:`load_script` reads a
bare script, a fault-scenario file carrying an embedded ``"netem"``
object, or (fallback) converts a scenario's ``server_slowdown`` /
``server_crash`` events into wire rules via
:func:`script_from_scenario`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path

from repro.errors import NetemError, SerializationError
from repro.faults.scenario import FaultScenario
from repro.utils.validation import check_nonnegative, check_positive, require

#: every rule kind the engine understands
RULE_KINDS = ("drop", "delay", "duplicate", "reorder", "partition", "slow")

#: message directions a rule may apply to
DIRECTIONS = ("forward", "reverse", "both")


@dataclass(frozen=True)
class NetemRule:
    """One wire-fault rule.

    Attributes
    ----------
    kind:
        One of :data:`RULE_KINDS`.  ``drop`` loses a message with
        probability ``p``; ``delay`` adds ``delay_s`` plus a uniform
        extra in ``[0, jitter_s)``; ``duplicate`` emits a second copy
        with probability ``p`` (materialized only for idempotent ops —
        see docs/robustness.md); ``reorder`` holds a message back an
        extra ``extra_s`` with probability ``p`` so later messages
        overtake it; ``partition`` drops *everything* in the matched
        direction(s); ``slow`` stretches the matched edge by
        ``factor`` (gray slow-shard degradation: injected delays are
        multiplied and the observed service time is padded to
        ``factor×``).
    edge:
        ``src->dst`` pattern; each side supports shell wildcards.
    direction:
        ``forward`` (requests), ``reverse`` (responses) or ``both``.
    at_s / duration_s:
        Activity window relative to engine start; ``duration_s=None``
        means the rule stays active forever.
    """

    kind: str
    edge: str = "*"
    direction: str = "both"
    p: float = 1.0
    delay_s: float = 0.0
    jitter_s: float = 0.0
    extra_s: float = 0.0
    factor: float = 1.0
    at_s: float = 0.0
    duration_s: "float | None" = None

    def __post_init__(self) -> None:
        require(self.kind in RULE_KINDS,
                f"unknown netem rule kind {self.kind!r}; known: {RULE_KINDS}")
        require(self.direction in DIRECTIONS,
                f"unknown direction {self.direction!r}; known: {DIRECTIONS}")
        require(self.edge == "*" or "->" in self.edge,
                f"edge pattern must look like 'src->dst', got {self.edge!r}")
        require(0.0 <= self.p <= 1.0, "p must be in [0, 1]")
        check_nonnegative(self.delay_s, "delay_s")
        check_nonnegative(self.jitter_s, "jitter_s")
        check_nonnegative(self.extra_s, "extra_s")
        check_positive(self.factor, "factor")
        check_nonnegative(self.at_s, "at_s")
        if self.duration_s is not None:
            check_positive(self.duration_s, "duration_s")
        if self.kind == "reorder":
            require(self.extra_s > 0, "reorder needs extra_s > 0")

    def matches(self, edge: str, direction: str) -> bool:
        """Whether this rule applies to ``edge`` in ``direction``."""
        if self.direction != "both" and self.direction != direction:
            return False
        if self.edge == "*":
            return True
        want_src, want_dst = self.edge.split("->", 1)
        have_src, have_dst = edge.split("->", 1)
        return (fnmatchcase(have_src, want_src)
                and fnmatchcase(have_dst, want_dst))

    def active(self, elapsed_s: float) -> bool:
        """Whether the rule's time window covers ``elapsed_s``."""
        if elapsed_s < self.at_s:
            return False
        if self.duration_s is None:
            return True
        return elapsed_s < self.at_s + self.duration_s

    def to_dict(self) -> dict:
        """JSON payload with defaulted fields omitted."""
        payload: dict = {"kind": self.kind}
        if self.edge != "*":
            payload["edge"] = self.edge
        if self.direction != "both":
            payload["direction"] = self.direction
        if self.p != 1.0:
            payload["p"] = self.p
        if self.delay_s:
            payload["delay_s"] = self.delay_s
        if self.jitter_s:
            payload["jitter_s"] = self.jitter_s
        if self.extra_s:
            payload["extra_s"] = self.extra_s
        if self.factor != 1.0:
            payload["factor"] = self.factor
        if self.at_s:
            payload["at_s"] = self.at_s
        if self.duration_s is not None:
            payload["duration_s"] = self.duration_s
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "NetemRule":
        """Inverse of :meth:`to_dict`; raises SerializationError on junk."""
        try:
            return cls(
                kind=str(payload["kind"]),
                edge=str(payload.get("edge", "*")),
                direction=str(payload.get("direction", "both")),
                p=float(payload.get("p", 1.0)),
                delay_s=float(payload.get("delay_s", 0.0)),
                jitter_s=float(payload.get("jitter_s", 0.0)),
                extra_s=float(payload.get("extra_s", 0.0)),
                factor=float(payload.get("factor", 1.0)),
                at_s=float(payload.get("at_s", 0.0)),
                duration_s=payload.get("duration_s"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"bad netem rule payload: {exc}") from exc


@dataclass(frozen=True)
class NetemScript:
    """An ordered, inert set of wire-fault rules plus the chaos seed."""

    rules: tuple[NetemRule, ...] = ()
    seed: int = 0
    name: str = "netem"

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.rules,
                               key=lambda r: (r.at_s, r.kind, r.edge)))
        object.__setattr__(self, "rules", ordered)

    def __len__(self) -> int:
        return len(self.rules)

    def matching(self, edge: str, direction: str,
                 elapsed_s: float) -> "list[NetemRule]":
        """Rules active for one message, in the script's stable order."""
        return [
            rule for rule in self.rules
            if rule.matches(edge, direction) and rule.active(elapsed_s)
        ]

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        return {
            "name": self.name,
            "seed": int(self.seed),
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NetemScript":
        """Inverse of :meth:`to_dict`."""
        try:
            rules = tuple(NetemRule.from_dict(r) for r in payload["rules"])
        except (KeyError, TypeError) as exc:
            raise SerializationError(
                f"invalid netem script payload: {exc}") from exc
        return cls(
            rules=rules,
            seed=int(payload.get("seed", 0)),
            name=str(payload.get("name", "netem")),
        )

    def to_json(self) -> str:
        """Serialize to a JSON string (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "NetemScript":
        """Parse a script previously produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid netem JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: "str | Path") -> Path:
        """Write the script as JSON; returns the path."""
        target = Path(path)
        target.write_text(self.to_json(), encoding="utf-8")
        return target


def script_from_scenario(
    scenario: FaultScenario,
    shard_names: "list[str]",
    seed: int = 0,
    slow_base_delay_s: float = 0.0,
) -> NetemScript:
    """Project a sim fault scenario onto the wire.

    ``server_slowdown`` (service-rate multiplier ``factor``) becomes a
    ``slow`` rule of factor ``1/factor`` on the shard's edge for the
    event's window; a ``server_crash``/``server_repair`` pair becomes a
    both-direction ``partition`` window.  Link events stay in-sim (the
    wire has no per-topology-link identity) and are skipped.  This is
    what lets one scenario JSON drive the DES injector and the live
    transport at once.
    """
    require(len(shard_names) >= 1, "need at least one shard name")
    rules: "list[NetemRule]" = []
    crash_open: "dict[str, float]" = {}
    for event in scenario.events:
        if event.server is None:
            continue
        shard = shard_names[int(event.server) % len(shard_names)]
        edge = f"*->{shard}"
        if event.kind == "server_slowdown":
            rules.append(NetemRule(
                kind="slow", edge=edge, factor=1.0 / float(event.factor),
                at_s=event.at_s, duration_s=event.duration_s,
            ))
            if slow_base_delay_s > 0:
                rules.append(NetemRule(
                    kind="delay", edge=edge, delay_s=slow_base_delay_s,
                    at_s=event.at_s, duration_s=event.duration_s,
                ))
        elif event.kind == "server_crash":
            crash_open[shard] = event.at_s
        elif event.kind == "server_repair" and shard in crash_open:
            start = crash_open.pop(shard)
            if event.at_s > start:
                rules.append(NetemRule(
                    kind="partition", edge=edge,
                    at_s=start, duration_s=event.at_s - start,
                ))
    for shard, start in crash_open.items():  # unrepaired: partition forever
        rules.append(NetemRule(kind="partition", edge=f"*->{shard}",
                               at_s=start))
    return NetemScript(rules=tuple(rules), seed=seed,
                       name=f"netem:{scenario.name}")


def load_script(
    path: "str | Path",
    shard_names: "list[str] | None" = None,
) -> NetemScript:
    """Read a netem script from any of the accepted JSON shapes.

    Accepts (in order): a bare script (has ``"rules"``), a fault
    scenario carrying an embedded ``"netem"`` object, or a plain fault
    scenario (converted with :func:`script_from_scenario`, which needs
    ``shard_names``).
    """
    text = Path(path).read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid netem JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError("netem file must hold a JSON object")
    if "rules" in payload:
        return NetemScript.from_dict(payload)
    if isinstance(payload.get("netem"), dict):
        return NetemScript.from_dict(payload["netem"])
    if "events" in payload:
        if shard_names is None:
            raise NetemError(
                "converting a fault scenario to wire rules needs the "
                "shard names; pass shard_names or embed a 'netem' object"
            )
        return script_from_scenario(
            FaultScenario.from_dict(payload), shard_names)
    raise SerializationError(
        "netem file has neither 'rules', 'netem' nor 'events'")

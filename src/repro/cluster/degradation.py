"""Graceful degradation: shed load by priority instead of failing.

When enough servers are down, the surviving capacity simply cannot
host every device and the degraded problem is infeasible — previously
that surfaced as an :class:`InfeasibleSolutionError` (or a silently
stale assignment).  A production controller must instead *degrade
gracefully*: keep serving as many (and as important) devices as
possible, and say explicitly who was shed.

:func:`solve_degraded` implements that: it solves the degraded problem
over a shrinking active set, shedding the lowest-priority devices until
the solver finds a feasible assignment for the rest.  The default
priority sheds the heaviest devices first (freeing the most capacity
per device shed), which keeps the *count* of unserved devices minimal;
pass an explicit ``priority`` array to encode application importance
instead (lower value = shed first).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.model.problem import AssignmentProblem
from repro.model.solution import UNASSIGNED, Assignment
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.solvers.base import Solver
from repro.utils.validation import require


@dataclass(frozen=True)
class DegradedSolution:
    """Outcome of a degraded-mode solve."""

    vector: np.ndarray  # full-length; shed devices are UNASSIGNED (-1)
    shed: tuple[int, ...]  # device indices dropped, in shed order
    feasible: bool  # the served subset is feasibly assigned
    served_cost: float  # total delay over served devices
    rounds: int  # solver invocations used

    @property
    def n_served(self) -> int:
        """Devices still assigned to a server."""
        return int(np.count_nonzero(self.vector != UNASSIGNED))


def _subproblem(problem: AssignmentProblem, active: np.ndarray) -> AssignmentProblem:
    """The problem restricted to ``active`` device rows."""
    return AssignmentProblem(
        delay=problem.delay[active],
        demand=problem.demand[active],
        capacity=problem.capacity,
        failed_servers=problem.failed_servers,
        name=f"{problem.name}|active={int(np.count_nonzero(active))}",
    )


def shed_priority_by_demand(problem: AssignmentProblem) -> np.ndarray:
    """Default priority: heavier devices shed first (lower priority)."""
    healthy = np.array(
        [j not in problem.failed_servers for j in range(problem.n_servers)],
        dtype=bool,
    )
    # the cheapest healthy placement is what the device will actually cost
    return -np.min(problem.demand[:, healthy], axis=1)


def solve_degraded(
    problem: AssignmentProblem,
    solver: Solver,
    priority: "np.ndarray | None" = None,
    max_rounds: int = 32,
) -> DegradedSolution:
    """Serve the highest-priority feasible subset of devices.

    Tries the full device set first; while the solver's answer is
    infeasible, sheds the lowest-priority active devices and re-solves.
    Shedding is *batched*: each round drops at least enough demand to
    cover the aggregate capacity deficit (a necessary condition for
    feasibility), so the number of solver invocations stays logarithmic
    rather than linear in the shed count.  Never raises on infeasible
    input; at worst every device but the highest-priority one that fits
    is shed.
    """
    require(max_rounds >= 1, "max_rounds must be >= 1")
    n = problem.n_devices
    if priority is None:
        priority = shed_priority_by_demand(problem)
    priority = np.asarray(priority, dtype=np.float64).reshape(-1)
    require(priority.shape[0] == n, f"priority must have length {n}")

    healthy = np.array(
        [j not in problem.failed_servers for j in range(problem.n_servers)],
        dtype=bool,
    )
    total_capacity = float(np.sum(problem.capacity[healthy]))
    min_demand = np.min(problem.demand[:, healthy], axis=1)
    shed_order = np.argsort(priority, kind="stable")  # ascending: first out
    active = np.ones(n, dtype=bool)
    shed: list[int] = []
    next_to_shed = 0
    tracer = obs_runtime.tracer()
    registry = obs_runtime.metrics()

    with tracer.span(
        obs_names.SPAN_DEGRADED,
        devices=n,
        failed=len(problem.failed_servers),
    ):
        for round_index in range(1, max_rounds + 1):
            # necessary condition: the cheapest placements must fit at all
            deficit = float(np.sum(min_demand[active])) - total_capacity
            while deficit > 0 and next_to_shed < n - 1:
                device = int(shed_order[next_to_shed])
                next_to_shed += 1
                if not active[device]:
                    continue
                active[device] = False
                shed.append(device)
                deficit -= float(min_demand[device])
            if not np.any(active):
                break
            sub = _subproblem(problem, active)
            try:
                result = solver.solve(sub)
            except ReproError:
                result = None  # a solver crash is just another infeasible round
            if result is not None and result.feasible:
                vector = np.full(n, UNASSIGNED, dtype=np.int64)
                vector[active] = result.assignment.vector
                if shed:
                    registry.counter(obs_names.CLUSTER_LOAD_SHED).inc(len(shed))
                served = Assignment(problem, vector)
                return DegradedSolution(
                    vector=vector,
                    shed=tuple(shed),
                    feasible=True,
                    served_cost=served.total_delay(),
                    rounds=round_index,
                )
            # solver could not pack the active set: shed one more and retry
            while next_to_shed < n:
                device = int(shed_order[next_to_shed])
                next_to_shed += 1
                if active[device]:
                    active[device] = False
                    shed.append(device)
                    break
            else:
                break  # nothing left to shed

    # every round failed: serve nobody rather than report a bogus vector
    if shed:
        registry.counter(obs_names.CLUSTER_LOAD_SHED).inc(len(shed))
    return DegradedSolution(
        vector=np.full(n, UNASSIGNED, dtype=np.int64),
        shed=tuple(shed) + tuple(
            int(d) for d in shed_order if active[int(d)]
        ),
        feasible=False,
        served_cost=0.0,
        rounds=max_rounds,
    )

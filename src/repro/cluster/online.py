"""Online (streaming) assignment: devices arrive one at a time.

A newly provisioned IoT device must be assigned immediately and
irrevocably — the online restriction of the paper's offline problem.
:class:`OnlineAssigner` implements the standard rules:

* ``greedy_delay`` — cheapest fitting server;
* ``balanced`` — cheapest fitting server among those below the mean
  utilization (delay-aware load spreading);
* ``reserve`` — cheapest fitting server whose *post-assignment*
  utilization stays under a headroom threshold, falling back to
  cheapest-fitting when none qualifies.

The F8/online experiment compares these against the offline optimum on
the same instance (the competitive-ratio view).  The serving layer
(:mod:`repro.serve`) additionally drives the assigner as a *churning*
state machine: :meth:`release` returns a departed device's capacity,
and :meth:`reset_to` atomically adopts a re-optimized assignment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InfeasibleSolutionError
from repro.model.problem import AssignmentProblem
from repro.model.solution import UNASSIGNED, Assignment
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.utils.validation import check_probability, require

ONLINE_RULES = ("greedy_delay", "balanced", "reserve")


class OnlineAssigner:
    """Irrevocable one-at-a-time assignment over a fixed cluster."""

    def __init__(
        self,
        problem: AssignmentProblem,
        rule: str = "reserve",
        headroom: float = 0.85,
    ) -> None:
        require(rule in ONLINE_RULES, f"unknown rule {rule!r}; known: {ONLINE_RULES}")
        self.problem = problem
        self.rule = rule
        self.headroom = check_probability(headroom, "headroom")
        self.assignment = Assignment(problem)
        self._residual = problem.capacity.copy()
        # a failed server advertises zero capacity; it must never be a
        # candidate and must never poison utilization with a 0/0
        self._usable = np.array(
            [
                j not in problem.failed_servers and problem.capacity[j] > 0
                for j in range(problem.n_servers)
            ],
            dtype=bool,
        )
        if not np.any(self._usable):
            raise InfeasibleSolutionError(
                "no usable server: every server is failed or has zero capacity"
            )

    # ------------------------------------------------------------------
    @property
    def utilization(self) -> np.ndarray:
        """Per-server load divided by capacity (0 for zero-capacity servers)."""
        capacity = self.problem.capacity
        safe = np.where(capacity > 0, capacity, 1.0)
        return np.where(capacity > 0, 1.0 - self._residual / safe, 0.0)

    def assign(self, device: int) -> int:
        """Place ``device`` now; returns the chosen server.

        Raises :class:`~repro.errors.InfeasibleSolutionError` when no
        usable server can take the device — in the online setting there
        is nothing to undo, so the failure is surfaced to the caller
        (admission control).
        """
        registry = obs_runtime.metrics()
        labels = {"rule": self.rule}
        demand = self.problem.demand[device]
        fits = np.flatnonzero(self._usable & (demand <= self._residual + 1e-12))
        if fits.size == 0:
            registry.counter(obs_names.ONLINE_REJECTIONS, labels).inc()
            raise InfeasibleSolutionError(
                f"device {device} fits on no server (residuals exhausted)"
            )
        chosen = self._choose(device, fits)
        self.assignment.assign(device, chosen)
        self._residual[chosen] -= demand[chosen]
        registry.counter(obs_names.ONLINE_ASSIGNMENTS, labels).inc()
        return chosen

    def release(self, device: int) -> int:
        """Return a departed ``device``'s capacity; returns its old server.

        Raises :class:`~repro.errors.InfeasibleSolutionError` when the
        device is not currently assigned — releasing an unknown device
        is a protocol error the serving layer must surface, not absorb.
        """
        require(
            0 <= device < self.problem.n_devices,
            f"device {device} out of range [0, {self.problem.n_devices})",
        )
        server = self.assignment.server_of(device)
        if server == UNASSIGNED:
            raise InfeasibleSolutionError(
                f"device {device} is not assigned; nothing to release"
            )
        self._residual[server] += self.problem.demand[device, server]
        self.assignment.unassign(device)
        return server

    def assign_stream(self, order: "list[int] | np.ndarray") -> Assignment:
        """Assign every device in arrival ``order``; returns the result."""
        for device in order:
            self.assign(int(device))
        return self.assignment

    def reset_to(self, vector: "np.ndarray | list[int]") -> None:
        """Adopt ``vector`` (UNASSIGNED entries stay free) atomically.

        Used by the serving layer's re-optimization loop to swap in an
        improved assignment: residuals are recomputed from scratch so
        the assigner's view is exactly the adopted vector's loads.
        Rejects vectors that overload any server or touch unusable ones.
        """
        adopted = Assignment(self.problem, vector)
        loads = adopted.loads()
        require(
            bool(np.all(loads <= self.problem.capacity + 1e-9)),
            "reset_to vector overloads at least one server",
        )
        occupied = np.unique(adopted.vector[adopted.vector != UNASSIGNED])
        require(
            bool(np.all(self._usable[occupied])) if occupied.size else True,
            "reset_to vector places devices on failed/zero-capacity servers",
        )
        self.assignment = adopted
        self._residual = self.problem.capacity - loads

    # ------------------------------------------------------------------
    def _choose(self, device: int, fits: np.ndarray) -> int:
        delays = self.problem.delay[device, fits]
        if self.rule == "greedy_delay":
            return int(fits[np.argmin(delays)])
        utilization = self.utilization
        if self.rule == "balanced":
            mean_util = float(np.mean(utilization[self._usable]))
            below_mean = fits[utilization[fits] <= mean_util + 1e-12]
            pool = below_mean if below_mean.size else fits
            return int(pool[np.argmin(self.problem.delay[device, pool])])
        # reserve: keep every server under the headroom threshold if possible
        post = (
            self.problem.capacity[fits] * utilization[fits] + self.problem.demand[device, fits]
        ) / self.problem.capacity[fits]
        safe = fits[post <= self.headroom + 1e-12]
        pool = safe if safe.size else fits
        return int(pool[np.argmin(self.problem.delay[device, pool])])

"""Online (streaming) assignment: devices arrive one at a time.

A newly provisioned IoT device must be assigned immediately and
irrevocably — the online restriction of the paper's offline problem.
:class:`OnlineAssigner` implements the standard rules:

* ``greedy_delay`` — cheapest fitting server;
* ``balanced`` — cheapest fitting server among those below the mean
  utilization (delay-aware load spreading);
* ``reserve`` — cheapest fitting server whose *post-assignment*
  utilization stays under a headroom threshold, falling back to
  cheapest-fitting when none qualifies.

The F8/online experiment compares these against the offline optimum on
the same instance (the competitive-ratio view).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InfeasibleSolutionError
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.utils.validation import check_probability, require

ONLINE_RULES = ("greedy_delay", "balanced", "reserve")


class OnlineAssigner:
    """Irrevocable one-at-a-time assignment over a fixed cluster."""

    def __init__(
        self,
        problem: AssignmentProblem,
        rule: str = "reserve",
        headroom: float = 0.85,
    ) -> None:
        require(rule in ONLINE_RULES, f"unknown rule {rule!r}; known: {ONLINE_RULES}")
        self.problem = problem
        self.rule = rule
        self.headroom = check_probability(headroom, "headroom")
        self.assignment = Assignment(problem)
        self._residual = problem.capacity.copy()

    # ------------------------------------------------------------------
    @property
    def utilization(self) -> np.ndarray:
        """Per-server load divided by capacity."""
        return 1.0 - self._residual / self.problem.capacity

    def assign(self, device: int) -> int:
        """Place ``device`` now; returns the chosen server.

        Raises :class:`~repro.errors.InfeasibleSolutionError` when no
        server can take the device — in the online setting there is
        nothing to undo, so the failure is surfaced to the caller
        (admission control).
        """
        registry = obs_runtime.metrics()
        labels = {"rule": self.rule}
        demand = self.problem.demand[device]
        fits = np.flatnonzero(demand <= self._residual + 1e-12)
        if fits.size == 0:
            registry.counter(obs_names.ONLINE_REJECTIONS, labels).inc()
            raise InfeasibleSolutionError(
                f"device {device} fits on no server (residuals exhausted)"
            )
        chosen = self._choose(device, fits)
        self.assignment.assign(device, chosen)
        self._residual[chosen] -= demand[chosen]
        registry.counter(obs_names.ONLINE_ASSIGNMENTS, labels).inc()
        return chosen

    def assign_stream(self, order: "list[int] | np.ndarray") -> Assignment:
        """Assign every device in arrival ``order``; returns the result."""
        for device in order:
            self.assign(int(device))
        return self.assignment

    # ------------------------------------------------------------------
    def _choose(self, device: int, fits: np.ndarray) -> int:
        delays = self.problem.delay[device, fits]
        if self.rule == "greedy_delay":
            return int(fits[np.argmin(delays)])
        utilization = self.utilization
        if self.rule == "balanced":
            below_mean = fits[utilization[fits] <= float(np.mean(utilization)) + 1e-12]
            pool = below_mean if below_mean.size else fits
            return int(pool[np.argmin(self.problem.delay[device, pool])])
        # reserve: keep every server under the headroom threshold if possible
        post = (
            self.problem.capacity[fits] * utilization[fits] + self.problem.demand[device, fits]
        ) / self.problem.capacity[fits]
        safe = fits[post <= self.headroom + 1e-12]
        pool = safe if safe.size else fits
        return int(pool[np.argmin(self.problem.delay[device, pool])])

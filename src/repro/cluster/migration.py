"""Migration cost model and the pays-to-move decision.

Reassigning a device is not free — state handoff, session re-routing,
a transient latency spike — so the controller charges each move
``cost_per_move_s`` (expressed in the same delay units as the
objective) and reconfigures only when the projected delay saving over
the epoch clears that cost by a ``hysteresis`` margin.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_nonnegative, check_probability


def count_moves(old_vector: np.ndarray, new_vector: np.ndarray) -> int:
    """Number of devices whose server changes between two assignments."""
    old = np.asarray(old_vector)
    new = np.asarray(new_vector)
    return int(np.count_nonzero(old != new))


def moved_devices(old_vector: np.ndarray, new_vector: np.ndarray) -> list[int]:
    """Indices of devices that would migrate."""
    old = np.asarray(old_vector)
    new = np.asarray(new_vector)
    return [int(i) for i in np.flatnonzero(old != new)]


class MigrationPolicy:
    """Decides whether a candidate reassignment is worth its migrations.

    Parameters
    ----------
    cost_per_move_s:
        Charge per migrated device, in objective (delay) units.
    hysteresis:
        Required relative improvement *after* migration costs; e.g.
        0.05 demands a 5% net win before reconfiguring.  Suppresses
        thrashing when mobility jitters the delay matrix.
    """

    def __init__(self, cost_per_move_s: float = 0.0, hysteresis: float = 0.02) -> None:
        self.cost_per_move_s = check_nonnegative(cost_per_move_s, "cost_per_move_s")
        self.hysteresis = check_probability(hysteresis, "hysteresis")

    def net_benefit(self, current_cost: float, candidate_cost: float, moves: int) -> float:
        """Delay saved minus migration charges (positive = improvement)."""
        return current_cost - candidate_cost - self.cost_per_move_s * moves

    def should_migrate(
        self,
        current_cost: float,
        candidate_cost: float,
        moves: int,
        force: bool = False,
    ) -> bool:
        """True when the move clears cost + hysteresis (or is forced).

        ``force`` covers the non-negotiable case: the current
        assignment became infeasible (a server is overloaded), where
        staying put violates the hard constraint regardless of cost.
        """
        if force:
            return True
        if moves == 0:
            return False
        benefit = self.net_benefit(current_cost, candidate_cost, moves)
        return benefit > self.hysteresis * max(current_cost, 1e-12)

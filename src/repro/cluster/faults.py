"""Server fault injection: failures and repairs over epochs.

Edge servers fail — power, connectivity, maintenance.  This module
models per-server up/down dynamics and the degraded problems they
induce:

* :class:`ServerFaultProcess` — independent two-state Markov chain per
  server (``fail_prob`` up→down, ``repair_prob`` down→up per epoch),
  with a guard that never lets the *last* healthy server fail;
* :func:`degraded_problem` — a copy of an instance carrying an explicit
  ``failed_servers`` mask (failed capacity is zeroed so capacity-driven
  solvers route around them, but *feasibility* is decided by the mask:
  :meth:`Assignment.validate` rejects any device on a failed server);
* :func:`serving_fraction` — the availability metric: what fraction of
  devices an assignment currently serves on healthy servers;
* :func:`served_cost` — total delay over the devices that are currently
  served (shared by X5/X6 and the degradation controller).

The X5 extension experiment drives a static assignment and a reactive
re-solver through one shared failure timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.utils.rng import make_rng
from repro.utils.validation import check_probability, require


@dataclass(frozen=True)
class FaultEvent:
    """Fault state at one epoch."""

    epoch: int
    failed: frozenset[int]
    newly_failed: tuple[int, ...]
    repaired: tuple[int, ...]


class ServerFaultProcess:
    """Independent Markov up/down dynamics per server."""

    def __init__(
        self,
        n_servers: int,
        fail_prob: float = 0.08,
        repair_prob: float = 0.5,
        seed: "int | None" = None,
    ) -> None:
        require(n_servers >= 1, "n_servers must be >= 1")
        check_probability(fail_prob, "fail_prob")
        check_probability(repair_prob, "repair_prob")
        self.n_servers = n_servers
        self.fail_prob = fail_prob
        self.repair_prob = repair_prob
        self._rng = make_rng(seed)
        self._failed: set[int] = set()

    @property
    def failed(self) -> frozenset[int]:
        """Servers currently down."""
        return frozenset(self._failed)

    def step(self, epoch: int) -> FaultEvent:
        """Advance one epoch of failures and repairs.

        At least one server always stays up: a full-cluster outage has
        no meaningful assignment response and would only make the
        experiment degenerate.
        """
        repaired = []
        for server in sorted(self._failed):
            if self._rng.random() < self.repair_prob:
                self._failed.discard(server)
                repaired.append(server)
        newly_failed = []
        for server in range(self.n_servers):
            if server in self._failed:
                continue
            if len(self._failed) >= self.n_servers - 1:
                break  # guard: keep one healthy server
            if self._rng.random() < self.fail_prob:
                self._failed.add(server)
                newly_failed.append(server)
        return FaultEvent(
            epoch=epoch,
            failed=frozenset(self._failed),
            newly_failed=tuple(newly_failed),
            repaired=tuple(repaired),
        )


def degraded_problem(
    problem: AssignmentProblem, failed: "frozenset[int] | set[int]"
) -> AssignmentProblem:
    """Copy of ``problem`` where ``failed`` servers cannot host devices.

    Failure is represented explicitly: the copy carries ``failed`` in
    its ``failed_servers`` mask, and assignment validation rejects any
    device placed on a masked server — no capacity-epsilon tricks.
    Capacities of failed servers are additionally zeroed so that
    capacity-driven solvers (which never look at the mask) route around
    them for free.
    """
    failed = frozenset(int(server) for server in failed)
    for server in failed:
        require(0 <= server < problem.n_servers, f"server {server} out of range")
    require(
        len(failed) < problem.n_servers,
        "cannot fail every server; at least one must stay healthy",
    )
    capacity = problem.capacity.copy()
    for server in failed:
        capacity[server] = 0.0
    degraded = AssignmentProblem(
        delay=problem.delay,
        demand=problem.demand,
        capacity=capacity,
        devices=problem.devices,
        servers=problem.servers,
        graph=problem.graph,
        failed_servers=failed,
        name=f"{problem.name}|failed={sorted(failed)}",
    )
    return degraded


def serving_fraction(
    vector: np.ndarray, failed: "frozenset[int] | set[int]", n_devices: int
) -> float:
    """Fraction of devices whose assigned server is healthy."""
    if n_devices == 0:
        return 1.0
    vector = np.asarray(vector)
    served = sum(
        1 for device in range(n_devices)
        if vector[device] >= 0 and int(vector[device]) not in failed
    )
    return served / n_devices


def served_cost(
    problem: AssignmentProblem,
    vector: np.ndarray,
    failed: "frozenset[int] | set[int]" = frozenset(),
) -> float:
    """Total delay over devices currently served on healthy servers.

    Unassigned devices and devices whose server is in ``failed``
    contribute nothing — they are not being served at all.
    """
    vector = np.asarray(vector)
    total = 0.0
    for device in range(problem.n_devices):
        server = int(vector[device])
        if server >= 0 and server not in failed:
            total += float(problem.delay[device, server])
    return total

"""Device churn: joins and departures over a fixed potential fleet.

Mobility (``repro.workload.mobility``) changes *where* devices are;
churn changes *whether* they are present at all.  The problem instance
enumerates the full potential fleet; a :class:`ChurnProcess` evolves
the active subset, and :class:`MembershipController` maintains a
feasible assignment of exactly the active devices:

* **join** — the device is placed immediately with an online rule
  (no global re-solve at member arrival, as a real cluster would);
* **leave** — its capacity is released;
* optionally, a periodic **rebalance** re-solves the active subproblem
  with any registered solver, bounding the drift that incremental
  joins accumulate.

This is the extension experiment X1 (see ``experiments/x1_churn``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InfeasibleSolutionError, ValidationError
from repro.model.problem import AssignmentProblem
from repro.solvers.base import Solver
from repro.utils.rng import make_rng
from repro.utils.validation import check_probability, require


@dataclass(frozen=True)
class ChurnEvent:
    """Membership change at one epoch."""

    epoch: int
    joined: tuple[int, ...]
    left: tuple[int, ...]
    active: frozenset[int]


class ChurnProcess:
    """Per-epoch Bernoulli joins/leaves over the potential fleet."""

    def __init__(
        self,
        n_devices: int,
        join_prob: float = 0.15,
        leave_prob: float = 0.10,
        initially_active: float = 0.6,
        seed: "int | None" = None,
    ) -> None:
        require(n_devices >= 1, "n_devices must be >= 1")
        check_probability(join_prob, "join_prob")
        check_probability(leave_prob, "leave_prob")
        check_probability(initially_active, "initially_active")
        self.n_devices = n_devices
        self.join_prob = join_prob
        self.leave_prob = leave_prob
        self._rng = make_rng(seed)
        n_start = max(1, int(round(initially_active * n_devices)))
        start = self._rng.choice(n_devices, size=n_start, replace=False)
        self._active: set[int] = {int(d) for d in start}

    @property
    def active(self) -> frozenset[int]:
        """Currently active device ids."""
        return frozenset(self._active)

    def step(self, epoch: int) -> ChurnEvent:
        """Advance one epoch; each inactive device may join, each active
        device may leave (a device never does both in one epoch)."""
        joined = []
        left = []
        for device in range(self.n_devices):
            if device in self._active:
                if self._rng.random() < self.leave_prob and len(self._active) > 1:
                    self._active.discard(device)
                    left.append(device)
            elif self._rng.random() < self.join_prob:
                self._active.add(device)
                joined.append(device)
        return ChurnEvent(
            epoch=epoch,
            joined=tuple(joined),
            left=tuple(left),
            active=frozenset(self._active),
        )


@dataclass
class MembershipDecision:
    """Outcome of applying one churn event."""

    epoch: int
    cost: float
    active_count: int
    rejected: tuple[int, ...]
    rebalanced: bool
    moves: int


class MembershipController:
    """Maintains a feasible assignment of the active device subset."""

    def __init__(
        self,
        problem: AssignmentProblem,
        join_rule: str = "reserve",
        headroom: float = 0.85,
        rebalance_solver: "Solver | None" = None,
        rebalance_every: int = 0,
    ) -> None:
        require(join_rule in ("greedy_delay", "reserve"), f"unknown join rule {join_rule!r}")
        check_probability(headroom, "headroom")
        require(rebalance_every >= 0, "rebalance_every must be >= 0")
        if rebalance_every > 0 and rebalance_solver is None:
            raise ValidationError("rebalance_every > 0 requires a rebalance_solver")
        self.problem = problem
        self.join_rule = join_rule
        self.headroom = headroom
        self.rebalance_solver = rebalance_solver
        self.rebalance_every = rebalance_every
        self._server_of: dict[int, int] = {}
        self._loads = np.zeros(problem.n_servers)
        self.total_rejected = 0
        self.total_moves = 0

    # ------------------------------------------------------------------
    @property
    def active_devices(self) -> list[int]:
        """Sorted ids of devices currently assigned."""
        return sorted(self._server_of)

    def cost(self) -> float:
        """Total delay of the currently active assignment."""
        return float(
            sum(
                self.problem.delay[device, server]
                for device, server in self._server_of.items()
            )
        )

    def utilization(self) -> np.ndarray:
        """Per-server load divided by capacity."""
        return self._loads / self.problem.capacity

    # ------------------------------------------------------------------
    def _place(self, device: int) -> "int | None":
        demand = self.problem.demand[device]
        residual = self.problem.capacity - self._loads
        fits = np.flatnonzero(demand <= residual + 1e-12)
        if fits.size == 0:
            return None
        if self.join_rule == "reserve":
            post = (self._loads[fits] + demand[fits]) / self.problem.capacity[fits]
            safe = fits[post <= self.headroom + 1e-12]
            pool = safe if safe.size else fits
        else:
            pool = fits
        return int(pool[np.argmin(self.problem.delay[device, pool])])

    def _admit(self, device: int) -> bool:
        server = self._place(device)
        if server is None:
            return False
        self._server_of[device] = server
        self._loads[server] += self.problem.demand[device, server]
        return True

    def _release(self, device: int) -> None:
        server = self._server_of.pop(device, None)
        if server is not None:
            self._loads[server] -= self.problem.demand[device, server]

    def _rebalance(self) -> int:
        """Re-solve the active subproblem; returns devices moved."""
        assert self.rebalance_solver is not None
        active = self.active_devices
        if not active:
            return 0
        sub = AssignmentProblem(
            delay=self.problem.delay[active],
            demand=self.problem.demand[active],
            capacity=self.problem.capacity.copy(),
            name=f"{self.problem.name}-active{len(active)}",
        )
        result = self.rebalance_solver.solve(sub)
        if not result.feasible:
            return 0
        moves = 0
        new_vector = result.assignment.vector
        self._loads = np.zeros(self.problem.n_servers)
        for index, device in enumerate(active):
            server = int(new_vector[index])
            if self._server_of[device] != server:
                moves += 1
            self._server_of[device] = server
            self._loads[server] += self.problem.demand[device, server]
        return moves

    # ------------------------------------------------------------------
    def bootstrap(self, active: "frozenset[int] | set[int]") -> MembershipDecision:
        """Admit the initial active set (largest demand first)."""
        order = sorted(
            active, key=lambda d: -float(np.mean(self.problem.demand[d]))
        )
        rejected = tuple(d for d in order if not self._admit(d))
        self.total_rejected += len(rejected)
        return MembershipDecision(
            epoch=0,
            cost=self.cost(),
            active_count=len(self._server_of),
            rejected=rejected,
            rebalanced=False,
            moves=0,
        )

    def apply(self, event: ChurnEvent) -> MembershipDecision:
        """Process one epoch's joins/leaves (leaves first: they free room)."""
        for device in event.left:
            self._release(device)
        rejected = tuple(d for d in event.joined if not self._admit(d))
        self.total_rejected += len(rejected)
        rebalanced = False
        moves = 0
        if (
            self.rebalance_every > 0
            and event.epoch % self.rebalance_every == 0
        ):
            moves = self._rebalance()
            self.total_moves += moves
            rebalanced = True
        # hard invariant: membership tracking must never overload
        if np.any(self._loads > self.problem.capacity + 1e-9):
            raise InfeasibleSolutionError("membership controller overloaded a server")
        return MembershipDecision(
            epoch=event.epoch,
            cost=self.cost(),
            active_count=len(self._server_of),
            rejected=rejected,
            rebalanced=rebalanced,
            moves=moves,
        )

"""Cluster configuration as a running control loop.

The title's "cluster configuration" is not a one-shot solve: devices
move, attach points change, and the delay matrix drifts.  This package
closes the loop:

* :mod:`repro.cluster.monitor` — load/utilization tracking and
  overload detection;
* :mod:`repro.cluster.migration` — reassignment cost model and the
  hysteresis rule that decides whether moving devices pays;
* :mod:`repro.cluster.controller` — epoch-driven reconfiguration
  strategies (static / always / hysteresis / polish) over a mobility
  stream;
* :mod:`repro.cluster.online` — streaming arrival of new devices with
  immediate irrevocable assignment;
* :mod:`repro.cluster.faults` — epoch-level server failure dynamics and
  the masked degraded problems they induce;
* :mod:`repro.cluster.degradation` — graceful degradation: shed load by
  priority when surviving capacity cannot host everyone.
"""

from repro.cluster.churn import ChurnEvent, ChurnProcess, MembershipController
from repro.cluster.degradation import DegradedSolution, solve_degraded
from repro.cluster.faults import (
    FaultEvent,
    ServerFaultProcess,
    degraded_problem,
    served_cost,
    serving_fraction,
)
from repro.cluster.controller import (
    ControllerDecision,
    ReconfigurationController,
    RECONFIGURE_STRATEGIES,
)
from repro.cluster.migration import MigrationPolicy, count_moves
from repro.cluster.monitor import LoadMonitor
from repro.cluster.online import OnlineAssigner

__all__ = [
    "ChurnEvent",
    "ChurnProcess",
    "MembershipController",
    "DegradedSolution",
    "solve_degraded",
    "FaultEvent",
    "ServerFaultProcess",
    "degraded_problem",
    "served_cost",
    "serving_fraction",
    "ControllerDecision",
    "ReconfigurationController",
    "RECONFIGURE_STRATEGIES",
    "MigrationPolicy",
    "count_moves",
    "LoadMonitor",
    "OnlineAssigner",
]

"""Epoch-driven reconfiguration over a mobility stream.

The controller consumes the sequence of refreshed problems produced by
:class:`~repro.workload.mobility.RandomWaypointMobility` and maintains
the cluster's assignment under one of four strategies:

* ``static`` — solve once, never touch it again (the baseline that
  drifts as devices move);
* ``always`` — re-solve from scratch every epoch (the upper bound on
  responsiveness, maximum migration churn);
* ``hysteresis`` — re-solve only when the :class:`MigrationPolicy`
  says the net benefit clears migration costs, or when mobility made
  the incumbent infeasible;
* ``polish`` — never re-solve; run feasibility-preserving local search
  from the incumbent each epoch (cheap, low-churn incremental repair).

The F8 experiment plots per-epoch delay and cumulative migrations for
all four.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.migration import MigrationPolicy, count_moves
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.rl.agent import polish_assignment
from repro.solvers.base import Solver
from repro.utils.validation import require

RECONFIGURE_STRATEGIES = ("static", "always", "hysteresis", "polish")


@dataclass
class ControllerDecision:
    """What the controller did at one epoch."""

    epoch: int
    reconfigured: bool
    moves: int
    cost: float
    feasible: bool
    vector: np.ndarray
    #: devices shed by graceful degradation this epoch (0 = full service)
    shed: int = 0


class ReconfigurationController:
    """Keeps an assignment current as the delay matrix drifts."""

    def __init__(
        self,
        solver: Solver,
        strategy: str = "hysteresis",
        policy: "MigrationPolicy | None" = None,
        polish_passes: int = 20,
    ) -> None:
        require(
            strategy in RECONFIGURE_STRATEGIES,
            f"unknown strategy {strategy!r}; known: {RECONFIGURE_STRATEGIES}",
        )
        self.solver = solver
        self.strategy = strategy
        self.policy = policy if policy is not None else MigrationPolicy()
        self.polish_passes = polish_passes
        self._vector: "np.ndarray | None" = None
        self.total_moves = 0
        self.reconfigurations = 0

    # ------------------------------------------------------------------
    def initialize(self, problem: AssignmentProblem) -> ControllerDecision:
        """Epoch 0: solve the initial configuration."""
        registry = obs_runtime.metrics()
        with registry.timer(
            obs_names.CLUSTER_RECONFIG_LATENCY, {"strategy": self.strategy}
        ):
            result = self.solver.solve(problem)
        registry.counter(obs_names.CLUSTER_RECONFIGS, {"strategy": self.strategy}).inc()
        self._vector = result.assignment.vector
        return ControllerDecision(
            epoch=0,
            reconfigured=True,
            moves=0,
            cost=result.assignment.total_delay(),
            feasible=result.feasible,
            vector=self._vector.copy(),
        )

    def observe(
        self,
        epoch: int,
        problem: AssignmentProblem,
        failed: "frozenset[int] | set[int] | None" = None,
    ) -> ControllerDecision:
        """React to the refreshed problem of one mobility epoch.

        With a non-empty ``failed`` server set the controller enters
        degraded mode: it re-solves the masked problem and, when the
        surviving capacity cannot host everyone, sheds low-priority
        devices instead of raising (see :func:`solve_degraded`).
        """
        require(self._vector is not None, "call initialize() before observe()")
        if failed:
            return self._observe_degraded(epoch, problem, frozenset(failed))
        registry = obs_runtime.metrics()
        strategy_labels = {"strategy": self.strategy}
        registry.counter(obs_names.CLUSTER_EPOCHS, strategy_labels).inc()
        incumbent = Assignment(problem, self._vector)
        current_cost = incumbent.total_delay()
        current_feasible = incumbent.is_feasible()

        if self.strategy == "static":
            return self._decision(epoch, False, 0, current_cost, current_feasible)

        if self.strategy == "polish":
            with registry.timer(obs_names.CLUSTER_RECONFIG_LATENCY, strategy_labels):
                new_vector = polish_assignment(problem, self._vector, self.polish_passes)
            moves = count_moves(self._vector, new_vector)
            self._commit(new_vector, moves, reconfigured=moves > 0)
            polished = Assignment(problem, new_vector)
            return self._decision(
                epoch, moves > 0, moves, polished.total_delay(), polished.is_feasible()
            )

        # strategies that may re-solve
        with registry.timer(obs_names.CLUSTER_RECONFIG_LATENCY, strategy_labels):
            candidate = self.solver.solve(problem)
        candidate_vector = candidate.assignment.vector
        moves = count_moves(self._vector, candidate_vector)
        if self.strategy == "always":
            take = True
        else:  # hysteresis
            take = self.policy.should_migrate(
                current_cost,
                candidate.assignment.total_delay(),
                moves,
                force=not current_feasible,
            )
        if take and candidate.feasible:
            self._commit(candidate_vector, moves, reconfigured=True)
            return self._decision(
                epoch, True, moves, candidate.assignment.total_delay(), True
            )
        return self._decision(epoch, False, 0, current_cost, current_feasible)

    # ------------------------------------------------------------------
    def _observe_degraded(
        self, epoch: int, problem: AssignmentProblem, failed: frozenset[int]
    ) -> ControllerDecision:
        """Degraded-mode epoch: re-solve around the failed servers."""
        from repro.cluster.degradation import solve_degraded
        from repro.cluster.faults import degraded_problem

        registry = obs_runtime.metrics()
        strategy_labels = {"strategy": self.strategy}
        registry.counter(obs_names.CLUSTER_EPOCHS, strategy_labels).inc()
        degraded = degraded_problem(problem, failed)
        incumbent = Assignment(degraded, self._vector)
        if incumbent.is_feasible() and self.strategy in ("static", "hysteresis"):
            # nobody stranded and no overload: the incumbent survives
            return self._decision(
                epoch, False, 0, incumbent.total_delay(), True
            )
        with registry.timer(obs_names.CLUSTER_RECONFIG_LATENCY, strategy_labels):
            result = self.solver.solve(degraded)
            if result.feasible:
                vector, shed = result.assignment.vector, ()
            else:
                solution = solve_degraded(degraded, self.solver)
                vector, shed = solution.vector, solution.shed
        moves = count_moves(self._vector, vector)
        self._commit(vector, moves, reconfigured=True)
        committed = Assignment(degraded, vector)
        decision = self._decision(
            epoch, True, moves, committed.total_delay(),
            committed.is_feasible() if not shed else True,
        )
        decision.shed = len(shed)
        return decision

    def _commit(self, vector: np.ndarray, moves: int, reconfigured: bool) -> None:
        self._vector = vector.copy()
        self.total_moves += moves
        registry = obs_runtime.metrics()
        labels = {"strategy": self.strategy}
        registry.counter(obs_names.CLUSTER_MIGRATIONS, labels).inc(moves)
        if reconfigured:
            self.reconfigurations += 1
            registry.counter(obs_names.CLUSTER_RECONFIGS, labels).inc()

    def _decision(
        self, epoch: int, reconfigured: bool, moves: int, cost: float, feasible: bool
    ) -> ControllerDecision:
        assert self._vector is not None
        return ControllerDecision(
            epoch=epoch,
            reconfigured=reconfigured,
            moves=moves,
            cost=cost,
            feasible=feasible,
            vector=self._vector.copy(),
        )

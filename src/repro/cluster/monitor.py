"""Load monitoring: the controller's eyes.

Tracks per-server utilization over a sliding window of observations
and answers the two questions the reconfiguration policy asks: is any
server overloaded (or trending there), and how unbalanced is the
cluster?
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.utils.validation import check_positive, require


class LoadMonitor:
    """Sliding-window utilization tracker for one edge cluster."""

    def __init__(self, n_servers: int, window: int = 8) -> None:
        require(n_servers >= 1, "n_servers must be >= 1")
        require(window >= 1, "window must be >= 1")
        self.n_servers = n_servers
        self.window = window
        self._history: deque[np.ndarray] = deque(maxlen=window)

    def observe(self, utilization: "np.ndarray | list[float]") -> None:
        """Record one snapshot of per-server utilization (load/capacity)."""
        snapshot = np.asarray(utilization, dtype=np.float64).reshape(-1)
        require(
            snapshot.shape[0] == self.n_servers,
            f"expected {self.n_servers} utilizations, got {snapshot.shape[0]}",
        )
        self._history.append(snapshot)

    # ------------------------------------------------------------------
    @property
    def n_observations(self) -> int:
        """Number of snapshots currently in the window."""
        return len(self._history)

    def latest(self) -> np.ndarray:
        """Most recent utilization snapshot (a copy)."""
        require(self._history, "no observations yet")
        return self._history[-1].copy()

    def mean_utilization(self) -> np.ndarray:
        """Per-server mean over the window."""
        require(self._history, "no observations yet")
        return np.mean(np.stack(self._history), axis=0)

    def overloaded(self, threshold: float = 1.0) -> list[int]:
        """Servers whose latest utilization exceeds ``threshold``."""
        check_positive(threshold, "threshold")
        if not self._history:
            return []
        return [int(j) for j in np.flatnonzero(self._history[-1] > threshold)]

    def imbalance(self) -> float:
        """Spread of the latest snapshot (max - min utilization)."""
        require(self._history, "no observations yet")
        latest = self._history[-1]
        return float(np.max(latest) - np.min(latest))

    def trend(self) -> np.ndarray:
        """Per-server utilization slope over the window (per observation).

        Least-squares slope; zero with fewer than two observations.
        Positive trend on a near-full server is the early-warning
        signal hysteresis strategies act on.
        """
        if len(self._history) < 2:
            return np.zeros(self.n_servers)
        stack = np.stack(self._history)
        steps = np.arange(stack.shape[0], dtype=np.float64)
        steps -= steps.mean()
        denom = float(np.sum(steps**2))
        return (steps @ (stack - stack.mean(axis=0))) / denom

"""Instance generators.

Three tiers, matching how the paper-style evaluation builds workloads:

* :func:`random_instance` — pure matrix instances with a controlled
  capacity *tightness*; fast, used for solver unit tests and the
  optimality-gap table.
* :func:`gap_instance` — the classic hard GAP classes (Chu & Beasley
  style, adapted so delay plays the role of cost).  Class ``d`` makes
  delay inversely correlated with demand, the regime where greedy
  delay-chasing overloads servers.
* :func:`topology_instance` — the full pipeline the paper evaluates:
  generate a topology family, place the edge cluster, attach devices,
  and derive the delay matrix from routed paths.

Every generator *certifies feasibility* by finding a feasible
assignment with first-fit-decreasing and, if none is found, relaxing
capacities by 5% steps.  Benchmarks may therefore assume instances are
solvable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InfeasibleProblemError
from repro.model.entities import EdgeServer, IoTDevice
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.topology.delay import DelayModel
from repro.topology.generators import (
    apply_oversubscription,
    attach_iot_devices,
    make_topology,
)
from repro.topology.placement import place_edge_servers
from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import check_in_range, check_positive, require

#: bounds of the uniform per-device demand distribution (capacity units)
DEMAND_RANGE = (5.0, 25.0)


def _first_fit_decreasing(problem: AssignmentProblem) -> "Assignment | None":
    """Feasibility witness: FFD by mean demand, best-fit by residual capacity.

    Returns a feasible assignment or ``None``.  GAP feasibility is
    itself NP-hard, so this is a one-sided certificate — which is all
    the generators need.
    """
    order = np.argsort(-np.mean(problem.demand, axis=1))
    residual = problem.capacity.copy()
    assignment = Assignment(problem)
    for device in order:
        fits = np.flatnonzero(problem.demand[device] <= residual + 1e-12)
        if fits.size == 0:
            return None
        # take the fitting server with most residual capacity (worst-fit
        # packing keeps options open for later large devices)
        chosen = int(fits[np.argmax(residual[fits])])
        assignment.assign(int(device), chosen)
        residual[chosen] -= problem.demand[device, chosen]
    return assignment


def ensure_feasible_capacity(problem: AssignmentProblem, max_rounds: int = 200) -> None:
    """Scale capacities up (5% steps) until FFD finds a feasible assignment.

    Mutates ``problem.capacity`` in place (and the server entities'
    capacities when present).  Raises
    :class:`~repro.errors.InfeasibleProblemError` if the limit is hit —
    which indicates a generator bug, not a legitimate instance.
    """
    for _ in range(max_rounds):
        if _first_fit_decreasing(problem) is not None:
            if problem.servers is not None:
                problem.servers = [
                    EdgeServer(
                        server_id=s.server_id,
                        node_id=s.node_id,
                        capacity=float(problem.capacity[j]),
                        service_rate=s.service_rate,
                    )
                    for j, s in enumerate(problem.servers)
                ]
            return
        problem.capacity *= 1.05
    raise InfeasibleProblemError(
        f"could not reach feasibility after {max_rounds} capacity relaxations"
    )


def _capacities(
    demand: np.ndarray,
    n_servers: int,
    tightness: float,
    rng: np.random.Generator,
    jitter: float = 0.15,
) -> np.ndarray:
    """Capacities sized so aggregate utilization is about ``tightness``."""
    mean_total = float(np.sum(np.mean(demand, axis=1)))
    base = mean_total / (n_servers * tightness)
    factors = rng.uniform(1.0 - jitter, 1.0 + jitter, size=n_servers)
    capacity = base * factors
    # no single device may exceed the largest capacity, or the instance
    # can be trivially infeasible regardless of tightness
    largest_need = float(np.max(np.min(demand, axis=1)))
    return np.maximum(capacity, largest_need)


def random_instance(
    n_devices: int,
    n_servers: int,
    tightness: float = 0.7,
    seed: "int | np.random.Generator | None" = None,
    delay_range: tuple[float, float] = (1e-3, 20e-3),
    demand_range: tuple[float, float] = DEMAND_RANGE,
    name: "str | None" = None,
) -> AssignmentProblem:
    """Uncorrelated random instance in pure matrix form.

    Delays are uniform in ``delay_range`` (seconds), per-device demand
    uniform in ``demand_range`` (broadcast over servers), capacities
    tuned to ``tightness`` and then certified feasible.
    """
    require(n_devices >= 1, "n_devices must be >= 1")
    require(n_servers >= 1, "n_servers must be >= 1")
    check_in_range(tightness, "tightness", 0.05, 1.0, high_inclusive=False)
    check_positive(delay_range[0], "delay_range[0]")
    require(delay_range[1] > delay_range[0], "delay_range must be increasing")
    rng = make_rng(seed)
    delay = rng.uniform(delay_range[0], delay_range[1], size=(n_devices, n_servers))
    demand = rng.uniform(demand_range[0], demand_range[1], size=n_devices)
    problem = AssignmentProblem(
        delay=delay,
        demand=demand,
        capacity=_capacities(np.repeat(demand[:, None], n_servers, axis=1),
                             n_servers, tightness, rng),
        name=name or f"random-{n_devices}x{n_servers}-t{tightness:.2f}",
    )
    ensure_feasible_capacity(problem)
    return problem


def gap_instance(
    n_devices: int,
    n_servers: int,
    klass: str = "c",
    seed: "int | np.random.Generator | None" = None,
    name: "str | None" = None,
) -> AssignmentProblem:
    """Hard GAP benchmark classes, delay playing the role of cost.

    * ``a`` — loose capacities (tightness ≈ 0.6), uncorrelated;
    * ``b`` — moderate (≈ 0.7), uncorrelated;
    * ``c`` — tight (≈ 0.8), uncorrelated — the standard hard class;
    * ``d`` — tight *and* inversely correlated: the lowest-delay server
      choices carry the highest demand, so chasing delay without
      capacity awareness overloads immediately.
    """
    require(klass in ("a", "b", "c", "d"), f"unknown GAP class {klass!r}")
    require(n_devices >= 1 and n_servers >= 1, "sizes must be >= 1")
    rng = make_rng(seed)
    tightness = {"a": 0.6, "b": 0.7, "c": 0.8, "d": 0.8}[klass]
    if klass == "d":
        demand = rng.uniform(1.0, 100.0, size=(n_devices, n_servers))
        # delay decreases as demand rises, plus noise: greedily attractive
        # servers are exactly the expensive ones to host
        delay = (111.0 - demand + rng.uniform(-10.0, 10.0, size=demand.shape)) * 1e-4
        delay = np.maximum(delay, 1e-5)
    else:
        demand = rng.uniform(5.0, 25.0, size=(n_devices, n_servers))
        delay = rng.uniform(1e-3, 20e-3, size=(n_devices, n_servers))
    problem = AssignmentProblem(
        delay=delay,
        demand=demand,
        capacity=_capacities(demand, n_servers, tightness, rng),
        name=name or f"gap-{klass}-{n_devices}x{n_servers}",
    )
    ensure_feasible_capacity(problem)
    return problem


def topology_instance(
    family: str = "random_geometric",
    n_routers: int = 50,
    n_devices: int = 60,
    n_servers: int = 6,
    tightness: float = 0.7,
    seed: "int | None" = None,
    placement: str = "spread",
    attach: str = "nearest",
    delay_model: "DelayModel | None" = None,
    heterogeneous_servers: bool = False,
    deadline_s: "float | None" = None,
    mean_rate_hz: float = 2.0,
    oversubscription: float = 1.0,
    name: "str | None" = None,
) -> AssignmentProblem:
    """The full paper pipeline: topology → cluster → devices → instance.

    Parameters mirror the evaluation sweeps: topology ``family`` and
    size, cluster size and ``placement`` strategy, device count and
    ``attach`` strategy, capacity ``tightness``.  With
    ``heterogeneous_servers`` the demand matrix becomes genuinely
    server-dependent (GAP in its general form) via per-server speed
    factors.  ``deadline_s`` stamps every device with a latency budget
    for the deadline-miss experiments.  ``oversubscription`` thins
    every tier-crossing uplink's bandwidth by that factor (1.0 is an
    exact no-op, keeping the default pipeline byte-identical); only
    hierarchical families carry region labels, so flat families are
    unaffected.
    """
    require(n_devices >= 1 and n_servers >= 1, "sizes must be >= 1")
    check_in_range(tightness, "tightness", 0.05, 1.0, high_inclusive=False)
    check_positive(mean_rate_hz, "mean_rate_hz")
    base_seed = seed if seed is not None else 0
    graph = make_topology(family, n_routers, seed=derive_seed(base_seed, "topology"))
    server_nodes = place_edge_servers(
        graph, n_servers, seed=derive_seed(base_seed, "placement"), strategy=placement
    )
    device_nodes = attach_iot_devices(
        graph, n_devices, seed=derive_seed(base_seed, "attach"), strategy=attach
    )
    apply_oversubscription(graph, oversubscription)
    rng = make_rng(derive_seed(base_seed, "workload"))
    demands = rng.uniform(*DEMAND_RANGE, size=n_devices)
    rates = rng.uniform(0.5, 1.5, size=n_devices) * mean_rate_hz
    devices = [
        IoTDevice(
            device_id=i,
            node_id=device_nodes[i],
            demand=float(demands[i]),
            rate_hz=float(rates[i]),
            deadline_s=deadline_s,
        )
        for i in range(n_devices)
    ]
    if heterogeneous_servers:
        speed = rng.uniform(0.8, 1.25, size=n_servers)
        demand_matrix = demands[:, None] * speed[None, :]
    else:
        demand_matrix = np.repeat(demands[:, None], n_servers, axis=1)
    capacity = _capacities(demand_matrix, n_servers, tightness, rng)
    servers = [
        EdgeServer(
            server_id=j,
            node_id=server_nodes[j],
            capacity=float(capacity[j]),
            service_rate=float(rng.uniform(80.0, 120.0)),
        )
        for j in range(n_servers)
    ]
    problem = AssignmentProblem.from_topology(
        graph,
        devices,
        servers,
        delay_model=delay_model,
        name=name or f"{family}-{n_devices}x{n_servers}-t{tightness:.2f}",
    )
    if heterogeneous_servers:
        problem.demand = demand_matrix
    ensure_feasible_capacity(problem)
    return problem

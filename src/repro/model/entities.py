"""Domain entities: IoT devices and edge servers.

These carry the physical parameters (demand, capacity, service rate,
deadline) that the matrix-level :class:`~repro.model.problem.AssignmentProblem`
abstracts over, and that the discrete-event simulator needs back when
it replays an assignment as actual traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class IoTDevice:
    """An IoT traffic source.

    Attributes
    ----------
    device_id:
        Index of the device within the problem (row of the matrices).
    node_id:
        Node id in the network topology (where its packets originate).
    demand:
        Load the device places on whichever server it is assigned to,
        in abstract capacity units (e.g. requests/second of work).
    rate_hz:
        Mean message rate, used by the simulator's arrival process.
    deadline_s:
        End-to-end latency budget of one message; ``None`` means the
        device has no real-time constraint.
    """

    device_id: int
    node_id: int
    demand: float
    rate_hz: float = 1.0
    deadline_s: "float | None" = None

    def __post_init__(self) -> None:
        check_positive(self.demand, "demand")
        check_positive(self.rate_hz, "rate_hz")
        if self.deadline_s is not None:
            check_positive(self.deadline_s, "deadline_s")


@dataclass(frozen=True)
class EdgeServer:
    """An edge-cluster compute node.

    Attributes
    ----------
    server_id:
        Index within the problem (column of the matrices).
    node_id:
        Node id in the network topology.
    capacity:
        Admission-control capacity in the same units as device demand;
        the hard "no overload" constraint of the paper.
    service_rate:
        Task-processing rate used by the simulator's server queue
        (tasks/second at unit task size).
    """

    server_id: int
    node_id: int
    capacity: float
    service_rate: float = 100.0

    def __post_init__(self) -> None:
        check_positive(self.capacity, "capacity")
        check_positive(self.service_rate, "service_rate")
        check_nonnegative(self.server_id, "server_id")

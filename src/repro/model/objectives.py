"""Pluggable objective functions over assignments.

The paper's objective is total communication delay; the library also
supports the bottleneck (max) delay, deadline-violation count and a
load-balance-regularized variant, all behind one interface so solvers
stay objective-agnostic.

Objectives are *minimized*.  They are defined for complete assignments;
feasibility (the capacity constraint) is enforced separately by the
solvers, not folded into the objective — except where a solver
explicitly opts into penalty methods (see simulated annealing).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.model.solution import Assignment
from repro.utils.validation import check_nonnegative, require


class Objective(abc.ABC):
    """Scalar figure of merit of an assignment (lower is better)."""

    name: str = "abstract"

    @abc.abstractmethod
    def evaluate(self, assignment: Assignment) -> float:
        """Objective value of ``assignment``."""

    def __call__(self, assignment: Assignment) -> float:
        return self.evaluate(assignment)


class TotalDelay(Objective):
    """Sum of device-to-server delays — the paper's objective."""

    name = "total_delay"

    def evaluate(self, assignment: Assignment) -> float:
        """Objective value of ``assignment`` (lower is better)."""
        return assignment.total_delay()


class MaxDelay(Objective):
    """Bottleneck delay: the worst device's communication delay."""

    name = "max_delay"

    def evaluate(self, assignment: Assignment) -> float:
        """Objective value of ``assignment`` (lower is better)."""
        return assignment.max_delay()


class DeadlineViolations(Objective):
    """Number of devices whose static delay already exceeds their deadline.

    Deadlines come from the device entities when present, else from a
    uniform default.  A device with no deadline never violates.
    """

    name = "deadline_violations"

    def __init__(self, default_deadline_s: "float | None" = None) -> None:
        if default_deadline_s is not None:
            check_nonnegative(default_deadline_s, "default_deadline_s")
        self.default_deadline_s = default_deadline_s

    def evaluate(self, assignment: Assignment) -> float:
        """Objective value of ``assignment`` (lower is better)."""
        problem = assignment.problem
        delays = assignment.per_device_delay()
        violations = 0
        for i in range(problem.n_devices):
            deadline = self.default_deadline_s
            if problem.devices is not None and problem.devices[i].deadline_s is not None:
                deadline = problem.devices[i].deadline_s
            if deadline is None or np.isnan(delays[i]):
                continue
            if delays[i] > deadline:
                violations += 1
        return float(violations)


class LoadBalancedDelay(Objective):
    """Total delay plus a penalty on load imbalance.

    ``objective = total_delay * (1 + weight * std(utilization))`` —
    used by the ablation that asks whether explicitly balancing load
    helps once feasibility is already guaranteed.
    """

    name = "load_balanced_delay"

    def __init__(self, weight: float = 0.5) -> None:
        self.weight = check_nonnegative(weight, "weight")

    def evaluate(self, assignment: Assignment) -> float:
        """Objective value of ``assignment`` (lower is better)."""
        utilization = assignment.utilization()
        imbalance = float(np.std(utilization))
        return assignment.total_delay() * (1.0 + self.weight * imbalance)


def resolve_objective(objective: "Objective | str | None") -> Objective:
    """Accept an Objective, a name, or ``None`` (→ total delay)."""
    if objective is None:
        return TotalDelay()
    if isinstance(objective, Objective):
        return objective
    registry = {
        TotalDelay.name: TotalDelay,
        MaxDelay.name: MaxDelay,
        DeadlineViolations.name: DeadlineViolations,
        LoadBalancedDelay.name: LoadBalancedDelay,
    }
    require(objective in registry, f"unknown objective {objective!r}; known: {sorted(registry)}")
    return registry[objective]()

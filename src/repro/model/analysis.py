"""Instance diagnostics: how hard is this assignment problem?

The evaluation sweeps instance *generators*; this module measures the
properties of a concrete *instance* that predict solver behaviour:

* capacity pressure (tightness, per-server headroom under the relaxed
  optimum);
* delay structure (spread, correlation with demand — the class-d
  signature);
* contention (how many devices share each relaxed-optimal server).

``difficulty_report`` bundles them into one dict; the T1/F2 analyses
in EXPERIMENTS.md reference these numbers when explaining where greedy
breaks down.
"""

from __future__ import annotations

import numpy as np

from repro.model.problem import AssignmentProblem


def capacity_pressure(problem: AssignmentProblem) -> dict[str, float]:
    """Capacity-side difficulty measures.

    ``relaxed_overload_fraction`` is the share of servers that would be
    overloaded if every device took its minimum-delay server — 0 means
    delay-greedy is trivially feasible, large values mean the capacity
    constraint actively fights the objective.
    """
    n = problem.n_devices
    nearest = np.argmin(problem.delay, axis=1)
    relaxed_loads = np.zeros(problem.n_servers)
    np.add.at(relaxed_loads, nearest, problem.demand[np.arange(n), nearest])
    overloaded = np.count_nonzero(relaxed_loads > problem.capacity + 1e-12)
    return {
        "tightness": problem.tightness,
        "relaxed_overload_fraction": overloaded / problem.n_servers,
        "relaxed_max_utilization": float(
            np.max(
                np.where(
                    problem.capacity > 0,
                    relaxed_loads / np.where(problem.capacity > 0, problem.capacity, 1.0),
                    np.where(relaxed_loads > 0, np.inf, 0.0),
                )
            )
        ),
        "mean_devices_per_server": n / problem.n_servers,
    }


def delay_structure(problem: AssignmentProblem) -> dict[str, float]:
    """Delay-side difficulty measures.

    ``delay_demand_correlation`` near -1 is the hard, class-d-like
    regime: the cheapest servers are the most expensive to host.
    ``normalized_regret`` is the mean relative price of a device's
    second-best server — near 0 means assignment barely matters.
    """
    delay = problem.delay
    flat_delay = delay.reshape(-1)
    flat_demand = problem.demand.reshape(-1)
    if np.std(flat_delay) > 0 and np.std(flat_demand) > 0:
        correlation = float(np.corrcoef(flat_delay, flat_demand)[0, 1])
    else:
        correlation = 0.0
    sorted_delay = np.sort(delay, axis=1)
    best = sorted_delay[:, 0]
    second = sorted_delay[:, 1] if problem.n_servers > 1 else best
    regret = np.where(best > 0, (second - best) / best, 0.0)
    return {
        "delay_spread": float(np.max(delay) / max(float(np.min(delay)), 1e-12)),
        "delay_demand_correlation": correlation,
        "normalized_regret": float(np.mean(regret)),
    }


def server_contention(problem: AssignmentProblem) -> dict[str, float]:
    """How concentrated is demand on the attractive servers?

    ``nearest_share_top`` is the fraction of devices whose minimum-delay
    server is the single most popular one; high values mean one hotspot
    server decides the instance.
    """
    nearest = np.argmin(problem.delay, axis=1)
    counts = np.bincount(nearest, minlength=problem.n_servers)
    return {
        "nearest_share_top": float(np.max(counts)) / problem.n_devices,
        "nearest_servers_used": float(np.count_nonzero(counts)) / problem.n_servers,
    }


def difficulty_report(problem: AssignmentProblem) -> dict[str, float]:
    """All diagnostics in one flat dict."""
    report: dict[str, float] = {}
    report.update(capacity_pressure(problem))
    report.update(delay_structure(problem))
    report.update(server_contention(problem))
    return report


def classify_difficulty(problem: AssignmentProblem) -> str:
    """Coarse label used by logs and the CLI: easy / moderate / hard.

    * **easy** — delay-greedy is feasible as-is;
    * **hard** — tight capacities *and* anti-correlated delays (the
      regime where only capacity-aware search wins);
    * **moderate** — everything else.
    """
    pressure = capacity_pressure(problem)
    structure = delay_structure(problem)
    if pressure["relaxed_max_utilization"] <= 1.0:
        return "easy"
    if pressure["tightness"] > 0.75 and structure["delay_demand_correlation"] < -0.5:
        return "hard"
    return "moderate"

"""Assignments and their feasibility/quality metrics.

:class:`Assignment` is a thin, mutable wrapper over an ``(N,)`` vector
of server indices (``-1`` = unassigned).  All metrics are derived from
the owning :class:`~repro.model.problem.AssignmentProblem`'s matrices,
so a solution is always interpreted against exactly one instance.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import InfeasibleSolutionError, SerializationError
from repro.model.problem import AssignmentProblem
from repro.utils.validation import require

UNASSIGNED = -1


class Assignment:
    """A (possibly partial) assignment of devices to servers."""

    def __init__(
        self,
        problem: AssignmentProblem,
        vector: "np.ndarray | list[int] | None" = None,
    ) -> None:
        self.problem = problem
        if vector is None:
            self._vector = np.full(problem.n_devices, UNASSIGNED, dtype=np.int64)
        else:
            arr = np.asarray(vector, dtype=np.int64).reshape(-1)
            require(
                arr.shape[0] == problem.n_devices,
                f"assignment vector must have length {problem.n_devices}, got {arr.shape[0]}",
            )
            require(
                bool(np.all((arr >= UNASSIGNED) & (arr < problem.n_servers))),
                f"assignment entries must be in [-1, {problem.n_servers - 1}]",
            )
            self._vector = arr.copy()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def assign(self, device: int, server: int) -> None:
        """Assign ``device`` to ``server`` (overwriting any previous choice)."""
        require(0 <= device < self.problem.n_devices, f"device {device} out of range")
        require(0 <= server < self.problem.n_servers, f"server {server} out of range")
        self._vector[device] = server

    def unassign(self, device: int) -> None:
        """Remove ``device``'s server choice."""
        require(0 <= device < self.problem.n_devices, f"device {device} out of range")
        self._vector[device] = UNASSIGNED

    def copy(self) -> "Assignment":
        """Independent copy sharing the same problem."""
        return Assignment(self.problem, self._vector)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def vector(self) -> np.ndarray:
        """The raw assignment vector (a copy; mutate via :meth:`assign`)."""
        return self._vector.copy()

    def server_of(self, device: int) -> int:
        """Server index assigned to ``device`` (-1 if unassigned)."""
        require(0 <= device < self.problem.n_devices, f"device {device} out of range")
        return int(self._vector[device])

    def devices_on(self, server: int) -> list[int]:
        """Device indices currently assigned to ``server``."""
        require(0 <= server < self.problem.n_servers, f"server {server} out of range")
        return [int(i) for i in np.flatnonzero(self._vector == server)]

    @property
    def is_complete(self) -> bool:
        """True when every device has a server."""
        return bool(np.all(self._vector != UNASSIGNED))

    def loads(self) -> np.ndarray:
        """Per-server load: sum of ``demand[i, a(i)]`` over assigned devices."""
        loads = np.zeros(self.problem.n_servers, dtype=np.float64)
        assigned = np.flatnonzero(self._vector != UNASSIGNED)
        if assigned.size:
            np.add.at(loads, self._vector[assigned],
                      self.problem.demand[assigned, self._vector[assigned]])
        return loads

    def utilization(self) -> np.ndarray:
        """Per-server load divided by capacity (1.0 = exactly full).

        A zero-capacity (failed) server reads 0 when empty and ``inf``
        when anything is on it.
        """
        loads = self.loads()
        capacity = self.problem.capacity
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                capacity > 0,
                loads / np.where(capacity > 0, capacity, 1.0),
                np.where(loads > 0, np.inf, 0.0),
            )
        return util

    def overloaded_servers(self, tolerance: float = 1e-9) -> list[int]:
        """Servers whose load exceeds capacity beyond numerical tolerance."""
        excess = self.loads() - self.problem.capacity
        return [int(j) for j in np.flatnonzero(excess > tolerance)]

    def total_violation(self) -> float:
        """Sum of load in excess of capacity across all servers."""
        excess = self.loads() - self.problem.capacity
        return float(np.sum(np.maximum(excess, 0.0)))

    def devices_on_failed(self) -> list[int]:
        """Device indices assigned to a server in the problem's failure mask."""
        failed = self.problem.failed_servers
        if not failed:
            return []
        return [
            int(i) for i in np.flatnonzero(self._vector != UNASSIGNED)
            if int(self._vector[i]) in failed
        ]

    def is_feasible(self, tolerance: float = 1e-9) -> bool:
        """Complete, no server overloaded, and no device on a failed server."""
        return (
            self.is_complete
            and not self.overloaded_servers(tolerance)
            and not self.devices_on_failed()
        )

    def validate(self) -> None:
        """Raise :class:`InfeasibleSolutionError` describing any violation."""
        if not self.is_complete:
            missing = [int(i) for i in np.flatnonzero(self._vector == UNASSIGNED)]
            raise InfeasibleSolutionError(
                f"{len(missing)} devices unassigned (first few: {missing[:5]})"
            )
        stranded = self.devices_on_failed()
        if stranded:
            raise InfeasibleSolutionError(
                f"{len(stranded)} devices assigned to failed servers "
                f"{sorted(self.problem.failed_servers)} (first few: {stranded[:5]})"
            )
        overloaded = self.overloaded_servers()
        if overloaded:
            util = self.utilization()
            detail = ", ".join(f"server {j}: {util[j]:.2%}" for j in overloaded[:5])
            raise InfeasibleSolutionError(f"overloaded servers: {detail}")

    # ------------------------------------------------------------------
    # objective values
    # ------------------------------------------------------------------
    def per_device_delay(self) -> np.ndarray:
        """Delay of each assigned device; NaN for unassigned devices."""
        delays = np.full(self.problem.n_devices, np.nan)
        assigned = np.flatnonzero(self._vector != UNASSIGNED)
        if assigned.size:
            delays[assigned] = self.problem.delay[assigned, self._vector[assigned]]
        return delays

    def total_delay(self) -> float:
        """Sum of assigned devices' delays (the paper's objective)."""
        delays = self.per_device_delay()
        return float(np.nansum(delays))

    def mean_delay(self) -> float:
        """Mean delay over assigned devices (NaN when none)."""
        assigned = np.count_nonzero(self._vector != UNASSIGNED)
        return self.total_delay() / assigned if assigned else float("nan")

    def max_delay(self) -> float:
        """Largest assigned device delay (NaN when none)."""
        delays = self.per_device_delay()
        finite = delays[~np.isnan(delays)]
        return float(np.max(finite)) if finite.size else float("nan")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps({"vector": self._vector.tolist()})

    @classmethod
    def from_json(cls, problem: AssignmentProblem, text: str) -> "Assignment":
        """Parse an instance previously produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
            return cls(problem, payload["vector"])
        except (json.JSONDecodeError, KeyError) as exc:
            raise SerializationError(f"invalid assignment JSON: {exc}") from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self.problem is other.problem and bool(np.all(self._vector == other._vector))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "feasible" if self.is_feasible() else (
            "complete-infeasible" if self.is_complete else "partial"
        )
        return f"Assignment({state}, total_delay={self.total_delay():.6f})"

"""The assignment problem instance.

:class:`AssignmentProblem` is the contract between every other
subsystem: topology builders produce one, solvers consume one, the
simulator replays solutions of one.  It is a *generalized* assignment
problem — the load a device places may depend on which server runs it
(heterogeneous server speeds) — with delay as the cost to minimize::

    minimize    sum_i  delay[i, a(i)]
    subject to  sum_{i: a(i)=j}  demand[i, j]  <=  capacity[j]   for all j
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SerializationError
from repro.model.entities import EdgeServer, IoTDevice
from repro.topology.delay import DelayModel, TransmissionDelayModel
from repro.topology.graph import NetworkGraph
from repro.utils.validation import check_matrix, require


@dataclass
class AssignmentProblem:
    """An instance of the delay-minimizing generalized assignment problem.

    Attributes
    ----------
    delay:
        ``(N, M)`` matrix; ``delay[i, j]`` is the communication delay
        (seconds) between IoT device ``i`` and edge server ``j``.
    demand:
        ``(N, M)`` matrix; ``demand[i, j]`` is the load device ``i``
        places on server ``j`` if assigned there.  A 1-D array of
        length ``N`` is accepted and broadcast across servers.
    capacity:
        ``(M,)`` vector of server capacities.
    devices / servers:
        Optional entity lists carrying simulator-facing parameters;
        present when the instance was built from a topology.
    graph:
        The backing :class:`NetworkGraph`, when one exists.
    failed_servers:
        Explicit down-server mask.  A failed server cannot host any
        device: assignments targeting one are invalid regardless of
        numeric capacity (see :meth:`Assignment.validate`).  Failed
        servers are the only ones allowed a zero capacity.
    objective:
        Cost-model mode: ``"delay"`` (the default static per-path
        scalar) or ``"congestion"`` (flow-based effective delay; see
        :mod:`repro.contention`).  Solvers that understand the mode
        read it as a hint; everything else treats the instance exactly
        as before.
    name:
        Label used in tables and experiment logs.
    """

    delay: np.ndarray
    demand: np.ndarray
    capacity: np.ndarray
    devices: "list[IoTDevice] | None" = None
    servers: "list[EdgeServer] | None" = None
    graph: "NetworkGraph | None" = field(default=None, repr=False)
    failed_servers: frozenset[int] = frozenset()
    objective: str = "delay"
    name: str = "instance"

    def __post_init__(self) -> None:
        self.delay = check_matrix(self.delay, "delay", nonnegative=True)
        n, m = self.delay.shape
        require(n >= 1 and m >= 1, "problem must have at least one device and one server")
        demand = np.asarray(self.demand, dtype=np.float64)
        if demand.ndim == 1:
            require(
                demand.shape[0] == n,
                f"1-D demand must have length {n}, got {demand.shape[0]}",
            )
            demand = np.repeat(demand[:, None], m, axis=1)
        self.demand = check_matrix(demand, "demand", shape=(n, m), nonnegative=True)
        require(np.all(self.demand > 0), "demand must be strictly positive")
        capacity = np.asarray(self.capacity, dtype=np.float64).reshape(-1)
        require(
            capacity.shape[0] == m,
            f"capacity must have length {m}, got {capacity.shape[0]}",
        )
        self.failed_servers = frozenset(int(j) for j in self.failed_servers)
        for server in self.failed_servers:
            require(0 <= server < m, f"failed server {server} out of range [0, {m})")
        require(
            len(self.failed_servers) < m,
            "at least one server must stay healthy",
        )
        healthy = np.array(
            [j not in self.failed_servers for j in range(m)], dtype=bool
        )
        require(np.all(np.isfinite(capacity)) and np.all(capacity >= 0),
                "capacity must be nonnegative and finite")
        require(np.all(capacity[healthy] > 0),
                "healthy servers must have positive capacity")
        self.capacity = capacity
        require(
            self.objective in ("delay", "congestion"),
            f"unknown objective mode {self.objective!r}; "
            f"expected 'delay' or 'congestion'",
        )
        if self.devices is not None:
            require(len(self.devices) == n, "devices list length must equal N")
        if self.servers is not None:
            require(len(self.servers) == m, "servers list length must equal M")

    # ------------------------------------------------------------------
    @property
    def n_devices(self) -> int:
        """Number of IoT devices (rows of the matrices)."""
        return self.delay.shape[0]

    @property
    def n_servers(self) -> int:
        """Number of edge servers (columns of the matrices)."""
        return self.delay.shape[1]

    @property
    def tightness(self) -> float:
        """Aggregate demand pressure: mean per-device demand / total capacity.

        Values near 1 mean capacities are nearly saturated, the regime
        where naive delay-greedy assignment breaks down.
        """
        mean_demand = float(np.sum(np.mean(self.demand, axis=1)))
        return mean_demand / float(np.sum(self.capacity))

    def healthy_mask(self) -> np.ndarray:
        """Boolean ``(M,)`` mask of servers that are up."""
        mask = np.ones(self.n_servers, dtype=bool)
        for server in self.failed_servers:
            mask[server] = False
        return mask

    def delay_lower_bound(self) -> float:
        """Capacity-relaxed lower bound: every device takes its best server.

        Admissible for branch-and-bound and a sanity floor for every
        solver's objective.  Failed servers are masked out — no valid
        assignment may use them, so their (possibly very small) delay
        columns must not drag the bound down.
        """
        if not self.failed_servers:
            return float(np.sum(np.min(self.delay, axis=1)))
        usable = self.delay[:, self.healthy_mask()]
        return float(np.sum(np.min(usable, axis=1)))

    def normalized_delay(self) -> np.ndarray:
        """Delay matrix scaled to [0, 1] (used by RL features).

        Scaling statistics come from healthy columns only; failed
        servers' columns are pinned to 1.0 (the worst value) so the
        feature encoding marks them as maximally unattractive instead
        of letting a down server distort the scale.
        """
        if not self.failed_servers:
            low = float(np.min(self.delay))
            span = float(np.max(self.delay)) - low
            if span <= 0:
                return np.zeros_like(self.delay)
            return (self.delay - low) / span
        mask = self.healthy_mask()
        usable = self.delay[:, mask]
        low = float(np.min(usable))
        span = float(np.max(usable)) - low
        if span <= 0:
            scaled = np.zeros_like(self.delay)
        else:
            scaled = np.clip((self.delay - low) / span, 0.0, 1.0)
        scaled[:, ~mask] = 1.0
        return scaled

    # ------------------------------------------------------------------
    @classmethod
    def from_topology(
        cls,
        graph: NetworkGraph,
        devices: list[IoTDevice],
        servers: list[EdgeServer],
        delay_model: "DelayModel | None" = None,
        name: str = "topology-instance",
    ) -> "AssignmentProblem":
        """Build the matrix form of a topology-embedded instance.

        Delays come from routed paths under ``delay_model`` (default:
        the full transmission model); demand is device demand broadcast
        across servers; capacities come from the server entities.
        """
        require(len(devices) >= 1, "need at least one device")
        require(len(servers) >= 1, "need at least one server")
        model = delay_model if delay_model is not None else TransmissionDelayModel()
        delay = model.matrix(
            graph,
            [d.node_id for d in devices],
            [s.node_id for s in servers],
        )
        demand = np.array([d.demand for d in devices], dtype=np.float64)
        capacity = np.array([s.capacity for s in servers], dtype=np.float64)
        return cls(
            delay=delay,
            demand=demand,
            capacity=capacity,
            devices=list(devices),
            servers=list(servers),
            graph=graph,
            name=name,
        )

    # ------------------------------------------------------------------
    # serialization (matrix form only; the graph is not serialized)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation of the matrix form."""
        payload = {
            "name": self.name,
            "delay": self.delay.tolist(),
            "demand": self.demand.tolist(),
            "capacity": self.capacity.tolist(),
        }
        if self.failed_servers:
            payload["failed_servers"] = sorted(self.failed_servers)
        if self.objective != "delay":
            payload["objective"] = self.objective
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AssignmentProblem":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                delay=np.asarray(payload["delay"], dtype=np.float64),
                demand=np.asarray(payload["demand"], dtype=np.float64),
                capacity=np.asarray(payload["capacity"], dtype=np.float64),
                failed_servers=frozenset(payload.get("failed_servers", ())),
                objective=str(payload.get("objective", "delay")),
                name=str(payload.get("name", "instance")),
            )
        except KeyError as exc:
            raise SerializationError(f"missing field in problem payload: {exc}") from exc

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "AssignmentProblem":
        """Parse an instance previously produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid problem JSON: {exc}") from exc
        return cls.from_dict(payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AssignmentProblem(name={self.name!r}, devices={self.n_devices}, "
            f"servers={self.n_servers}, tightness={self.tightness:.2f})"
        )

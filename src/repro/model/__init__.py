"""Problem model: the generalized assignment problem (GAP) instance.

The paper casts IoT-to-edge cluster configuration as a GAP: minimize
total communication delay of assigning each IoT device to one edge
server, subject to server capacities.  This package defines:

* :mod:`repro.model.entities` — devices and servers;
* :mod:`repro.model.problem` — :class:`AssignmentProblem`;
* :mod:`repro.model.solution` — :class:`Assignment` and feasibility;
* :mod:`repro.model.objectives` — pluggable objective functions;
* :mod:`repro.model.instances` — random and topology-backed instance
  generators, including the hard correlated (Chu–Beasley style) classes.
"""

from repro.model.analysis import classify_difficulty, difficulty_report
from repro.model.entities import EdgeServer, IoTDevice
from repro.model.instances import gap_instance, random_instance, topology_instance
from repro.model.objectives import (
    DeadlineViolations,
    LoadBalancedDelay,
    MaxDelay,
    Objective,
    TotalDelay,
)
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment

__all__ = [
    "classify_difficulty",
    "difficulty_report",
    "EdgeServer",
    "IoTDevice",
    "gap_instance",
    "random_instance",
    "topology_instance",
    "DeadlineViolations",
    "LoadBalancedDelay",
    "MaxDelay",
    "Objective",
    "TotalDelay",
    "AssignmentProblem",
    "Assignment",
]

"""The perf regression gate: fresh measurements vs the recorded baseline.

A probe regresses when its fresh best-of-N time exceeds
``baseline * (1 + max_regression)``.  The default headroom of 0.5
(50%) tolerates shared-runner noise on sub-100ms probes; tighten it
for dedicated hardware.  ``max_regression`` may be negative — at
``-1.0`` the allowance is zero seconds and every probe fails, which
is how CI exercises the breached path without doctoring history
files.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.perf.history import baseline_record, load_history

__all__ = ["compare_to_baseline", "check_against_baseline"]


def compare_to_baseline(
    baseline: dict, measured: "dict[str, float]", max_regression: float
) -> "list[dict]":
    """Per-probe comparison rows for probes present on both sides."""
    comparisons = []
    for name, measured_s in measured.items():
        baseline_s = baseline["probes"].get(name)
        if baseline_s is None:
            continue  # new probe: nothing to gate against yet
        allowed_s = baseline_s * (1.0 + max_regression)
        comparisons.append({
            "probe": name,
            "baseline_s": float(baseline_s),
            "measured_s": float(measured_s),
            "ratio": (measured_s / baseline_s) if baseline_s > 0 else float("inf"),
            "allowed_s": allowed_s,
            "regressed": measured_s > allowed_s,
        })
    return comparisons


def check_against_baseline(
    history_path,
    probes: "list[str] | None" = None,
    repeats: int = 3,
    max_regression: float = 0.5,
) -> dict:
    """Measure now and gate against the baseline in ``history_path``.

    Raises :class:`~repro.errors.ReproError` when there is no usable
    baseline; returns ``{"baseline", "measured", "comparisons",
    "regressions"}`` otherwise.
    """
    from repro.perf.probes import measure

    baseline = baseline_record(load_history(history_path))
    if baseline is None:
        raise ReproError(
            f"no perf history at {history_path}; run `repro perf record "
            f"--baseline` first"
        )
    measured = measure(probes, repeats=repeats)
    comparisons = compare_to_baseline(baseline, measured, max_regression)
    return {
        "baseline": baseline,
        "measured": measured,
        "comparisons": comparisons,
        "regressions": [c for c in comparisons if c["regressed"]],
    }

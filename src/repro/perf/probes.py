"""Fast deterministic performance probes.

Each probe is a self-contained callable exercising one hot path of
the library on a fixed tiny workload (fixed seeds, quick-scale sizes)
so a full sweep of all probes stays in low single-digit seconds.
Probes measure *relative* speed across commits, not absolute paper
numbers — the benchmark suite under ``benchmarks/`` owns those.

Timing discipline: :func:`measure` runs each probe once unmeasured to
warm imports and caches, then ``repeats`` measured times, and reports
the **minimum** wall time — the standard noise-rejection estimator
for short benchmarks (interference only ever adds time).
"""

from __future__ import annotations

import time

from repro.utils.validation import require

__all__ = ["PROBES", "probe_names", "measure"]


def _tiny_problem():
    from repro.model.instances import topology_instance

    return topology_instance(
        family="random_geometric",
        n_routers=24,
        n_devices=20,
        n_servers=4,
        tightness=0.75,
        seed=7,
        deadline_s=0.05,
    )


def probe_solve_greedy() -> None:
    """One greedy solve on a tiny topology instance."""
    from repro.solvers.registry import get_solver

    get_solver("greedy", seed=7).solve(_tiny_problem())


def probe_solve_local_search() -> None:
    """One local-search solve (the iterative-improvement hot loop)."""
    from repro.solvers.registry import get_solver

    get_solver("local_search", seed=7).solve(_tiny_problem())


def probe_sim_short() -> None:
    """A short DES replay of a solved assignment (event loop + network)."""
    from repro.sim.runner import simulate_assignment
    from repro.solvers.registry import get_solver

    result = get_solver("greedy", seed=7).solve(_tiny_problem())
    simulate_assignment(result.assignment, duration_s=4.0, seed=11)


def probe_engine_grid() -> None:
    """A 4-cell serial engine sweep (spec hashing + dispatch overhead)."""
    from repro.engine import EngineOptions, JobSpec, run_jobs

    instance_json = _tiny_problem().to_json()
    specs = [
        JobSpec(
            experiment="perf-probe",
            fn="repro.cli.commands:compare_cell",
            params={"solver": name, "instance_json": instance_json},
            seed=7,
            label=f"probe {name}",
        )
        for name in ("greedy", "regret", "greedy", "regret")
    ]
    run_jobs(specs, EngineOptions(jobs=1))


#: probe name -> zero-argument callable (insertion order is report order)
PROBES = {
    "solve_greedy": probe_solve_greedy,
    "solve_local_search": probe_solve_local_search,
    "sim_short": probe_sim_short,
    "engine_grid": probe_engine_grid,
}


def probe_names() -> "list[str]":
    """All registered probe names, in report order."""
    return list(PROBES)


def measure(
    probes: "list[str] | None" = None, repeats: int = 3
) -> "dict[str, float]":
    """Best-of-``repeats`` wall seconds per probe.

    ``probes=None`` runs all of them; unknown names raise early so a
    CI typo fails loudly instead of silently gating nothing.
    """
    require(repeats >= 1, f"repeats must be >= 1, got {repeats}")
    names = probe_names() if probes is None else list(probes)
    unknown = sorted(set(names) - set(PROBES))
    require(not unknown, f"unknown perf probes {unknown}; known: {probe_names()}")
    results: dict[str, float] = {}
    for name in names:
        fn = PROBES[name]
        fn()  # warm-up: imports, matrix caches
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        results[name] = best
    return results

"""Fast deterministic performance probes.

Each probe is a self-contained callable exercising one hot path of
the library on a fixed tiny workload (fixed seeds, quick-scale sizes)
so a full sweep of all probes stays in low single-digit seconds.
Probes measure *relative* speed across commits, not absolute paper
numbers — the benchmark suite under ``benchmarks/`` owns those.

Timing discipline: :func:`measure` runs each probe once unmeasured to
warm imports and caches, then ``repeats`` measured times, and reports
the **minimum** wall time — the standard noise-rejection estimator
for short benchmarks (interference only ever adds time).
"""

from __future__ import annotations

import time

from repro.utils.validation import require

__all__ = ["PROBES", "probe_names", "measure"]


def _tiny_problem():
    from repro.model.instances import topology_instance

    return topology_instance(
        family="random_geometric",
        n_routers=24,
        n_devices=20,
        n_servers=4,
        tightness=0.75,
        seed=7,
        deadline_s=0.05,
    )


def probe_solve_greedy() -> None:
    """One greedy solve on a tiny topology instance."""
    from repro.solvers.registry import get_solver

    get_solver("greedy", seed=7).solve(_tiny_problem())


def probe_solve_local_search() -> None:
    """One local-search solve (the iterative-improvement hot loop)."""
    from repro.solvers.registry import get_solver

    get_solver("local_search", seed=7).solve(_tiny_problem())


def probe_sim_short() -> None:
    """A short DES replay of a solved assignment (event loop + network)."""
    from repro.sim.runner import simulate_assignment
    from repro.solvers.registry import get_solver

    result = get_solver("greedy", seed=7).solve(_tiny_problem())
    simulate_assignment(result.assignment, duration_s=4.0, seed=11)


def probe_engine_grid() -> None:
    """A 4-cell serial engine sweep (spec hashing + dispatch overhead)."""
    from repro.engine import EngineOptions, JobSpec, run_jobs

    instance_json = _tiny_problem().to_json()
    specs = [
        JobSpec(
            experiment="perf-probe",
            fn="repro.cli.commands:compare_cell",
            params={"solver": name, "instance_json": instance_json},
            seed=7,
            label=f"probe {name}",
        )
        for name in ("greedy", "regret", "greedy", "regret")
    ]
    run_jobs(specs, EngineOptions(jobs=1))


def _tiny_loadtest(n_requests: int):
    """One fixed-seed in-process loadtest run; returns the report."""
    import asyncio

    from repro.serve import (
        AssignmentService,
        InProcessClient,
        LoadTestConfig,
        ServiceConfig,
        run_loadtest,
    )

    problem = _tiny_problem()
    config = LoadTestConfig(
        n_requests=n_requests, rate_hz=50_000.0, profile="poisson", seed=7
    )

    async def scenario():
        service = AssignmentService(problem, ServiceConfig(max_queue=100_000))
        await service.start()
        try:
            return await run_loadtest(
                InProcessClient(service),
                problem.n_devices,
                config,
                collect_stats=False,
            )
        finally:
            await service.stop()

    return asyncio.run(scenario())


def probe_serve_loadtest_p99() -> float:
    """p99 request latency (seconds) of a fixed-seed in-process loadtest."""
    return _tiny_loadtest(300).latency_ms["p99"] / 1e3


def probe_serve_throughput() -> None:
    """Wall time to serve a fixed-size loadtest (inverse throughput)."""
    _tiny_loadtest(500)


def _tiny_sharded_loadtest(n_requests: int):
    """The same fixed-seed loadtest through an in-process shard router."""
    import asyncio

    from repro.serve import (
        AssignmentService,
        LoadTestConfig,
        ServiceConfig,
        run_loadtest,
    )
    from repro.shard import InProcessBackend, ShardRouter, build_plan

    problem = _tiny_problem()
    plan = build_plan(problem, 3)
    config = LoadTestConfig(
        n_requests=n_requests, rate_hz=50_000.0, profile="poisson", seed=7
    )

    async def scenario():
        services = {}
        backends = {}
        for spec in plan.shards:
            service = AssignmentService(
                plan.subproblem(problem, spec.name),
                ServiceConfig(max_queue=100_000),
            )
            await service.start()
            services[spec.name] = service
            backends[spec.name] = InProcessBackend(spec.name, service)
        router = ShardRouter(plan, backends)
        await router.start()
        try:
            return await run_loadtest(
                router, problem.n_devices, config, collect_stats=False
            )
        finally:
            await router.stop()
            for service in services.values():
                if service.started:
                    await service.stop()

    return asyncio.run(scenario())


def probe_shard_loadtest_p99() -> float:
    """p99 request latency (seconds) through the sharded front end."""
    return _tiny_sharded_loadtest(300).latency_ms["p99"] / 1e3


def probe_shard_route_throughput() -> None:
    """Wall time to route a fixed-size loadtest across shards."""
    _tiny_sharded_loadtest(500)


def probe_serve_gray_p99() -> float:
    """p99 latency (seconds) of the defense stack under a gray wire.

    A fixed-seed sharded loadtest with deadlines and hedging on, over a
    scripted netem wire that drops a tenth of one shard's requests and
    holds another shard gray-slow — the serving tier's worst day,
    reduced to one number the perf gate can watch.
    """
    import asyncio

    from repro.netem import NetemBackend, NetemEngine, NetemRule, NetemScript
    from repro.serve import (
        AssignmentService,
        LoadTestConfig,
        ServiceConfig,
        run_loadtest,
    )
    from repro.shard import (
        InProcessBackend,
        RouterConfig,
        ShardRouter,
        build_plan,
    )

    problem = _tiny_problem()
    plan = build_plan(problem, 3)
    shard_names = [s.name for s in plan.shards]
    engine = NetemEngine(NetemScript(seed=7, rules=(
        NetemRule(kind="drop", edge=f"*->{shard_names[0]}",
                  direction="forward", p=0.1),
        NetemRule(kind="slow", edge=f"*->{shard_names[-1]}", factor=3.0),
        NetemRule(kind="delay", edge="*", direction="forward",
                  delay_s=0.0005, jitter_s=0.0005),
    )))
    config = LoadTestConfig(
        n_requests=300, rate_hz=2_000.0, profile="poisson", seed=7
    )

    async def scenario():
        services = {}
        backends = {}
        for spec in plan.shards:
            service = AssignmentService(
                plan.subproblem(problem, spec.name),
                ServiceConfig(max_queue=100_000),
            )
            await service.start()
            services[spec.name] = service
            backends[spec.name] = NetemBackend(
                InProcessBackend(spec.name, service), engine
            )
        router = ShardRouter(
            plan, backends,
            RouterConfig(default_deadline_ms=2_000.0, hedge=True),
        )
        await router.start()
        try:
            return await run_loadtest(
                router, problem.n_devices, config, collect_stats=False
            )
        finally:
            await router.stop()
            for service in services.values():
                if service.started:
                    await service.stop()

    return asyncio.run(scenario()).latency_ms["p99"] / 1e3


def probe_shard_recovery_time() -> float:
    """Seconds to rebuild a shard's state from its WAL after a crash.

    Journals a fixed mutation workload (assigns, releases, a swap and a
    snapshot roll), then times a fresh state's snapshot + journal
    replay — the recovery cost the gray-failure experiments bound.
    """
    import tempfile
    import time as _time

    from repro.model.instances import random_instance
    from repro.serve.state import ServiceState
    from repro.wal import WriteAheadLog

    problem = random_instance(200, 8, tightness=0.6, seed=7)
    with tempfile.TemporaryDirectory(prefix="probe-wal-") as wal_dir:
        state = ServiceState(
            problem, wal=WriteAheadLog(wal_dir, snapshot_every=256)
        )
        for _ in range(4):
            for device in range(0, 200, 2):
                state.assign(device)
            for device in range(0, 200, 2):
                state.release(device)
        state._wal.close()
        fresh = ServiceState(problem, wal=WriteAheadLog(wal_dir))
        started = _time.perf_counter()
        fresh.recover()
        return _time.perf_counter() - started


def _contention_setup():
    """Oversubscribed tiny instance + contention model (shared by probes)."""
    from repro.contention import ContentionConfig, ContentionModel
    from repro.model.instances import topology_instance

    problem = topology_instance(
        family="edge_hierarchy",
        n_routers=25,
        n_devices=30,
        n_servers=3,
        tightness=0.8,
        seed=7,
        oversubscription=8.0,
    )
    model = ContentionModel(problem, ContentionConfig(flow_scale=300.0))
    return problem, model


def probe_contention_delta_eval() -> None:
    """A burst of incremental shift deltas on a congested instance.

    2000 ``shift_delta`` evaluations (every 10th committed) — the inner
    loop of every congestion-aware solver.  The CI smoke job separately
    asserts this path beats the full-recompute oracle by >= 10x; this
    probe guards its absolute speed across commits.
    """
    from repro.contention import IncrementalEvaluator
    from repro.solvers.greedy import greedy_feasible_assignment

    problem, model = _contention_setup()
    vector = greedy_feasible_assignment(problem).vector
    evaluator = IncrementalEvaluator(model, vector)
    n_servers = problem.n_servers
    for step in range(2000):
        device = step % problem.n_devices
        server = (step * 7 + device) % n_servers
        evaluator.shift_delta(device, server)
        if step % 10 == 0:
            evaluator.apply_shift(device, server)


def probe_contention_solve() -> None:
    """One congestion-aware local-search solve on a congested instance."""
    from repro.solvers.registry import get_solver

    problem, model = _contention_setup()
    get_solver("congestion_local_search", seed=7, config=model.config).solve(
        problem
    )


#: probe name -> zero-argument callable (insertion order is report order)
PROBES = {
    "solve_greedy": probe_solve_greedy,
    "solve_local_search": probe_solve_local_search,
    "sim_short": probe_sim_short,
    "engine_grid": probe_engine_grid,
    "serve_loadtest_p99": probe_serve_loadtest_p99,
    "serve_throughput": probe_serve_throughput,
    "shard_loadtest_p99": probe_shard_loadtest_p99,
    "shard_route_throughput": probe_shard_route_throughput,
    "serve_gray_p99": probe_serve_gray_p99,
    "shard_recovery_time": probe_shard_recovery_time,
    "contention_delta_eval": probe_contention_delta_eval,
    "contention_solve": probe_contention_solve,
}


def probe_names() -> "list[str]":
    """All registered probe names, in report order."""
    return list(PROBES)


def measure(
    probes: "list[str] | None" = None, repeats: int = 3
) -> "dict[str, float]":
    """Best-of-``repeats`` seconds per probe (lower is always better).

    A probe that returns ``None`` is timed (wall seconds).  A probe
    that returns a float reports that value instead — for latency
    probes whose interesting number is a percentile the probe itself
    computed, not its own wall time.  Either way the minimum over
    ``repeats`` is kept: interference only ever adds time.

    ``probes=None`` runs all of them; unknown names raise early so a
    CI typo fails loudly instead of silently gating nothing.
    """
    require(repeats >= 1, f"repeats must be >= 1, got {repeats}")
    names = probe_names() if probes is None else list(probes)
    unknown = sorted(set(names) - set(PROBES))
    require(not unknown, f"unknown perf probes {unknown}; known: {probe_names()}")
    results: dict[str, float] = {}
    for name in names:
        fn = PROBES[name]
        fn()  # warm-up: imports, matrix caches
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            value = fn()
            elapsed = time.perf_counter() - started
            best = min(best, float(value) if value is not None else elapsed)
        results[name] = best
    return results

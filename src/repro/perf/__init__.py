"""Benchmark-history subsystem: record probe timings, gate regressions.

``repro perf record`` appends best-of-N timings of the fast probes in
:mod:`repro.perf.probes` to a JSONL history keyed by git SHA + code
fingerprint; ``repro perf check`` re-measures and exits nonzero when
any probe breaches ``baseline * (1 + max_regression)``.  See
docs/observability.md for the workflow.
"""

from repro.perf.check import check_against_baseline, compare_to_baseline
from repro.perf.history import (
    append_record,
    baseline_record,
    git_sha,
    load_history,
    make_record,
    record_run,
)
from repro.perf.probes import PROBES, measure, probe_names

__all__ = [
    "PROBES",
    "measure",
    "probe_names",
    "record_run",
    "make_record",
    "append_record",
    "load_history",
    "baseline_record",
    "git_sha",
    "check_against_baseline",
    "compare_to_baseline",
]

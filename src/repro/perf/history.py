"""Benchmark history: append-only JSONL of probe timings per commit.

One record per ``repro perf record`` invocation::

    {"version": 1, "recorded_at": "...", "git_sha": "...",
     "fingerprint": "repro-0.x/cache-v1", "baseline": true,
     "repeats": 3, "probes": {"solve_greedy": 0.0123, ...}}

Records are keyed by the git SHA *and* the engine's
:func:`~repro.engine.hashing.code_fingerprint` — the fingerprint
catches version bumps between commits, the SHA pins the exact tree.
The **baseline** is the most recent record flagged ``baseline: true``
(falling back to the most recent record of any kind), so promoting a
new baseline is just recording with ``--baseline`` — history is never
rewritten.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

from repro.engine.hashing import code_fingerprint

__all__ = [
    "HISTORY_VERSION",
    "git_sha",
    "make_record",
    "append_record",
    "load_history",
    "baseline_record",
    "record_run",
]

HISTORY_VERSION = 1


def git_sha() -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def make_record(
    probes: "dict[str, float]", repeats: int, baseline: bool = False
) -> dict:
    """A history record for the given probe timings."""
    return {
        "version": HISTORY_VERSION,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_sha": git_sha(),
        "fingerprint": code_fingerprint(),
        "baseline": bool(baseline),
        "repeats": int(repeats),
        "probes": {name: float(value) for name, value in probes.items()},
    }


def append_record(path: "str | Path", record: dict) -> Path:
    """Append one record to the history file (created on first use)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(path: "str | Path") -> "list[dict]":
    """Every record in the history file, oldest first ([] if missing)."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def baseline_record(records: "list[dict]") -> "dict | None":
    """The comparison baseline: last ``baseline: true``, else last record."""
    for record in reversed(records):
        if record.get("baseline"):
            return record
    return records[-1] if records else None


def record_run(
    history_path: "str | Path",
    probes: "list[str] | None" = None,
    repeats: int = 3,
    baseline: bool = False,
) -> dict:
    """Measure the probes and append the result; returns the record."""
    from repro.perf.probes import measure

    record = make_record(measure(probes, repeats=repeats), repeats, baseline=baseline)
    append_record(history_path, record)
    return record

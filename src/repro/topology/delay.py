"""Delay models: how a link, a path and a device/server pair cost time.

The headline "topology aware" claim of the paper is that assignment
should use the *routed-path* delay, which accounts for propagation,
transmission and per-hop processing over the actual topology.  This
module implements that model plus the two strawmen the T3 ablation
compares against:

* :class:`TransmissionDelayModel` — the full, topology-aware model;
* :class:`HopCountDelayModel` — topology-aware but delay-blind (all
  links cost one hop);
* :class:`EuclideanDelayModel` — topology-blind (straight-line
  distance between node positions, as a proximity heuristic would use).

All models expose the same interface: :meth:`DelayModel.matrix`
producing the sources × targets delay matrix the assignment problem is
built from.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.topology.graph import Link, NetworkGraph
from repro.topology.routing import all_pairs_delay
from repro.utils.validation import check_nonnegative, check_positive, require

#: Reference packet size used when building delay matrices: a typical
#: sensor-reading/telemetry message (1 KiB payload + headers).
DEFAULT_PACKET_BITS = 8 * 1200


class DelayModel(abc.ABC):
    """Computes communication delay between node sets on a topology."""

    #: short name used in tables and ablation configs
    name: str = "abstract"

    @abc.abstractmethod
    def matrix(
        self,
        graph: NetworkGraph,
        sources: list[int],
        targets: list[int],
    ) -> np.ndarray:
        """Delay matrix of shape ``(len(sources), len(targets))`` in seconds."""


class TransmissionDelayModel(DelayModel):
    """Routed-path delay: propagation + transmission + per-hop processing.

    The weight of a link for a packet of ``packet_bits`` bits is::

        latency_s + packet_bits / bandwidth_bps + processing_s

    and a pair's delay is the weight of the shortest such path.  This
    is the model the paper's "topology aware" configuration uses.
    """

    name = "transmission"

    def __init__(self, packet_bits: float = DEFAULT_PACKET_BITS) -> None:
        self.packet_bits = check_positive(packet_bits, "packet_bits")

    def link_weight(self, link: Link) -> float:
        """Delay of one traversal of ``link`` by the reference packet."""
        return link.latency_s + self.packet_bits / link.bandwidth_bps + link.processing_s

    def matrix(
        self,
        graph: NetworkGraph,
        sources: list[int],
        targets: list[int],
    ) -> np.ndarray:
        """Return matrix."""
        return all_pairs_delay(graph, sources, targets, self.link_weight)


class HopCountDelayModel(DelayModel):
    """Ablation model: every link costs ``seconds_per_hop``.

    Topology-aware in that it routes over the graph, but blind to the
    heterogeneous link delays; quantifies how much of the win comes
    from knowing real link costs rather than just adjacency.
    """

    name = "hop_count"

    def __init__(self, seconds_per_hop: float = 1e-3) -> None:
        self.seconds_per_hop = check_positive(seconds_per_hop, "seconds_per_hop")

    def link_weight(self, link: Link) -> float:
        """Return link weight."""
        return self.seconds_per_hop

    def matrix(
        self,
        graph: NetworkGraph,
        sources: list[int],
        targets: list[int],
    ) -> np.ndarray:
        """Return matrix."""
        return all_pairs_delay(graph, sources, targets, self.link_weight)


class EuclideanDelayModel(DelayModel):
    """Ablation model: straight-line distance, ignoring the topology.

    Represents the proximity heuristic ("assign to the geographically
    nearest server") that topology-aware configuration improves on.
    ``seconds_per_unit`` converts unit-square distance into a delay so
    the matrix has comparable magnitude to the transmission model.
    """

    name = "euclidean"

    def __init__(self, seconds_per_unit: float = 10e-3, floor_s: float = 1e-4) -> None:
        self.seconds_per_unit = check_positive(seconds_per_unit, "seconds_per_unit")
        self.floor_s = check_nonnegative(floor_s, "floor_s")

    def matrix(
        self,
        graph: NetworkGraph,
        sources: list[int],
        targets: list[int],
    ) -> np.ndarray:
        """Return matrix."""
        require(len(sources) > 0, "sources must be non-empty")
        require(len(targets) > 0, "targets must be non-empty")
        src_pos = np.array([graph.node(s).position for s in sources], dtype=np.float64)
        dst_pos = np.array([graph.node(t).position for t in targets], dtype=np.float64)
        diff = src_pos[:, None, :] - dst_pos[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=2))
        return self.floor_s + self.seconds_per_unit * dist


def delay_matrix(
    graph: NetworkGraph,
    sources: list[int],
    targets: list[int],
    model: "DelayModel | None" = None,
) -> np.ndarray:
    """Convenience wrapper: delay matrix under ``model``.

    Defaults to the full :class:`TransmissionDelayModel`.
    """
    if model is None:
        model = TransmissionDelayModel()
    return model.matrix(graph, sources, targets)


def path_delay(graph: NetworkGraph, nodes: tuple[int, ...], packet_bits: float) -> float:
    """Delay of a concrete path for a packet of ``packet_bits`` bits.

    Used by the simulator to sanity-check measured latencies against
    the analytical unloaded delay.
    """
    check_positive(packet_bits, "packet_bits")
    require(len(nodes) >= 1, "path must contain at least one node")
    total = 0.0
    for u, v in zip(nodes, nodes[1:]):
        link = graph.link(u, v)
        total += link.latency_s + packet_bits / link.bandwidth_bps + link.processing_s
    if math.isnan(total):
        raise ValueError("path delay is NaN")
    return total

"""Shortest-path routing over :class:`~repro.topology.graph.NetworkGraph`.

Assignment quality rests entirely on the device-to-server delay matrix,
which in turn rests on these routines, so they are written for clarity
*and* for the instance sizes the benchmarks sweep (thousands of nodes):

* :func:`dijkstra` — single-source shortest paths with a binary heap;
* :func:`shortest_path` — one source/target pair, with the explicit
  node sequence (the simulator forwards packets hop by hop along it);
* :func:`all_pairs_delay` — sources × targets distance matrix, computed
  by running Dijkstra once per *target* (the edge cluster is small, the
  device population is large, and the graph is undirected, so rooting
  at targets is the cheap direction).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import RoutingError
from repro.topology.graph import Link, NetworkGraph
from repro.utils.validation import require

WeightFn = Callable[[Link], float]


@dataclass(frozen=True)
class Path:
    """A routed path: the node sequence and its total weight."""

    nodes: tuple[int, ...]
    cost: float

    @property
    def hops(self) -> int:
        """Number of links traversed."""
        return len(self.nodes) - 1

    def links(self, graph: NetworkGraph) -> list[Link]:
        """Resolve the path's node sequence to its links in ``graph``."""
        return graph.links_on_path(self.nodes)


def dijkstra(
    graph: NetworkGraph,
    source: int,
    weight_fn: WeightFn,
) -> tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest paths.

    Returns ``(distance, predecessor)`` dicts covering every node
    reachable from ``source``.  ``predecessor`` omits the source
    itself.  Link weights must be non-negative (delay models guarantee
    this).
    """
    graph.node(source)  # validates existence
    distance: dict[int, float] = {source: 0.0}
    predecessor: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, current = heapq.heappop(heap)
        if current in settled:
            continue
        settled.add(current)
        for link in graph.incident_links(current):
            nbr = link.other(current)
            if nbr in settled:
                continue
            weight = weight_fn(link)
            require(weight >= 0, f"negative link weight {weight} on ({link.u}, {link.v})")
            candidate = dist + weight
            if candidate < distance.get(nbr, float("inf")):
                distance[nbr] = candidate
                predecessor[nbr] = current
                heapq.heappush(heap, (candidate, nbr))
    return distance, predecessor


def shortest_path(
    graph: NetworkGraph,
    source: int,
    target: int,
    weight_fn: WeightFn,
) -> Path:
    """Shortest path from ``source`` to ``target``.

    Raises :class:`~repro.errors.RoutingError` when the nodes are
    disconnected.
    """
    distance, predecessor = dijkstra(graph, source, weight_fn)
    if target not in distance:
        raise RoutingError(source, target)
    nodes = [target]
    while nodes[-1] != source:
        nodes.append(predecessor[nodes[-1]])
    nodes.reverse()
    return Path(tuple(nodes), distance[target])


def all_pairs_delay(
    graph: NetworkGraph,
    sources: list[int],
    targets: list[int],
    weight_fn: WeightFn,
) -> np.ndarray:
    """Distance matrix of shape ``(len(sources), len(targets))``.

    Runs Dijkstra rooted at each *target* and reads off distances to
    all sources — correct for undirected graphs and far cheaper when
    there are few targets (edge servers) and many sources (devices).

    Raises :class:`~repro.errors.RoutingError` for any unreachable
    (source, target) pair: an IoT device that cannot reach some edge
    server indicates a broken topology, not a valid instance.
    """
    require(len(sources) > 0, "sources must be non-empty")
    require(len(targets) > 0, "targets must be non-empty")
    matrix = np.empty((len(sources), len(targets)), dtype=np.float64)
    for col, target in enumerate(targets):
        distance, _ = dijkstra(graph, target, weight_fn)
        for row, source in enumerate(sources):
            if source not in distance:
                raise RoutingError(source, target)
            matrix[row, col] = distance[source]
    return matrix


def routing_paths(
    graph: NetworkGraph,
    sources: list[int],
    target: int,
    weight_fn: WeightFn,
) -> dict[int, Path]:
    """Shortest path from each source to one target, sharing one Dijkstra run.

    Used by the simulator to precompute every assigned device's packet
    route to its server.
    """
    distance, predecessor = dijkstra(graph, target, weight_fn)
    paths: dict[int, Path] = {}
    for source in sources:
        if source not in distance:
            raise RoutingError(source, target)
        nodes = [source]
        # predecessor points towards `target` because Dijkstra was rooted there
        while nodes[-1] != target:
            nodes.append(predecessor[nodes[-1]])
        paths[source] = Path(tuple(nodes), distance[source])
    return paths

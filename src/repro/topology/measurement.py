"""Delay-matrix estimation from noisy probes.

The optimization layer assumes the device-to-server delay matrix is
*known*; in a real deployment it is **measured** — a handful of
RTT probes per pair, each perturbed by queueing jitter.  This module
models that measurement plane:

* :class:`ProbeDelayEstimator` — multiplicative lognormal jitter per
  probe, averaged over ``probes`` samples per pair.  Lognormal keeps
  estimates positive and matches the right-skew of real RTT samples;
  with ``probes`` samples the estimator's relative error shrinks as
  ``sigma / sqrt(probes)``.
* :func:`noisy_problem` — a copy of an instance whose delay matrix is
  replaced by its estimate (demands/capacities untouched), which is
  what a controller would actually optimize over.

The X4 extension experiment solves on the estimate and scores on the
truth, quantifying how much measurement quality the paper's algorithm
needs.
"""

from __future__ import annotations

import math

import typing

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.validation import check_nonnegative, require

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.problem import AssignmentProblem


class ProbeDelayEstimator:
    """Averages ``probes`` lognormally-jittered samples per pair."""

    def __init__(self, probes: int = 3, jitter_sigma: float = 0.3) -> None:
        require(probes >= 1, "probes must be >= 1")
        check_nonnegative(jitter_sigma, "jitter_sigma")
        self.probes = probes
        self.jitter_sigma = jitter_sigma

    def estimate(
        self,
        true_delay: np.ndarray,
        seed: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Estimated delay matrix of the same shape as ``true_delay``.

        Each probe observes ``true * exp(N(mu, sigma))`` with ``mu``
        chosen so a single probe is *unbiased in expectation*
        (``mu = -sigma^2 / 2``); the estimate is the probe mean.
        ``sigma = 0`` returns the truth exactly.
        """
        matrix = np.asarray(true_delay, dtype=np.float64)
        if self.jitter_sigma == 0.0:
            return matrix.copy()
        rng = make_rng(seed)
        mu = -0.5 * self.jitter_sigma**2
        samples = rng.lognormal(
            mean=mu,
            sigma=self.jitter_sigma,
            size=(self.probes,) + matrix.shape,
        )
        return matrix * np.mean(samples, axis=0)

    def relative_error(
        self,
        true_delay: np.ndarray,
        seed: "int | np.random.Generator | None" = None,
    ) -> float:
        """Mean |estimate - truth| / truth of one estimation pass."""
        matrix = np.asarray(true_delay, dtype=np.float64)
        estimate = self.estimate(matrix, seed=seed)
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.abs(estimate - matrix) / np.where(matrix > 0, matrix, np.nan)
        return float(np.nanmean(rel))


def noisy_problem(
    problem: "AssignmentProblem",
    probes: int = 3,
    jitter_sigma: float = 0.3,
    seed: "int | None" = None,
) -> "AssignmentProblem":
    """Copy of ``problem`` with delays replaced by their probe estimate.

    The copy deliberately drops the graph/entity backing: a controller
    working from measurements has matrices, not ground-truth topology.
    """
    # imported lazily: repro.model.problem itself imports repro.topology
    from repro.model.problem import AssignmentProblem

    estimator = ProbeDelayEstimator(probes=probes, jitter_sigma=jitter_sigma)
    return AssignmentProblem(
        delay=estimator.estimate(problem.delay, seed=seed),
        demand=problem.demand.copy(),
        capacity=problem.capacity.copy(),
        name=f"{problem.name}|probes={probes},sigma={jitter_sigma:g}",
    )

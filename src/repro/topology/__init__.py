"""Network topology substrate.

The paper's key premise is that the IoT-to-edge communication delay is
determined by the *network topology* — the routed path between a device
and a server — rather than by geometric distance.  This package builds
that substrate:

* :mod:`repro.topology.graph` — the graph model (nodes, links, roles)
* :mod:`repro.topology.generators` — standard topology families
* :mod:`repro.topology.routing` — Dijkstra shortest paths
* :mod:`repro.topology.delay` — link/path delay models and the
  device × server delay matrix
* :mod:`repro.topology.placement` — edge-server placement strategies
"""

from repro.topology.delay import (
    DelayModel,
    EuclideanDelayModel,
    HopCountDelayModel,
    TransmissionDelayModel,
    delay_matrix,
)
from repro.topology.generators import (
    TOPOLOGY_FAMILIES,
    LinkProfile,
    attach_iot_devices,
    barabasi_albert,
    edge_hierarchy,
    fat_tree,
    grid,
    make_topology,
    random_geometric,
    watts_strogatz,
    waxman,
)
from repro.topology.graph import CORE_REGION, Link, NetworkGraph, Node, NodeKind
from repro.topology.measurement import ProbeDelayEstimator, noisy_problem
from repro.topology.placement import PLACEMENT_STRATEGIES, place_edge_servers
from repro.topology.routing import Path, all_pairs_delay, dijkstra, shortest_path
from repro.topology.visualize import (
    degree_histogram,
    path_length_profile,
    summarize_topology,
    to_graphviz,
)

__all__ = [
    "DelayModel",
    "EuclideanDelayModel",
    "HopCountDelayModel",
    "TransmissionDelayModel",
    "delay_matrix",
    "TOPOLOGY_FAMILIES",
    "LinkProfile",
    "attach_iot_devices",
    "barabasi_albert",
    "edge_hierarchy",
    "fat_tree",
    "grid",
    "make_topology",
    "random_geometric",
    "watts_strogatz",
    "waxman",
    "CORE_REGION",
    "Link",
    "NetworkGraph",
    "Node",
    "NodeKind",
    "ProbeDelayEstimator",
    "noisy_problem",
    "PLACEMENT_STRATEGIES",
    "place_edge_servers",
    "Path",
    "all_pairs_delay",
    "dijkstra",
    "shortest_path",
    "degree_histogram",
    "path_length_profile",
    "summarize_topology",
    "to_graphviz",
]

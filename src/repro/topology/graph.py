"""Undirected network graph with typed nodes and attributed links.

The graph is the substrate every other subsystem reads: routing walks
its adjacency, the delay models read link attributes, the simulator
turns links into queues, and mobility rewires device attachments.

Node roles
----------
``ROUTER``
    Backbone switches/routers produced by the topology generators.
``EDGE_SERVER``
    Compute nodes of the edge cluster, attached to routers by
    :mod:`repro.topology.placement`.
``IOT_DEVICE``
    Sources of traffic, attached to routers by
    :func:`repro.topology.generators.attach_iot_devices`.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field, replace

from repro.errors import TopologyError
from repro.utils.validation import check_nonnegative, check_positive, require


class NodeKind(enum.Enum):
    """Role of a node in the edge-computing topology."""

    ROUTER = "router"
    EDGE_SERVER = "edge_server"
    IOT_DEVICE = "iot_device"


#: region label of core/root nodes that belong to no specific subtree
CORE_REGION = -1


@dataclass(frozen=True)
class Node:
    """A vertex of the network graph.

    ``position`` is a point in the unit square; geometric generators
    use it for link lengths, and the Euclidean ablation delay model
    reads it directly.

    ``region`` is the topology-region (subtree / pod) label assigned
    by the hierarchical generators: every node under the same
    top-level subtree shares a region id, core nodes carry
    :data:`CORE_REGION`, and flat families leave it ``None``.  Devices
    and servers inherit the region of the router they attach to, so
    shard boundaries (:mod:`repro.shard`) are read straight off the
    graph instead of recomputed downstream.
    """

    node_id: int
    kind: NodeKind
    position: tuple[float, float] = (0.0, 0.0)
    region: "int | None" = None


@dataclass(frozen=True)
class Link:
    """An undirected link with the attributes the delay model needs.

    Attributes
    ----------
    latency_s:
        Propagation delay in seconds (one traversal).
    bandwidth_bps:
        Capacity in bits per second; transmission delay of a packet of
        ``b`` bits is ``b / bandwidth_bps``.
    processing_s:
        Fixed per-hop processing/forwarding delay in seconds.
    """

    u: int
    v: int
    latency_s: float
    bandwidth_bps: float
    processing_s: float = 0.0

    def __post_init__(self) -> None:
        require(self.u != self.v, f"self-loop at node {self.u} is not allowed")
        check_nonnegative(self.latency_s, "latency_s")
        check_positive(self.bandwidth_bps, "bandwidth_bps")
        check_nonnegative(self.processing_s, "processing_s")

    def other(self, node_id: int) -> int:
        """Return the endpoint opposite ``node_id``."""
        if node_id == self.u:
            return self.v
        if node_id == self.v:
            return self.u
        raise TopologyError(f"node {node_id} is not an endpoint of link ({self.u}, {self.v})")


@dataclass
class NetworkGraph:
    """Mutable undirected graph of :class:`Node` and :class:`Link`.

    Self-contained on purpose: the library must not depend on networkx
    at runtime (tests use networkx only as an independent oracle).
    """

    _nodes: dict[int, Node] = field(default_factory=dict)
    _adj: dict[int, dict[int, Link]] = field(default_factory=dict)
    _next_id: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        kind: NodeKind,
        position: tuple[float, float] = (0.0, 0.0),
        node_id: "int | None" = None,
        region: "int | None" = None,
    ) -> int:
        """Add a node and return its id.

        Ids are assigned sequentially unless ``node_id`` is given.
        """
        if node_id is None:
            node_id = self._next_id
        require(node_id not in self._nodes, f"node {node_id} already exists")
        self._nodes[node_id] = Node(
            node_id, kind, (float(position[0]), float(position[1])),
            region=None if region is None else int(region),
        )
        self._adj[node_id] = {}
        self._next_id = max(self._next_id, node_id + 1)
        return node_id

    def add_link(
        self,
        u: int,
        v: int,
        latency_s: float,
        bandwidth_bps: float,
        processing_s: float = 0.0,
    ) -> Link:
        """Add an undirected link between existing nodes ``u`` and ``v``."""
        self._require_node(u)
        self._require_node(v)
        require(v not in self._adj[u], f"link ({u}, {v}) already exists")
        link = Link(u, v, latency_s, bandwidth_bps, processing_s)
        self._adj[u][v] = link
        self._adj[v][u] = link
        return link

    def remove_link(self, u: int, v: int) -> None:
        """Remove the link between ``u`` and ``v``."""
        if not self.has_link(u, v):
            raise TopologyError(f"link ({u}, {v}) does not exist")
        del self._adj[u][v]
        del self._adj[v][u]

    def move_node(self, node_id: int, position: tuple[float, float]) -> None:
        """Update a node's position (used by the mobility model)."""
        node = self.node(node_id)
        self._nodes[node_id] = replace(node, position=(float(position[0]), float(position[1])))

    def set_region(self, node_id: int, region: "int | None") -> None:
        """Stamp a node with its topology-region label."""
        node = self.node(node_id)
        self._nodes[node_id] = replace(
            node, region=None if region is None else int(region)
        )

    def region_of(self, node_id: int) -> "int | None":
        """The node's region label (``None`` on unlabeled graphs)."""
        return self.node(node_id).region

    def regions(self, kind: "NodeKind | None" = None) -> "list[int]":
        """Distinct region labels present (sorted; ``None`` excluded)."""
        return sorted(
            {n.region for n in self.nodes(kind) if n.region is not None}
        )

    def has_regions(self) -> bool:
        """Whether any node carries a region label."""
        return any(n.region is not None for n in self._nodes.values())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_node(self, node_id: int) -> bool:
        """Return has node."""
        return node_id in self._nodes

    def node(self, node_id: int) -> Node:
        """Return node."""
        self._require_node(node_id)
        return self._nodes[node_id]

    def has_link(self, u: int, v: int) -> bool:
        """Return has link."""
        return u in self._adj and v in self._adj[u]

    def link(self, u: int, v: int) -> Link:
        """Return the link between ``u`` and ``v`` or raise :class:`TopologyError`."""
        if not self.has_link(u, v):
            raise TopologyError(f"link ({u}, {v}) does not exist")
        return self._adj[u][v]

    def links_on_path(self, nodes: "tuple[int, ...] | list[int]") -> list[Link]:
        """Resolve a node sequence to the links it traverses.

        Shared by routing (:meth:`repro.topology.routing.Path.links`)
        and the contention incidence builder so both validate edges the
        same way: a missing edge raises :class:`TopologyError` naming
        the offending hop instead of a raw ``KeyError``.
        """
        require(len(nodes) >= 1, "path must contain at least one node")
        for node_id in nodes:
            self._require_node(node_id)
        return [self.link(u, v) for u, v in zip(nodes, nodes[1:])]

    def neighbors(self, node_id: int) -> list[int]:
        """Return neighbors."""
        self._require_node(node_id)
        return list(self._adj[node_id])

    def incident_links(self, node_id: int) -> list[Link]:
        """Return incident links."""
        self._require_node(node_id)
        return list(self._adj[node_id].values())

    def degree(self, node_id: int) -> int:
        """Return degree."""
        self._require_node(node_id)
        return len(self._adj[node_id])

    def nodes(self, kind: "NodeKind | None" = None) -> list[Node]:
        """All nodes, optionally filtered by kind, in id order."""
        result = sorted(self._nodes.values(), key=lambda n: n.node_id)
        if kind is not None:
            result = [n for n in result if n.kind == kind]
        return result

    def node_ids(self, kind: "NodeKind | None" = None) -> list[int]:
        """Return node ids."""
        return [n.node_id for n in self.nodes(kind)]

    def links(self) -> list[Link]:
        """Each undirected link exactly once, in (u, v) order."""
        seen: set[tuple[int, int]] = set()
        result: list[Link] = []
        for u in sorted(self._adj):
            for v, link in sorted(self._adj[u].items()):
                key = (min(u, v), max(u, v))
                if key not in seen:
                    seen.add(key)
                    result.append(link)
        return result

    @property
    def n_nodes(self) -> int:
        """Return n nodes."""
        return len(self._nodes)

    @property
    def n_links(self) -> int:
        """Return n links."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set[int]]:
        """Connected components as sets of node ids (BFS)."""
        unvisited = set(self._nodes)
        components: list[set[int]] = []
        while unvisited:
            start = min(unvisited)
            component = {start}
            queue = deque([start])
            while queue:
                current = queue.popleft()
                for nbr in self._adj[current]:
                    if nbr not in component:
                        component.add(nbr)
                        queue.append(nbr)
            components.append(component)
            unvisited -= component
        return components

    def is_connected(self) -> bool:
        """True if every node can reach every other node."""
        if not self._nodes:
            return True
        return len(self.connected_components()) == 1

    def copy(self) -> "NetworkGraph":
        """Deep-enough copy: nodes and links are frozen, containers are new."""
        clone = NetworkGraph()
        clone._nodes = dict(self._nodes)
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        clone._next_id = self._next_id
        return clone

    # ------------------------------------------------------------------
    def _require_node(self, node_id: int) -> None:
        if node_id not in self._nodes:
            raise TopologyError(f"node {node_id} does not exist")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = {kind: len(self.nodes(kind)) for kind in NodeKind}
        parts = ", ".join(f"{k.value}s={v}" for k, v in kinds.items() if v)
        return f"NetworkGraph({self.n_nodes} nodes [{parts}], {self.n_links} links)"

"""Edge-server placement: choosing which routers host the edge cluster.

Placement is orthogonal to assignment — the paper configures the
*assignment* of devices to an already-placed cluster — but the choice
of host routers shapes how hard the assignment instance is, so the
harness exposes the standard strategies:

* ``random`` — uniformly random host routers;
* ``degree`` — the highest-degree routers (hubs);
* ``spread`` — greedy k-center: iteratively pick the router farthest
  (in routed delay) from the servers placed so far, maximizing
  coverage;
* ``medoid`` — greedy k-medoid: iteratively pick the router that most
  reduces the average routed delay from all routers to their nearest
  server.

Each strategy returns the host router ids; :func:`place_edge_servers`
then attaches one ``EDGE_SERVER`` node to each host with a fast LAN
link.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.topology.delay import TransmissionDelayModel
from repro.topology.generators import SERVER_ATTACH, LinkProfile
from repro.topology.graph import NetworkGraph, NodeKind
from repro.topology.routing import dijkstra
from repro.utils.rng import make_rng
from repro.utils.validation import require


def _router_delay_matrix(graph: NetworkGraph, routers: list[int]) -> np.ndarray:
    """Router-to-router routed delay matrix under the default delay model."""
    model = TransmissionDelayModel()
    index = {router: i for i, router in enumerate(routers)}
    matrix = np.full((len(routers), len(routers)), np.inf)
    for i, source in enumerate(routers):
        distance, _ = dijkstra(graph, source, model.link_weight)
        for target, dist in distance.items():
            j = index.get(target)
            if j is not None:
                matrix[i, j] = dist
    return matrix


def _choose_random(routers: list[int], m: int, rng: np.random.Generator, graph) -> list[int]:
    picks = rng.choice(len(routers), size=m, replace=False)
    return [routers[int(i)] for i in picks]


def _choose_degree(routers: list[int], m: int, rng: np.random.Generator, graph) -> list[int]:
    ranked = sorted(routers, key=lambda r: (-graph.degree(r), r))
    return ranked[:m]


def _choose_spread(routers: list[int], m: int, rng: np.random.Generator, graph) -> list[int]:
    delays = _router_delay_matrix(graph, routers)
    chosen = [int(rng.integers(len(routers)))]
    while len(chosen) < m:
        to_nearest = np.min(delays[:, chosen], axis=1)
        to_nearest[chosen] = -np.inf  # never re-pick
        chosen.append(int(np.argmax(to_nearest)))
    return [routers[i] for i in chosen]


def _choose_medoid(routers: list[int], m: int, rng: np.random.Generator, graph) -> list[int]:
    delays = _router_delay_matrix(graph, routers)
    chosen: list[int] = []
    current = np.full(len(routers), np.inf)
    for _ in range(m):
        best_idx, best_cost = -1, np.inf
        for candidate in range(len(routers)):
            if candidate in chosen:
                continue
            cost = float(np.sum(np.minimum(current, delays[:, candidate])))
            if cost < best_cost:
                best_idx, best_cost = candidate, cost
        chosen.append(best_idx)
        current = np.minimum(current, delays[:, best_idx])
    return [routers[i] for i in chosen]


PLACEMENT_STRATEGIES = {
    "random": _choose_random,
    "degree": _choose_degree,
    "spread": _choose_spread,
    "medoid": _choose_medoid,
}


def place_edge_servers(
    graph: NetworkGraph,
    n_servers: int,
    seed: "int | np.random.Generator | None" = None,
    strategy: str = "spread",
    profile: LinkProfile = SERVER_ATTACH,
) -> list[int]:
    """Attach ``n_servers`` edge-server nodes to routers; return their ids.

    Mutates ``graph``: adds one ``EDGE_SERVER`` node per chosen host
    router plus a LAN link.  Raises :class:`TopologyError` if the graph
    has fewer routers than requested servers.
    """
    require(n_servers >= 1, f"n_servers must be >= 1, got {n_servers}")
    require(
        strategy in PLACEMENT_STRATEGIES,
        f"unknown placement strategy {strategy!r}; known: {sorted(PLACEMENT_STRATEGIES)}",
    )
    routers = graph.node_ids(NodeKind.ROUTER)
    if len(routers) < n_servers:
        raise TopologyError(
            f"cannot place {n_servers} servers on {len(routers)} routers"
        )
    rng = make_rng(seed)
    hosts = PLACEMENT_STRATEGIES[strategy](routers, n_servers, rng, graph)
    server_ids: list[int] = []
    for host in hosts:
        hx, hy = graph.node(host).position
        # servers inherit their host router's region for shard slicing
        server = graph.add_node(
            NodeKind.EDGE_SERVER, (hx, hy), region=graph.region_of(host)
        )
        graph.add_link(
            server,
            host,
            latency_s=profile.latency(0.0),
            bandwidth_bps=profile.bandwidth_bps,
            processing_s=profile.processing_s,
        )
        server_ids.append(server)
    return server_ids

"""Topology inspection: summaries and Graphviz export.

``summarize_topology`` answers "what does this graph look like"
(degree/latency distributions per tier) in plain text;
``to_graphviz`` writes a DOT file renderable with ``dot -Tsvg`` for
papers and debugging.  Neither imports anything beyond the standard
library + NumPy.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.topology.graph import NetworkGraph, NodeKind
from repro.utils.stats import summarize
from repro.utils.tables import format_table

_KIND_STYLE = {
    NodeKind.ROUTER: ("circle", "lightblue"),
    NodeKind.EDGE_SERVER: ("box", "lightgreen"),
    NodeKind.IOT_DEVICE: ("point", "gray"),
}


def summarize_topology(graph: NetworkGraph) -> str:
    """Human-readable structural summary of a topology."""
    lines = [repr(graph)]
    rows = []
    for kind in NodeKind:
        nodes = graph.nodes(kind)
        if not nodes:
            continue
        degrees = [graph.degree(n.node_id) for n in nodes]
        stats = summarize(degrees)
        rows.append(
            [kind.value, len(nodes), stats.mean, int(stats.minimum), int(stats.maximum)]
        )
    lines.append(
        format_table(
            ["node kind", "count", "mean degree", "min", "max"], rows
        )
    )
    links = graph.links()
    if links:
        latency = summarize([link.latency_s * 1e3 for link in links])
        bandwidth = summarize([link.bandwidth_bps / 1e6 for link in links])
        lines.append(
            format_table(
                ["link attribute", "mean", "min", "max"],
                [
                    ["latency (ms)", latency.mean, latency.minimum, latency.maximum],
                    ["bandwidth (Mbps)", bandwidth.mean, bandwidth.minimum,
                     bandwidth.maximum],
                ],
            )
        )
    return "\n\n".join(lines)


def to_graphviz(graph: NetworkGraph, path: "str | Path | None" = None) -> str:
    """Render the topology as Graphviz DOT; optionally write it to ``path``.

    Node positions come from the embedding (``pos`` attributes with
    ``!`` pins, honoured by ``neato``/``fdp``); latency labels are in
    milliseconds.
    """
    lines = [
        "graph topology {",
        "  layout=neato;",
        "  overlap=false;",
        '  node [fontsize=8, width=0.2, height=0.2];',
        "  edge [fontsize=6, color=gray60];",
    ]
    for node in graph.nodes():
        shape, color = _KIND_STYLE[node.kind]
        x, y = node.position
        lines.append(
            f'  n{node.node_id} [shape={shape}, style=filled, fillcolor={color}, '
            f'pos="{x * 10:.3f},{y * 10:.3f}!", label="{node.node_id}"];'
        )
    for link in graph.links():
        lines.append(
            f"  n{link.u} -- n{link.v} "
            f'[label="{link.latency_s * 1e3:.2f}ms"];'
        )
    lines.append("}")
    dot = "\n".join(lines)
    if path is not None:
        Path(path).write_text(dot, encoding="utf-8")
    return dot


def degree_histogram(graph: NetworkGraph, kind: "NodeKind | None" = None) -> dict[int, int]:
    """Degree -> count map (for the heavy-tail checks in tests)."""
    counts: dict[int, int] = {}
    for node in graph.nodes(kind):
        degree = graph.degree(node.node_id)
        counts[degree] = counts.get(degree, 0) + 1
    return dict(sorted(counts.items()))


def path_length_profile(graph: NetworkGraph) -> dict[str, float]:
    """Hop-count statistics between devices and servers.

    Quantifies how 'deep' devices sit relative to the cluster — the
    structural property that separates topology families in F7.
    """
    from repro.topology.routing import dijkstra

    devices = graph.node_ids(NodeKind.IOT_DEVICE)
    servers = graph.node_ids(NodeKind.EDGE_SERVER)
    if not devices or not servers:
        return {}
    hops: list[float] = []
    for server in servers:
        distance, _ = dijkstra(graph, server, lambda link: 1.0)
        hops.extend(distance[d] for d in devices if d in distance)
    stats = summarize(hops)
    return {
        "mean_hops": stats.mean,
        "min_hops": stats.minimum,
        "max_hops": stats.maximum,
        "p95_hops": stats.p95,
    }

"""Topology generators: the families edge-computing evaluations sweep.

Each generator builds a *router backbone* — only ``ROUTER`` nodes —
positioned in the unit square, and guarantees the result is connected.
Edge servers and IoT devices are attached afterwards by
:func:`repro.topology.placement.place_edge_servers` and
:func:`attach_iot_devices`, so the same backbone can host many
experimental configurations.

Families
--------
``random_geometric``
    Nodes linked when within a radius — models dense metro deployments.
``waxman``
    Classic random internet-like topology (Waxman, 1988).
``barabasi_albert``
    Preferential attachment — heavy-tailed degree, hub-and-spoke ISPs.
``watts_strogatz``
    Small-world ring with rewiring.
``grid``
    Regular mesh — structured campus/industrial networks.
``edge_hierarchy``
    Fog-style tree: core, aggregation, access tiers.
``fat_tree``
    k-ary fat tree — data-center style edge cluster interconnect.

Link latencies are distance-based via :class:`LinkProfile`, so the
graph embedding matters: two nodes that look close may still be many
expensive hops apart, which is exactly the situation where topology
awareness beats Euclidean proximity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.topology.graph import CORE_REGION, NetworkGraph, NodeKind
from repro.utils.rng import make_rng
from repro.utils.validation import check_nonnegative, check_positive, check_probability, require


@dataclass(frozen=True)
class LinkProfile:
    """Parameters from which concrete link attributes are derived.

    The latency of a link of Euclidean length ``d`` is
    ``base_latency_s + latency_per_unit_s * d``; bandwidth and per-hop
    processing are constant per profile.
    """

    base_latency_s: float
    latency_per_unit_s: float
    bandwidth_bps: float
    processing_s: float

    def __post_init__(self) -> None:
        check_nonnegative(self.base_latency_s, "base_latency_s")
        check_nonnegative(self.latency_per_unit_s, "latency_per_unit_s")
        check_positive(self.bandwidth_bps, "bandwidth_bps")
        check_nonnegative(self.processing_s, "processing_s")

    def latency(self, distance: float) -> float:
        """Propagation latency of a link spanning ``distance`` units."""
        return self.base_latency_s + self.latency_per_unit_s * distance


#: Wired backbone links between routers (fibre-like).
BACKBONE = LinkProfile(
    base_latency_s=0.2e-3,
    latency_per_unit_s=5e-3,
    bandwidth_bps=1e9,
    processing_s=50e-6,
)

#: Wireless access links from IoT devices to their gateway router.
ACCESS = LinkProfile(
    base_latency_s=2e-3,
    latency_per_unit_s=4e-3,
    bandwidth_bps=20e6,
    processing_s=100e-6,
)

#: Short LAN attachment of an edge server to its host router.
SERVER_ATTACH = LinkProfile(
    base_latency_s=0.05e-3,
    latency_per_unit_s=0.0,
    bandwidth_bps=10e9,
    processing_s=10e-6,
)


def _distance(graph: NetworkGraph, u: int, v: int) -> float:
    ux, uy = graph.node(u).position
    vx, vy = graph.node(v).position
    return math.hypot(ux - vx, uy - vy)


def _connect(graph: NetworkGraph, u: int, v: int, profile: LinkProfile) -> None:
    if not graph.has_link(u, v):
        graph.add_link(
            u,
            v,
            latency_s=profile.latency(_distance(graph, u, v)),
            bandwidth_bps=profile.bandwidth_bps,
            processing_s=profile.processing_s,
        )


def ensure_connected(graph: NetworkGraph, profile: LinkProfile = BACKBONE) -> None:
    """Patch a disconnected graph by linking nearest cross-component pairs.

    Random families (geometric, Waxman) can come out fragmented at
    sparse parameter settings; routing requires a single component, so
    every generator finishes with this repair pass.
    """
    components = graph.connected_components()
    while len(components) > 1:
        main, rest = components[0], components[1:]
        best: "tuple[float, int, int] | None" = None
        for component in rest:
            for u in component:
                for v in main:
                    dist = _distance(graph, u, v)
                    if best is None or dist < best[0]:
                        best = (dist, u, v)
        assert best is not None
        _connect(graph, best[1], best[2], profile)
        components = graph.connected_components()


# ----------------------------------------------------------------------
# random families
# ----------------------------------------------------------------------
def random_geometric(
    n_routers: int,
    radius: "float | None" = None,
    seed: "int | np.random.Generator | None" = None,
    profile: LinkProfile = BACKBONE,
) -> NetworkGraph:
    """Random geometric graph: link any two routers within ``radius``.

    The default radius scales as ``sqrt(log n / n)``, the connectivity
    threshold regime, so the repair pass rarely has to add links.
    """
    require(n_routers >= 1, f"n_routers must be >= 1, got {n_routers}")
    rng = make_rng(seed)
    if radius is None:
        radius = 1.6 * math.sqrt(math.log(max(n_routers, 2)) / max(n_routers, 2))
    check_positive(radius, "radius")
    graph = NetworkGraph()
    positions = rng.random((n_routers, 2))
    ids = [graph.add_node(NodeKind.ROUTER, tuple(pos)) for pos in positions]
    for i in range(n_routers):
        for j in range(i + 1, n_routers):
            if _distance(graph, ids[i], ids[j]) <= radius:
                _connect(graph, ids[i], ids[j], profile)
    ensure_connected(graph, profile)
    return graph


def waxman(
    n_routers: int,
    alpha: float = 0.4,
    beta: float = 0.25,
    seed: "int | np.random.Generator | None" = None,
    profile: LinkProfile = BACKBONE,
) -> NetworkGraph:
    """Waxman random topology: P(u~v) = alpha * exp(-d(u,v) / (beta * L)).

    ``L`` is the diameter of the unit square.  Larger ``alpha`` raises
    overall density; larger ``beta`` favours long links.
    """
    require(n_routers >= 1, f"n_routers must be >= 1, got {n_routers}")
    check_probability(alpha, "alpha")
    check_positive(beta, "beta")
    rng = make_rng(seed)
    graph = NetworkGraph()
    positions = rng.random((n_routers, 2))
    ids = [graph.add_node(NodeKind.ROUTER, tuple(pos)) for pos in positions]
    max_dist = math.sqrt(2.0)
    for i in range(n_routers):
        for j in range(i + 1, n_routers):
            dist = _distance(graph, ids[i], ids[j])
            if rng.random() < alpha * math.exp(-dist / (beta * max_dist)):
                _connect(graph, ids[i], ids[j], profile)
    ensure_connected(graph, profile)
    return graph


def barabasi_albert(
    n_routers: int,
    attach: int = 2,
    seed: "int | np.random.Generator | None" = None,
    profile: LinkProfile = BACKBONE,
) -> NetworkGraph:
    """Barabási–Albert preferential attachment (hub-dominated ISP-like).

    Starts from a clique of ``attach + 1`` routers; each subsequent
    router links to ``attach`` distinct existing routers chosen with
    probability proportional to their degree.
    """
    require(n_routers >= 1, f"n_routers must be >= 1, got {n_routers}")
    require(attach >= 1, f"attach must be >= 1, got {attach}")
    rng = make_rng(seed)
    graph = NetworkGraph()
    positions = rng.random((n_routers, 2))
    ids = [graph.add_node(NodeKind.ROUTER, tuple(pos)) for pos in positions]
    core = min(attach + 1, n_routers)
    for i in range(core):
        for j in range(i + 1, core):
            _connect(graph, ids[i], ids[j], profile)
    # repeated-endpoint list: sampling from it is degree-proportional
    endpoints: list[int] = []
    for link in graph.links():
        endpoints.extend((link.u, link.v))
    for i in range(core, n_routers):
        targets: set[int] = set()
        while len(targets) < min(attach, i):
            if endpoints:
                candidate = endpoints[rng.integers(len(endpoints))]
            else:  # isolated start (attach smaller than clique needs)
                candidate = ids[rng.integers(i)]
            if candidate != ids[i]:
                targets.add(candidate)
        for target in targets:
            _connect(graph, ids[i], target, profile)
            endpoints.extend((ids[i], target))
    ensure_connected(graph, profile)
    return graph


def watts_strogatz(
    n_routers: int,
    ring_neighbors: int = 4,
    rewire_prob: float = 0.1,
    seed: "int | np.random.Generator | None" = None,
    profile: LinkProfile = BACKBONE,
) -> NetworkGraph:
    """Watts–Strogatz small world: ring lattice with random rewiring.

    Routers sit on a circle of radius 0.4 centred in the unit square;
    each connects to its ``ring_neighbors`` nearest ring neighbours
    (must be even), then each link's far endpoint is rewired with
    probability ``rewire_prob``.
    """
    require(n_routers >= 1, f"n_routers must be >= 1, got {n_routers}")
    require(ring_neighbors >= 2, f"ring_neighbors must be >= 2, got {ring_neighbors}")
    require(ring_neighbors % 2 == 0, "ring_neighbors must be even")
    check_probability(rewire_prob, "rewire_prob")
    rng = make_rng(seed)
    graph = NetworkGraph()
    ids = []
    for i in range(n_routers):
        angle = 2.0 * math.pi * i / n_routers
        pos = (0.5 + 0.4 * math.cos(angle), 0.5 + 0.4 * math.sin(angle))
        ids.append(graph.add_node(NodeKind.ROUTER, pos))
    half = min(ring_neighbors // 2, max((n_routers - 1) // 2, 0))
    for i in range(n_routers):
        for offset in range(1, half + 1):
            _connect(graph, ids[i], ids[(i + offset) % n_routers], profile)
    # rewiring pass
    for i in range(n_routers):
        for offset in range(1, half + 1):
            j = (i + offset) % n_routers
            if rng.random() >= rewire_prob:
                continue
            candidates = [
                k for k in range(n_routers) if k != i and not graph.has_link(ids[i], ids[k])
            ]
            if not candidates:
                continue
            new_target = candidates[rng.integers(len(candidates))]
            if graph.has_link(ids[i], ids[j]) and graph.degree(ids[j]) > 1:
                graph.remove_link(ids[i], ids[j])
                _connect(graph, ids[i], ids[new_target], profile)
    ensure_connected(graph, profile)
    return graph


# ----------------------------------------------------------------------
# structured families
# ----------------------------------------------------------------------
def grid(
    rows: int,
    cols: "int | None" = None,
    profile: LinkProfile = BACKBONE,
) -> NetworkGraph:
    """Regular ``rows × cols`` mesh with 4-neighbour links."""
    require(rows >= 1, f"rows must be >= 1, got {rows}")
    if cols is None:
        cols = rows
    require(cols >= 1, f"cols must be >= 1, got {cols}")
    graph = NetworkGraph()
    ids: dict[tuple[int, int], int] = {}
    for r in range(rows):
        for c in range(cols):
            pos = (
                (c + 0.5) / cols,
                (r + 0.5) / rows,
            )
            ids[(r, c)] = graph.add_node(NodeKind.ROUTER, pos)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                _connect(graph, ids[(r, c)], ids[(r, c + 1)], profile)
            if r + 1 < rows:
                _connect(graph, ids[(r, c)], ids[(r + 1, c)], profile)
    return graph


def edge_hierarchy(
    depth: int = 3,
    fanout: int = 3,
    profile: LinkProfile = BACKBONE,
) -> NetworkGraph:
    """Fog-style tree: a core router at the root, ``fanout`` children per tier.

    Leaves model access routers at the network edge; the classic
    hierarchical deployment where a device near one leaf is many hops
    from a server under a different aggregation subtree even though the
    two can be geometrically adjacent.

    Every router under the same top-level subtree (child of the root)
    is stamped with that subtree's index as its ``region``; the root
    itself carries :data:`~repro.topology.graph.CORE_REGION`.  Region
    labels are what :mod:`repro.shard` partitions the cluster along.
    """
    require(depth >= 1, f"depth must be >= 1, got {depth}")
    require(fanout >= 1, f"fanout must be >= 1, got {fanout}")
    graph = NetworkGraph()
    root = graph.add_node(NodeKind.ROUTER, (0.5, 0.95), region=CORE_REGION)
    frontier = [root]
    for level in range(1, depth):
        next_frontier: list[int] = []
        width = fanout**level
        y = 0.95 - 0.9 * level / max(depth - 1, 1)
        slot = 0
        for parent in frontier:
            parent_region = graph.region_of(parent)
            for _ in range(fanout):
                x = (slot + 0.5) / width
                # level-1 children found the regions; deeper tiers inherit
                region = slot if level == 1 else parent_region
                child = graph.add_node(NodeKind.ROUTER, (x, y), region=region)
                _connect(graph, parent, child, profile)
                next_frontier.append(child)
                slot += 1
        frontier = next_frontier
    return graph


def fat_tree(k: int = 4, profile: LinkProfile = BACKBONE) -> NetworkGraph:
    """k-ary fat tree (Al-Fares et al.): (k/2)^2 core, k pods of k switches.

    ``k`` must be even and >= 2.  Edge-tier switches are the leaves
    devices and servers attach to.  Pod switches carry their pod index
    as ``region``; core switches carry
    :data:`~repro.topology.graph.CORE_REGION`.
    """
    require(k >= 2 and k % 2 == 0, f"k must be an even integer >= 2, got {k}")
    graph = NetworkGraph()
    half = k // 2
    core_ids = []
    for i in range(half * half):
        x = (i + 0.5) / (half * half)
        core_ids.append(graph.add_node(NodeKind.ROUTER, (x, 0.95), region=CORE_REGION))
    for pod in range(k):
        agg_ids = []
        edge_ids = []
        for s in range(half):
            x = (pod + (s + 0.5) / half) / k
            agg_ids.append(graph.add_node(NodeKind.ROUTER, (x, 0.6), region=pod))
            edge_ids.append(graph.add_node(NodeKind.ROUTER, (x, 0.25), region=pod))
        for agg in agg_ids:
            for edge in edge_ids:
                _connect(graph, agg, edge, profile)
        for s, agg in enumerate(agg_ids):
            for c in range(half):
                _connect(graph, agg, core_ids[s * half + c], profile)
    return graph


# ----------------------------------------------------------------------
# attachment of IoT devices
# ----------------------------------------------------------------------
def attach_iot_devices(
    graph: NetworkGraph,
    n_devices: int,
    seed: "int | np.random.Generator | None" = None,
    strategy: str = "nearest",
    profile: LinkProfile = ACCESS,
) -> list[int]:
    """Attach ``n_devices`` IoT nodes to routers; return their node ids.

    ``strategy``:

    * ``"nearest"`` — device gets a uniform position and an access link
      to the geometrically nearest router (realistic gateway choice);
    * ``"random"`` — device links to a uniformly random router,
      producing attachment patterns uncorrelated with geometry.
    """
    require(n_devices >= 1, f"n_devices must be >= 1, got {n_devices}")
    require(strategy in ("nearest", "random"), f"unknown attachment strategy {strategy!r}")
    routers = graph.node_ids(NodeKind.ROUTER)
    if not routers:
        raise TopologyError("graph has no routers to attach devices to")
    rng = make_rng(seed)
    device_ids: list[int] = []
    router_pos = np.array([graph.node(r).position for r in routers])
    for _ in range(n_devices):
        position = tuple(rng.random(2))
        if strategy == "nearest":
            deltas = router_pos - np.asarray(position)
            gateway = routers[int(np.argmin(np.einsum("ij,ij->i", deltas, deltas)))]
        else:
            gateway = routers[int(rng.integers(len(routers)))]
        # a device's region is its gateway's: shard routing keys off it
        device = graph.add_node(
            NodeKind.IOT_DEVICE, position, region=graph.region_of(gateway)
        )
        _connect(graph, device, gateway, profile)
        device_ids.append(device)
    return device_ids


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def _grid_from_n(n_routers: int, seed=None) -> NetworkGraph:
    side = max(1, round(math.sqrt(n_routers)))
    return grid(side, max(1, round(n_routers / side)))


def _hierarchy_from_n(n_routers: int, seed=None) -> NetworkGraph:
    fanout = 3
    depth = 1
    while (fanout**depth - 1) // (fanout - 1) < n_routers:
        depth += 1
    return edge_hierarchy(depth=max(depth, 2), fanout=fanout)


def _fat_tree_from_n(n_routers: int, seed=None) -> NetworkGraph:
    k = 2
    # a k-ary fat tree has 5k^2/4 switches
    while 5 * (k + 2) ** 2 // 4 <= n_routers:
        k += 2
    return fat_tree(k)


#: name -> builder(n_routers, seed) producing a connected router backbone
TOPOLOGY_FAMILIES = {
    "random_geometric": lambda n, seed=None: random_geometric(n, seed=seed),
    "waxman": lambda n, seed=None: waxman(n, seed=seed),
    "barabasi_albert": lambda n, seed=None: barabasi_albert(n, seed=seed),
    "watts_strogatz": lambda n, seed=None: watts_strogatz(n, seed=seed),
    "grid": _grid_from_n,
    "edge_hierarchy": _hierarchy_from_n,
    "fat_tree": _fat_tree_from_n,
}


def make_topology(
    family: str,
    n_routers: int,
    seed: "int | np.random.Generator | None" = None,
) -> NetworkGraph:
    """Build a router backbone of roughly ``n_routers`` from a named family.

    Structured families (grid, hierarchy, fat tree) round to the
    nearest realizable size.
    """
    if family not in TOPOLOGY_FAMILIES:
        raise TopologyError(
            f"unknown topology family {family!r}; known: {sorted(TOPOLOGY_FAMILIES)}"
        )
    graph = TOPOLOGY_FAMILIES[family](n_routers, seed=seed)
    if not graph.is_connected():
        raise TopologyError(f"{family} generator produced a disconnected graph")
    return graph


def tier_crossing_links(graph: NetworkGraph) -> list:
    """Links whose endpoints carry different region labels.

    On hierarchical families these are exactly the thin uplinks —
    root/core to subtree, pod to core — that real deployments
    oversubscribe; flat families without region labels have none.
    Links with an unlabeled endpoint are excluded: an attachment link
    into an unlabeled node is not a tier crossing.
    """
    crossing = []
    for link in graph.links():
        ru = graph.region_of(link.u)
        rv = graph.region_of(link.v)
        if ru is not None and rv is not None and ru != rv:
            crossing.append(link)
    return crossing


def apply_oversubscription(graph: NetworkGraph, factor: float) -> int:
    """Thin every tier-crossing link's bandwidth by ``factor``, in place.

    Models the classic oversubscribed uplink: intra-rack (same-region)
    edges keep their fat profile bandwidth while inter-region uplinks
    are divided by ``factor``.  ``factor == 1.0`` is an exact no-op —
    the graph is untouched, preserving byte-identity of the default
    pipeline.  Returns the number of links thinned.
    """
    check_positive(factor, "oversubscription factor")
    require(factor >= 1.0, f"oversubscription factor must be >= 1, got {factor}")
    if factor == 1.0:
        return 0
    thinned = 0
    for link in tier_crossing_links(graph):
        graph.remove_link(link.u, link.v)
        graph.add_link(
            link.u,
            link.v,
            latency_s=link.latency_s,
            bandwidth_bps=link.bandwidth_bps / factor,
            processing_s=link.processing_s,
        )
        thinned += 1
    return thinned

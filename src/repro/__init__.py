"""repro — Topology Aware Cluster Configuration for edge computing.

Reproduction of Rajashekar et al., "Topology Aware Cluster
Configuration for Minimizing Communication Delay in Edge Computing"
(ICDCS 2022).  The library models IoT-to-edge assignment as a
generalized assignment problem over a real network topology, solves it
with RL-based heuristics (the paper's contribution) and a full field
of classical baselines, and validates solutions with a discrete-event
simulator.

Quickstart::

    import repro

    problem = repro.topology_instance(
        family="random_geometric", n_routers=50,
        n_devices=60, n_servers=6, tightness=0.8, seed=42,
    )
    result = repro.get_solver("tacc", seed=1).solve(problem)
    print(result.objective_value, result.feasible)
    report = repro.simulate_assignment(result.assignment, duration_s=30.0)
    print(report.mean_network_latency_ms, report.deadline_miss_rate)

Subpackages: :mod:`repro.topology`, :mod:`repro.model`,
:mod:`repro.solvers`, :mod:`repro.rl`, :mod:`repro.sim`,
:mod:`repro.workload`, :mod:`repro.cluster`, :mod:`repro.experiments`,
:mod:`repro.obs`.
"""

from repro import errors, obs
from repro.model.instances import gap_instance, random_instance, topology_instance
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.rl.agent import TaccSolver
from repro.sim.runner import simulate_assignment
from repro.solvers.registry import available_solvers, get_solver, register_solver
from repro.topology.generators import make_topology

__version__ = "1.0.0"

__all__ = [
    "errors",
    "obs",
    "gap_instance",
    "random_instance",
    "topology_instance",
    "AssignmentProblem",
    "Assignment",
    "TaccSolver",
    "simulate_assignment",
    "available_solvers",
    "get_solver",
    "register_solver",
    "make_topology",
    "__version__",
]

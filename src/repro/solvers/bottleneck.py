"""Bottleneck assignment: minimize the *worst* device's delay.

Real-time deployments often care about the slowest device (the paper's
"stringent deadlines" motivation), not the sum.  The classical
threshold method applies:

1. binary-search the smallest delay threshold ``t`` over the sorted
   distinct matrix entries such that the instance restricted to pairs
   with ``delay <= t`` still admits a (witnessed) feasible assignment;
2. within that restriction, descend on total delay with the standard
   feasibility-preserving local search, so ties under the bottleneck
   are broken toward low total delay.

Restriction is encoded without new machinery: forbidden pairs get a
demand larger than any capacity, so every existing feasibility check
excludes them automatically.

The feasibility oracle is the first-fit-decreasing witness (GAP
feasibility is NP-hard, so an exact oracle would cost exponential time
per probe); the found threshold is therefore an upper bound on the
true optimum bottleneck, tight in practice and never infeasible.
"""

from __future__ import annotations

import numpy as np

from repro.model.instances import _first_fit_decreasing
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start
from repro.utils.validation import require


def _restricted(problem: AssignmentProblem, threshold: float) -> AssignmentProblem:
    """Copy of ``problem`` where pairs above ``threshold`` cannot fit."""
    blocked = problem.delay > threshold + 1e-15
    demand = problem.demand.copy()
    forbidden = float(np.max(problem.capacity)) * 2.0 + 1.0
    demand[blocked] = forbidden
    return AssignmentProblem(
        delay=problem.delay,
        demand=demand,
        capacity=problem.capacity,
        name=f"{problem.name}|<= {threshold:.6g}s",
    )


class BottleneckSolver(Solver):
    """Threshold method for the min-max-delay assignment."""

    name = "bottleneck"

    def __init__(self, polish_passes: int = 30, **kwargs) -> None:
        super().__init__(**kwargs)
        require(polish_passes >= 0, "polish_passes must be >= 0")
        self.polish_passes = polish_passes

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        thresholds = np.unique(problem.delay)
        lo, hi = 0, thresholds.size - 1
        witness = _first_fit_decreasing(_restricted(problem, float(thresholds[hi])))
        if witness is None:
            # even unrestricted the witness fails: fall back outright
            fallback = feasible_start(problem, rng)
            return fallback, {"iterations": 1, "fallback": True}
        probes = 1
        best_witness = witness
        best_index = hi
        while lo < hi:
            mid = (lo + hi) // 2
            probes += 1
            candidate = _first_fit_decreasing(
                _restricted(problem, float(thresholds[mid]))
            )
            if candidate is not None:
                best_witness = candidate
                best_index = mid
                hi = mid
            else:
                lo = mid + 1
        threshold = float(thresholds[best_index])

        # secondary descent on total delay inside the restriction
        from repro.rl.agent import polish_assignment

        restricted = _restricted(problem, threshold)
        vector = polish_assignment(
            restricted, best_witness.vector, max_passes=self.polish_passes
        )
        return Assignment(problem, vector), {
            "iterations": probes,
            "bottleneck_s": threshold,
        }

"""Solver registry: every algorithm in the comparison, by name.

The benchmark harness sweeps algorithms by registry name, so adding a
solver here makes it appear in every table.  RL solvers are imported
lazily to keep ``repro.solvers`` and ``repro.rl`` free of import
cycles.
"""

from __future__ import annotations

from typing import Callable

from repro.contention.solvers import (
    CongestionBottleneckSolver,
    CongestionGreedySolver,
    CongestionLocalSearchSolver,
)
from repro.errors import SolverError
from repro.solvers.annealing import SimulatedAnnealingSolver
from repro.solvers.auction import AuctionSolver
from repro.solvers.base import Solver
from repro.solvers.bottleneck import BottleneckSolver
from repro.solvers.exact import BranchAndBoundSolver, BruteForceSolver
from repro.solvers.genetic import GeneticSolver
from repro.solvers.greedy import (
    BestFitSolver,
    GreedyFeasibleSolver,
    NearestServerSolver,
    RandomFeasibleSolver,
    RegretGreedySolver,
    RoundRobinSolver,
    WorstFitSolver,
)
from repro.solvers.lagrangian import LagrangianSolver
from repro.solvers.lns import LNSSolver
from repro.solvers.local_search import LocalSearchSolver, TabuSearchSolver
from repro.solvers.lp import LPRoundingSolver
from repro.solvers.portfolio import PortfolioSolver
from repro.solvers.resilient import ResilientSolver


def _tacc_factory(**kwargs) -> Solver:
    from repro.rl.agent import TaccSolver

    return TaccSolver(**kwargs)


def _qlearning_factory(**kwargs) -> Solver:
    from repro.rl.qlearning import QLearningSolver

    return QLearningSolver(**kwargs)


def _bandit_factory(**kwargs) -> Solver:
    from repro.rl.bandit import BanditSolver

    return BanditSolver(**kwargs)


def _reinforce_factory(**kwargs) -> Solver:
    from repro.rl.reinforce import ReinforceSolver

    return ReinforceSolver(**kwargs)


def _sarsa_factory(**kwargs) -> Solver:
    from repro.rl.sarsa import SarsaSolver

    return SarsaSolver(**kwargs)


def _double_q_factory(**kwargs) -> Solver:
    from repro.rl.double_q import DoubleQLearningSolver

    return DoubleQLearningSolver(**kwargs)


_REGISTRY: dict[str, Callable[..., Solver]] = {
    NearestServerSolver.name: NearestServerSolver,
    GreedyFeasibleSolver.name: GreedyFeasibleSolver,
    BestFitSolver.name: BestFitSolver,
    WorstFitSolver.name: WorstFitSolver,
    RegretGreedySolver.name: RegretGreedySolver,
    RoundRobinSolver.name: RoundRobinSolver,
    RandomFeasibleSolver.name: RandomFeasibleSolver,
    LocalSearchSolver.name: LocalSearchSolver,
    TabuSearchSolver.name: TabuSearchSolver,
    SimulatedAnnealingSolver.name: SimulatedAnnealingSolver,
    GeneticSolver.name: GeneticSolver,
    LPRoundingSolver.name: LPRoundingSolver,
    LNSSolver.name: LNSSolver,
    LagrangianSolver.name: LagrangianSolver,
    AuctionSolver.name: AuctionSolver,
    BottleneckSolver.name: BottleneckSolver,
    CongestionGreedySolver.name: CongestionGreedySolver,
    CongestionLocalSearchSolver.name: CongestionLocalSearchSolver,
    CongestionBottleneckSolver.name: CongestionBottleneckSolver,
    PortfolioSolver.name: PortfolioSolver,
    ResilientSolver.name: ResilientSolver,
    BruteForceSolver.name: BruteForceSolver,
    BranchAndBoundSolver.name: BranchAndBoundSolver,
    "tacc": _tacc_factory,
    "qlearning": _qlearning_factory,
    "bandit": _bandit_factory,
    "reinforce": _reinforce_factory,
    "sarsa": _sarsa_factory,
    "double_q": _double_q_factory,
}

#: heuristic comparison field used by most figures (no exact solvers,
#: which would dominate runtime; no capacity-blind strawman, which is
#: shown separately in the load-balance figure)
DEFAULT_BASELINES = [
    "random",
    "round_robin",
    "greedy",
    "regret",
    "local_search",
    "tabu",
    "annealing",
    "genetic",
    "lp_rounding",
    "auction",
]


def available_solvers() -> list[str]:
    """All registered solver names, sorted."""
    return sorted(_REGISTRY)


def get_solver(name: str, **kwargs) -> Solver:
    """Instantiate a solver by registry name, passing ``kwargs`` through."""
    if name not in _REGISTRY:
        raise SolverError(f"unknown solver {name!r}; available: {available_solvers()}")
    return _REGISTRY[name](**kwargs)


def register_solver(name: str, factory: Callable[..., Solver]) -> None:
    """Add a custom solver to the registry (e.g. from user code)."""
    if name in _REGISTRY:
        raise SolverError(f"solver {name!r} is already registered")
    _REGISTRY[name] = factory

"""Constructive greedy heuristics — the classical baselines.

Ordered roughly by sophistication:

* :class:`RandomFeasibleSolver`, :class:`RoundRobinSolver` — strawmen
  that ignore delay;
* :class:`NearestServerSolver` — chases delay and *ignores capacity*;
  the proximity heuristic the paper's "no edge device overloaded"
  guarantee is contrasted with.  On tight instances it overloads.
* :class:`GreedyFeasibleSolver` — delay-greedy restricted to servers
  with residual capacity (devices in decreasing-demand order);
* :class:`BestFitSolver` / :class:`WorstFitSolver` — capacity-packing
  orientations of the same loop;
* :class:`RegretGreedySolver` — Martello–Toth style: always commit the
  device that would lose the most if its best server filled up.

All of these also serve as starting points for the metaheuristics and
as the incumbent initializer for branch-and-bound.
"""

from __future__ import annotations

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.solvers.base import Solver


def greedy_feasible_assignment(
    problem: AssignmentProblem,
    order: "np.ndarray | None" = None,
    prefer: str = "delay",
) -> Assignment:
    """Shared constructive loop used by several solvers and initializers.

    Walks devices in ``order`` (default: decreasing mean demand) and
    assigns each to a server with enough residual capacity, preferring
    by ``prefer``:

    * ``"delay"`` — minimum delay among fitting servers;
    * ``"best_fit"`` — smallest residual-after-fit (tight packing);
    * ``"worst_fit"`` — largest residual (load spreading), ties by delay.

    Devices that fit nowhere are left unassigned (the caller decides
    whether that is an error); no server is ever overloaded.
    """
    if order is None:
        order = np.argsort(-np.mean(problem.demand, axis=1))
    residual = problem.capacity.copy()
    assignment = Assignment(problem)
    for device in (int(d) for d in order):
        fits = np.flatnonzero(problem.demand[device] <= residual + 1e-12)
        if fits.size == 0:
            continue
        if prefer == "delay":
            chosen = fits[np.argmin(problem.delay[device, fits])]
        elif prefer == "best_fit":
            chosen = fits[np.argmin(residual[fits] - problem.demand[device, fits])]
        elif prefer == "worst_fit":
            spare = residual[fits] - problem.demand[device, fits]
            best_spare = np.max(spare)
            tied = fits[spare >= best_spare - 1e-12]
            chosen = tied[np.argmin(problem.delay[device, tied])]
        else:  # pragma: no cover - guarded by callers
            raise ValueError(f"unknown preference {prefer!r}")
        chosen = int(chosen)
        assignment.assign(device, chosen)
        residual[chosen] -= problem.demand[device, chosen]
    return assignment


def feasible_start(
    problem: AssignmentProblem,
    rng: "np.random.Generator | None" = None,
) -> Assignment:
    """Best-effort *complete* feasible assignment for initializers.

    Delay-greedy packs aggressively and can strand devices on hard
    correlated instances (GAP class d), so this walks a fallback chain:
    delay-greedy → worst-fit (the generators' feasibility witness) →
    best-fit → random restarts.  Returns the first complete assignment;
    if even the witness ordering fails (a genuinely infeasible
    instance) the delay-greedy partial is returned and the caller's
    feasibility check reports it.
    """
    first = greedy_feasible_assignment(problem, prefer="delay")
    if first.is_complete:
        return first
    for prefer in ("worst_fit", "best_fit"):
        candidate = greedy_feasible_assignment(problem, prefer=prefer)
        if candidate.is_complete:
            return candidate
    if rng is not None:
        for _ in range(20):
            candidate = _one_random_attempt(problem, rng)
            if candidate is not None:
                return candidate
    return first


def _one_random_attempt(
    problem: AssignmentProblem, rng: np.random.Generator
) -> "Assignment | None":
    """One randomized constructive pass; None if a device fits nowhere."""
    assignment = Assignment(problem)
    residual = problem.capacity.copy()
    for device in rng.permutation(problem.n_devices):
        device = int(device)
        fits = np.flatnonzero(problem.demand[device] <= residual + 1e-12)
        if fits.size == 0:
            return None
        chosen = int(fits[rng.integers(fits.size)])
        assignment.assign(device, chosen)
        residual[chosen] -= problem.demand[device, chosen]
    return assignment


def random_feasible_assignment(
    problem: AssignmentProblem,
    rng: np.random.Generator,
    attempts: int = 20,
) -> Assignment:
    """A random complete assignment, feasible if any attempt succeeds.

    Shuffles device order and picks uniformly among fitting servers;
    falls back to the constructive chain when randomness keeps failing
    (tight instances), so metaheuristic populations always start from
    complete assignments.
    """
    for _ in range(attempts):
        assignment = _one_random_attempt(problem, rng)
        if assignment is not None:
            return assignment
    return feasible_start(problem)


class NearestServerSolver(Solver):
    """Assign every device to its minimum-delay server, capacity-blind.

    The delay-optimal relaxation: its objective equals the problem's
    :meth:`~repro.model.problem.AssignmentProblem.delay_lower_bound`,
    but on loaded instances it overloads servers — which is exactly the
    failure mode the paper's feasibility guarantee addresses.
    """

    name = "nearest"

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        vector = np.argmin(problem.delay, axis=1)
        return Assignment(problem, vector), {}


class GreedyFeasibleSolver(Solver):
    """Delay-greedy over fitting servers, devices by decreasing demand."""

    name = "greedy"

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        return greedy_feasible_assignment(problem, prefer="delay"), {}


class BestFitSolver(Solver):
    """Pack tightly: choose the fitting server with least leftover room."""

    name = "best_fit"

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        return greedy_feasible_assignment(problem, prefer="best_fit"), {}


class WorstFitSolver(Solver):
    """Spread load: choose the fitting server with most leftover room."""

    name = "worst_fit"

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        return greedy_feasible_assignment(problem, prefer="worst_fit"), {}


class RegretGreedySolver(Solver):
    """Max-regret greedy (Martello & Toth's MTHG adapted to delay costs).

    At each step, for every unassigned device compute the regret —
    the delay difference between its best and second-best *fitting*
    servers — and commit the device with the largest regret to its
    best server.  Devices whose options are about to disappear get
    priority, which is what lifts this above plain delay-greedy on
    tight instances.
    """

    name = "regret"

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        n, m = problem.n_devices, problem.n_servers
        residual = problem.capacity.copy()
        assignment = Assignment(problem)
        unassigned = set(range(n))
        iterations = 0
        while unassigned:
            iterations += 1
            best_device, best_regret, best_server = -1, -np.inf, -1
            for device in unassigned:
                fits = np.flatnonzero(problem.demand[device] <= residual + 1e-12)
                if fits.size == 0:
                    continue
                delays = problem.delay[device, fits]
                order = np.argsort(delays)
                first = float(delays[order[0]])
                second = float(delays[order[1]]) if fits.size > 1 else float("inf")
                regret = second - first
                if regret > best_regret:
                    best_device = device
                    best_regret = regret
                    best_server = int(fits[order[0]])
            if best_device < 0:
                break  # nobody fits anywhere; complete-and-repair below
            assignment.assign(best_device, best_server)
            residual[best_server] -= problem.demand[best_device, best_server]
            unassigned.remove(best_device)
        stranded = len(unassigned)
        if stranded:
            # place stranded devices at their delay argmin (overloading),
            # then drain the overloads with global min-increase moves —
            # the same repair LP rounding uses
            from repro.solvers.lp import LPRoundingSolver

            vector = assignment.vector
            for device in unassigned:
                vector[device] = int(np.argmin(problem.delay[device]))
            LPRoundingSolver._repair(problem, vector)
            assignment = Assignment(problem, vector)
            if not assignment.is_feasible():
                # single-move repair cannot always untangle a tight packing;
                # fall back to the feasible constructive chain (worse delay,
                # but the baseline stays capacity-safe like its namesake)
                fallback = feasible_start(problem, rng)
                if fallback.is_feasible():
                    assignment = fallback
        return assignment, {"iterations": iterations, "stranded": stranded}


class RoundRobinSolver(Solver):
    """Cycle servers in index order, skipping full ones (delay-blind)."""

    name = "round_robin"

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        residual = problem.capacity.copy()
        assignment = Assignment(problem)
        cursor = 0
        m = problem.n_servers
        for device in range(problem.n_devices):
            for step in range(m):
                server = (cursor + step) % m
                if problem.demand[device, server] <= residual[server] + 1e-12:
                    assignment.assign(device, server)
                    residual[server] -= problem.demand[device, server]
                    cursor = (server + 1) % m
                    break
        return assignment, {}


class RandomFeasibleSolver(Solver):
    """Uniformly random feasible assignment (the floor of the comparison)."""

    name = "random"

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        return random_feasible_assignment(problem, rng), {}

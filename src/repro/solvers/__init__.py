"""Assignment solvers: exact, baseline heuristics, and market/metaheuristics.

The paper positions its RL heuristic against "the state-of-the-art";
this package implements that comparison field:

* :mod:`repro.solvers.exact` — brute force and branch-and-bound (the
  optimum for the gap tables);
* :mod:`repro.solvers.greedy` — constructive heuristics, from the
  capacity-blind nearest-server strawman to regret-based greedy;
* :mod:`repro.solvers.local_search` — shift/swap hill climbing and tabu;
* :mod:`repro.solvers.annealing` — simulated annealing with penalties;
* :mod:`repro.solvers.genetic` — GA with repair;
* :mod:`repro.solvers.lp` — LP relaxation bound and LP rounding;
* :mod:`repro.solvers.auction` — price-based market heuristic.

The RL solvers (the paper's contribution) live in :mod:`repro.rl` and
plug into the same :class:`~repro.solvers.base.Solver` interface; the
registry in :mod:`repro.solvers.registry` knows all of them by name.
"""

from repro.solvers.annealing import SimulatedAnnealingSolver
from repro.solvers.auction import AuctionSolver
from repro.solvers.base import Solver, SolverResult
from repro.solvers.bottleneck import BottleneckSolver
from repro.solvers.exact import BranchAndBoundSolver, BruteForceSolver
from repro.solvers.genetic import GeneticSolver
from repro.solvers.greedy import (
    BestFitSolver,
    GreedyFeasibleSolver,
    NearestServerSolver,
    RandomFeasibleSolver,
    RegretGreedySolver,
    RoundRobinSolver,
    WorstFitSolver,
)
from repro.solvers.lagrangian import LagrangianSolver
from repro.solvers.lns import LNSSolver
from repro.solvers.local_search import LocalSearchSolver, TabuSearchSolver
from repro.solvers.lp import LPRoundingSolver, lp_lower_bound
from repro.solvers.portfolio import PortfolioSolver
from repro.solvers.registry import available_solvers, get_solver

__all__ = [
    "SimulatedAnnealingSolver",
    "AuctionSolver",
    "Solver",
    "SolverResult",
    "BottleneckSolver",
    "BranchAndBoundSolver",
    "BruteForceSolver",
    "GeneticSolver",
    "BestFitSolver",
    "GreedyFeasibleSolver",
    "NearestServerSolver",
    "RandomFeasibleSolver",
    "RegretGreedySolver",
    "RoundRobinSolver",
    "WorstFitSolver",
    "LagrangianSolver",
    "LNSSolver",
    "LocalSearchSolver",
    "TabuSearchSolver",
    "LPRoundingSolver",
    "PortfolioSolver",
    "lp_lower_bound",
    "available_solvers",
    "get_solver",
]

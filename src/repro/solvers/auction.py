"""Auction (market-based) assignment heuristic.

A price-adjustment scheme in the spirit of Bertsekas' auction
algorithm, adapted to capacitated many-to-one assignment — a standard
distributed comparator in the edge-offloading literature because it
decomposes naturally across servers:

1. every unplaced device bids for the server minimizing
   ``delay[i, j] + price[j] * demand[i, j]``;
2. each server admits bids in bid-value order up to capacity and
   bounces the rest;
3. any server that had to bounce raises its unit-load price by ``eps``.

Prices only rise, so crowded low-delay servers price themselves out of
marginal devices and the system settles.  A final greedy pass places
any stragglers; the drain-repair from LP rounding guarantees the
capacity constraint on output.
"""

from __future__ import annotations

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start
from repro.solvers.lp import LPRoundingSolver
from repro.utils.validation import check_positive, require


class AuctionSolver(Solver):
    """Iterative price-based bidding for servers."""

    name = "auction"

    def __init__(self, max_rounds: int = 200, eps: "float | None" = None, **kwargs) -> None:
        super().__init__(**kwargs)
        require(max_rounds >= 1, "max_rounds must be >= 1")
        if eps is not None:
            check_positive(eps, "eps")
        self.max_rounds = max_rounds
        self.eps = eps

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        n, m = problem.n_devices, problem.n_servers
        mean_demand = float(np.mean(problem.demand))
        # price step sized so a few bumps meaningfully reorder choices
        eps = self.eps if self.eps is not None else float(
            0.05 * (np.max(problem.delay) - np.min(problem.delay) + 1e-12) / mean_demand
        )
        price = np.zeros(m)
        placed = np.full(n, -1, dtype=np.int64)
        rounds = 0
        for _ in range(self.max_rounds):
            rounds += 1
            unplaced = np.flatnonzero(placed < 0)
            if unplaced.size == 0:
                break
            # 1. bids
            bids: list[list[tuple[float, int]]] = [[] for _ in range(m)]
            for device in unplaced:
                value = problem.delay[device] + price * problem.demand[device]
                server = int(np.argmin(value))
                bids[server].append((float(value[server]), int(device)))
            # 2. admission up to residual capacity
            loads = np.zeros(m)
            kept = placed >= 0
            if np.any(kept):
                kept_idx = np.flatnonzero(kept)
                np.add.at(loads, placed[kept_idx], problem.demand[kept_idx, placed[kept_idx]])
            bounced = False
            for server in range(m):
                for _, device in sorted(bids[server]):
                    need = problem.demand[device, server]
                    if loads[server] + need <= problem.capacity[server] + 1e-12:
                        placed[device] = server
                        loads[server] += need
                    else:
                        bounced = True
                        price[server] += eps  # 3. congested server raises price
            if not bounced and np.all(placed >= 0):
                break
        # stragglers (price war ran out of rounds): greedy completion
        if np.any(placed < 0):
            residual = problem.capacity.copy()
            assigned = np.flatnonzero(placed >= 0)
            np.add.at(residual, placed[assigned], -problem.demand[assigned, placed[assigned]])
            for device in np.flatnonzero(placed < 0):
                fits = np.flatnonzero(problem.demand[device] <= residual + 1e-12)
                if fits.size:
                    server = int(fits[np.argmin(problem.delay[device, fits])])
                else:
                    server = int(np.argmin(problem.delay[device]))
                placed[device] = server
                residual[server] -= problem.demand[device, server]
        LPRoundingSolver._repair(problem, placed)
        assignment = Assignment(problem, placed)
        if not assignment.is_feasible():
            # market failed outright: fall back to the greedy baseline
            fallback = feasible_start(problem, rng)
            if fallback.is_feasible():
                return fallback, {"iterations": rounds, "fallback": True}
        return assignment, {"iterations": rounds}

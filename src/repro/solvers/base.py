"""Solver interface shared by every assignment algorithm in the library.

A solver takes an :class:`~repro.model.problem.AssignmentProblem` and
returns a :class:`SolverResult` carrying the assignment, its objective
value, feasibility, wall-clock runtime, and algorithm-specific extras
(node counts, episode curves, bounds).  Keeping this uniform is what
lets the benchmark harness sweep a dozen algorithms with one loop.
"""

from __future__ import annotations

import abc
import contextlib
import math
import time
from dataclasses import dataclass, field

from repro.model.objectives import Objective, TotalDelay, resolve_objective
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.utils.rng import make_rng
from repro.utils.stats import summarize


@dataclass
class SolverResult:
    """Outcome of one ``solve`` call."""

    solver: str
    assignment: Assignment
    objective_value: float
    feasible: bool
    runtime_s: float
    iterations: int = 0
    lower_bound: "float | None" = None
    extra: dict = field(default_factory=dict)

    @property
    def gap(self) -> "float | None":
        """Relative gap to :attr:`lower_bound` when one is attached.

        Only negative or missing bounds are undefined.  A legitimate
        zero bound met exactly (``objective_value == 0``) is a closed
        gap of ``0.0``; a zero bound with a positive objective is an
        unboundedly bad relative gap (``inf``).
        """
        if self.lower_bound is None or self.lower_bound < 0:
            return None
        if not math.isfinite(self.objective_value):
            return None
        if self.lower_bound == 0.0:
            return 0.0 if self.objective_value == 0.0 else math.inf
        return self.objective_value / self.lower_bound - 1.0

    def summary_row(self) -> list:
        """Row for the harness tables: name, value, feasible, runtime."""
        return [self.solver, self.objective_value, self.feasible, self.runtime_s]


class Solver(abc.ABC):
    """Base class: timing, objective resolution, deterministic seeding.

    Subclasses implement :meth:`_solve` returning an
    :class:`~repro.model.solution.Assignment` plus an info dict; the
    base class measures runtime and evaluates the objective.  Solvers
    must return *complete* assignments whenever the instance is
    feasible for them; a solver that cannot complete (e.g. the
    capacity-blind strawman on a tight instance never fails — it
    overloads instead) returns what it built and the result is marked
    infeasible.
    """

    #: registry name; subclasses override
    name: str = "abstract"

    def __init__(
        self,
        objective: "Objective | str | None" = None,
        seed: "int | None" = None,
    ) -> None:
        self.objective = resolve_objective(objective)
        self.seed = seed

    def solve(self, problem: AssignmentProblem) -> SolverResult:
        """Run the algorithm and package the outcome."""
        registry = obs_runtime.metrics()
        labels = {"solver": self.name}
        with obs_runtime.tracer().span(
            f"{obs_names.SPAN_SOLVE}/{self.name}",
            devices=problem.n_devices,
            servers=problem.n_servers,
        ):
            start = time.perf_counter()
            assignment, info = self._solve(problem, make_rng(self.seed))
            runtime = time.perf_counter() - start
        feasible = assignment.is_feasible()
        if assignment.is_complete:
            value = self._scoring_objective(problem).evaluate(assignment)
        else:
            value = math.inf
        iterations = int(info.pop("iterations", 0))
        self._record_improvements(registry, labels, info)
        registry.counter(obs_names.SOLVER_SOLVES, labels).inc()
        registry.timer(obs_names.SOLVER_RUNTIME, labels).observe(runtime)
        registry.counter(obs_names.SOLVER_ITERATIONS, labels).inc(iterations)
        if not feasible:
            registry.counter(obs_names.SOLVER_INFEASIBLE, labels).inc()
        return SolverResult(
            solver=self.name,
            assignment=assignment,
            objective_value=value,
            feasible=feasible,
            runtime_s=runtime,
            iterations=iterations,
            lower_bound=info.pop("lower_bound", None),
            extra=info,
        )

    def _scoring_objective(self, problem: AssignmentProblem) -> Objective:
        """The objective a result is scored with.

        A problem declaring ``objective="congestion"`` (and carrying a
        topology to route over) is scored by flow-based effective delay
        unless the solver was constructed with an explicit non-default
        objective.  Default-mode problems always use the solver's own
        resolved objective, so the pre-existing behaviour — including
        serialized results — is byte-identical.
        """
        if (
            problem.objective == "congestion"
            and problem.graph is not None
            and problem.devices is not None
            and problem.servers is not None
            and isinstance(self.objective, TotalDelay)
        ):
            # lazy: repro.contention imports this module
            from repro.contention.objective import ContentionObjective

            return ContentionObjective()
        return self.objective

    @contextlib.contextmanager
    def phase(self, name: str):
        """Time one named phase of the algorithm body (profiling hook).

        ``with self.phase("descend"):`` opens a ``solve/<solver>/<name>``
        child span and streams the duration into the
        ``solver/phase_runtime_s`` timer labeled ``{solver, phase}`` —
        so phase breakdowns show up in both the span tree and the
        merged cross-process metrics.  Costs two no-op calls per phase
        when observability is off.
        """
        timer = obs_runtime.metrics().timer(
            obs_names.SOLVER_PHASE_RUNTIME, {"solver": self.name, "phase": name}
        )
        with obs_runtime.tracer().span(
            f"{obs_names.SPAN_SOLVE}/{self.name}/{name}"
        ), timer:
            yield

    def _record_improvements(self, registry, labels: dict, info: dict) -> None:
        """Incumbent-improvement telemetry for iterative solvers.

        Solvers that report a per-iteration cost curve (``episode_costs``
        in their info dict) get the successive incumbent improvements
        summarized into ``extra["objective_improvements"]`` and, when
        observability is on, streamed into the shared histogram.
        """
        costs = info.get("episode_costs")
        if not costs:
            return
        improvements: list[float] = []
        best = math.inf
        for cost in costs:
            if cost is None or not math.isfinite(cost):
                continue
            if cost < best:
                if math.isfinite(best):
                    improvements.append(best - cost)
                best = cost
        if not improvements:
            return
        info["objective_improvements"] = summarize(improvements).as_dict()
        histogram = registry.histogram(obs_names.SOLVER_IMPROVEMENT, labels)
        for delta in improvements:
            histogram.observe(delta)

    @abc.abstractmethod
    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        """Algorithm body; returns (assignment, info dict)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(objective={self.objective.name}, seed={self.seed})"

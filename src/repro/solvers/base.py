"""Solver interface shared by every assignment algorithm in the library.

A solver takes an :class:`~repro.model.problem.AssignmentProblem` and
returns a :class:`SolverResult` carrying the assignment, its objective
value, feasibility, wall-clock runtime, and algorithm-specific extras
(node counts, episode curves, bounds).  Keeping this uniform is what
lets the benchmark harness sweep a dozen algorithms with one loop.
"""

from __future__ import annotations

import abc
import math
import time
from dataclasses import dataclass, field

from repro.model.objectives import Objective, resolve_objective
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.utils.rng import make_rng


@dataclass
class SolverResult:
    """Outcome of one ``solve`` call."""

    solver: str
    assignment: Assignment
    objective_value: float
    feasible: bool
    runtime_s: float
    iterations: int = 0
    lower_bound: "float | None" = None
    extra: dict = field(default_factory=dict)

    @property
    def gap(self) -> "float | None":
        """Relative gap to :attr:`lower_bound` when one is attached."""
        if self.lower_bound is None or self.lower_bound <= 0:
            return None
        if not math.isfinite(self.objective_value):
            return None
        return self.objective_value / self.lower_bound - 1.0

    def summary_row(self) -> list:
        """Row for the harness tables: name, value, feasible, runtime."""
        return [self.solver, self.objective_value, self.feasible, self.runtime_s]


class Solver(abc.ABC):
    """Base class: timing, objective resolution, deterministic seeding.

    Subclasses implement :meth:`_solve` returning an
    :class:`~repro.model.solution.Assignment` plus an info dict; the
    base class measures runtime and evaluates the objective.  Solvers
    must return *complete* assignments whenever the instance is
    feasible for them; a solver that cannot complete (e.g. the
    capacity-blind strawman on a tight instance never fails — it
    overloads instead) returns what it built and the result is marked
    infeasible.
    """

    #: registry name; subclasses override
    name: str = "abstract"

    def __init__(
        self,
        objective: "Objective | str | None" = None,
        seed: "int | None" = None,
    ) -> None:
        self.objective = resolve_objective(objective)
        self.seed = seed

    def solve(self, problem: AssignmentProblem) -> SolverResult:
        """Run the algorithm and package the outcome."""
        start = time.perf_counter()
        assignment, info = self._solve(problem, make_rng(self.seed))
        runtime = time.perf_counter() - start
        feasible = assignment.is_feasible()
        if assignment.is_complete:
            value = self.objective.evaluate(assignment)
        else:
            value = math.inf
        return SolverResult(
            solver=self.name,
            assignment=assignment,
            objective_value=value,
            feasible=feasible,
            runtime_s=runtime,
            iterations=int(info.pop("iterations", 0)),
            lower_bound=info.pop("lower_bound", None),
            extra=info,
        )

    @abc.abstractmethod
    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        """Algorithm body; returns (assignment, info dict)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(objective={self.objective.name}, seed={self.seed})"

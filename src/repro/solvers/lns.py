"""Large Neighborhood Search (destroy-and-repair).

The strongest modern metaheuristic family for GAP-like problems: each
iteration *destroys* part of the incumbent (un-assigns a subset of
devices) and *repairs* it (re-inserts them with a regret-style greedy
against residual capacities), accepting improvements and — with a
small simulated-annealing temperature — occasional sideways moves.

Destroy operators:

* ``random`` — uniform subset (diversification);
* ``worst`` — the devices paying the highest delay (intensification);
* ``server`` — every device on one random server (unlocks packing
  conflicts that single-device moves cannot).

Operators are drawn adaptively: each success grows its selection
weight (a light-weight ALNS).
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start
from repro.utils.validation import check_in_range, require

_OPERATORS = ("random", "worst", "server")


class LNSSolver(Solver):
    """Adaptive large neighborhood search over assignments."""

    name = "lns"

    def __init__(
        self,
        iterations: int = 300,
        destroy_fraction: float = 0.25,
        temperature: float = 0.02,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        require(iterations >= 1, "iterations must be >= 1")
        check_in_range(destroy_fraction, "destroy_fraction", 0.0, 1.0,
                       low_inclusive=False)
        check_in_range(temperature, "temperature", 0.0, 1.0)
        self.iterations = iterations
        self.destroy_fraction = destroy_fraction
        self.temperature = temperature

    # ------------------------------------------------------------------
    def _destroy(
        self,
        problem: AssignmentProblem,
        vector: np.ndarray,
        operator: str,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return indices of devices to remove from the incumbent."""
        n = problem.n_devices
        k = max(1, int(round(self.destroy_fraction * n)))
        if operator == "random":
            return rng.choice(n, size=k, replace=False)
        if operator == "worst":
            delays = problem.delay[np.arange(n), vector]
            order = np.argsort(-delays)
            # soften pure-worst with a randomized cut so repeats differ
            take = min(n, k + int(rng.integers(0, max(1, k))))
            pool = order[:take]
            return rng.choice(pool, size=min(k, pool.size), replace=False)
        # operator == "server": clear one random non-empty server
        occupied = np.unique(vector)
        server = int(occupied[rng.integers(occupied.size)])
        members = np.flatnonzero(vector == server)
        if members.size > k:
            members = rng.choice(members, size=k, replace=False)
        return members

    @staticmethod
    def _repair(
        problem: AssignmentProblem,
        vector: np.ndarray,
        removed: np.ndarray,
        rng: np.random.Generator,
    ) -> bool:
        """Regret-insert ``removed`` devices; returns False on dead end."""
        residual = problem.capacity.copy()
        kept = np.setdiff1d(np.arange(problem.n_devices), removed)
        if kept.size:
            np.add.at(residual, vector[kept], -problem.demand[kept, vector[kept]])
        pending = set(int(d) for d in removed)
        while pending:
            best_device, best_regret, best_server = -1, -math.inf, -1
            for device in pending:
                fits = np.flatnonzero(problem.demand[device] <= residual + 1e-12)
                if fits.size == 0:
                    return False
                delays = problem.delay[device, fits]
                order = np.argsort(delays)
                first = float(delays[order[0]])
                second = float(delays[order[1]]) if fits.size > 1 else math.inf
                if second - first > best_regret:
                    best_device = device
                    best_regret = second - first
                    best_server = int(fits[order[0]])
            vector[best_device] = best_server
            residual[best_server] -= problem.demand[best_device, best_server]
            pending.remove(best_device)
        return True

    # ------------------------------------------------------------------
    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        start = feasible_start(problem, rng)
        if not start.is_complete:
            return start, {"iterations": 0}
        n = problem.n_devices
        incumbent = start.vector
        incumbent_cost = float(np.sum(problem.delay[np.arange(n), incumbent]))
        best = incumbent.copy()
        best_cost = incumbent_cost
        weights = np.ones(len(_OPERATORS))
        scale = max(float(np.max(problem.delay) - np.min(problem.delay)), 1e-12)
        accepted = 0
        operator_uses = dict.fromkeys(_OPERATORS, 0)
        for _ in range(self.iterations):
            probabilities = weights / weights.sum()
            operator = _OPERATORS[int(rng.choice(len(_OPERATORS), p=probabilities))]
            operator_uses[operator] += 1
            candidate = incumbent.copy()
            removed = self._destroy(problem, candidate, operator, rng)
            if not self._repair(problem, candidate, removed, rng):
                continue  # repair dead-ended; incumbent unchanged
            candidate_cost = float(np.sum(problem.delay[np.arange(n), candidate]))
            delta = candidate_cost - incumbent_cost
            accept = delta < 0 or (
                self.temperature > 0
                and rng.random() < math.exp(-delta / (self.temperature * scale * n))
            )
            if accept:
                incumbent = candidate
                incumbent_cost = candidate_cost
                accepted += 1
                if candidate_cost < best_cost:
                    best = candidate.copy()
                    best_cost = candidate_cost
                    weights[_OPERATORS.index(operator)] += 1.0  # reward the operator
            weights *= 0.999  # slow decay keeps the mix adaptive
            weights = np.maximum(weights, 0.1)
        return Assignment(problem, best), {
            "iterations": self.iterations,
            "accepted": accepted,
            "operator_uses": operator_uses,
        }

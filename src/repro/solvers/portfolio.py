"""Portfolio solver: run several algorithms, keep the best.

Algorithm portfolios are the standard production answer to "which
heuristic should I deploy?" — no single GAP heuristic dominates across
instance classes (T1 shows greedy collapsing exactly where LNS shines),
so running a small diverse set and taking the best feasible result
buys robustness for a bounded constant factor of compute.

The default portfolio covers the three families: a constructive
(``greedy``), an improvement search (``lns``), and a bound-guided
method (``lagrangian``); the RL agent can be added where its episode
budget is affordable.
"""

from __future__ import annotations

import math

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.solvers.base import Solver
from repro.utils.rng import derive_seed
from repro.utils.validation import require

DEFAULT_PORTFOLIO = ("greedy", "lns", "lagrangian")


class PortfolioSolver(Solver):
    """Best-of-N over registered solvers."""

    name = "portfolio"

    def __init__(
        self,
        members: "tuple[str, ...] | list[str]" = DEFAULT_PORTFOLIO,
        member_kwargs: "dict[str, dict] | None" = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        require(len(members) >= 1, "portfolio needs at least one member")
        self.members = tuple(members)
        self.member_kwargs = dict(member_kwargs or {})

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        from repro.solvers.registry import get_solver

        best_result = None
        best_value = math.inf
        per_member: dict[str, float] = {}
        for member in self.members:
            kwargs = dict(self.member_kwargs.get(member, {}))
            kwargs.setdefault("seed", derive_seed(self.seed or 0, "portfolio", member))
            result = get_solver(member, **kwargs).solve(problem)
            value = (
                self.objective.evaluate(result.assignment)
                if result.feasible
                else math.inf
            )
            per_member[member] = value
            if value < best_value:
                best_value = value
                best_result = result
        if best_result is None or not math.isfinite(best_value):
            # no member produced a feasible solution; return the last
            # attempt so the caller sees a complete-but-infeasible vector
            assert result is not None
            return result.assignment, {"per_member": per_member, "winner": None}
        return best_result.assignment, {
            "per_member": per_member,
            "winner": best_result.solver,
        }

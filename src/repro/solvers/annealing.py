"""Simulated annealing with a capacity-penalty energy.

Unlike the feasibility-invariant neighbourhood solvers, annealing is
allowed to *pass through* infeasible states: the energy function is

    energy = total_delay + penalty * total_overload

with ``penalty`` auto-scaled so that one unit of overload always costs
more than the largest possible delay saving — overloaded states can be
visited but never beat a feasible optimum.  The best *feasible* state
seen is what is returned, preserving the paper's no-overload guarantee
at the output.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start
from repro.utils.validation import check_in_range, check_positive, require


class SimulatedAnnealingSolver(Solver):
    """Geometric-cooling simulated annealing over shift moves."""

    name = "annealing"

    def __init__(
        self,
        steps: int = 20_000,
        initial_temperature: "float | None" = None,
        cooling: float = 0.999,
        penalty_factor: float = 2.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        require(steps >= 1, "steps must be >= 1")
        check_in_range(cooling, "cooling", 0.0, 1.0, low_inclusive=False, high_inclusive=False)
        check_positive(penalty_factor, "penalty_factor")
        if initial_temperature is not None:
            check_positive(initial_temperature, "initial_temperature")
        self.steps = steps
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.penalty_factor = penalty_factor

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        n, m = problem.n_devices, problem.n_servers
        start = feasible_start(problem, rng)
        if not start.is_complete:
            # fall back to the delay-optimal (possibly infeasible) start;
            # the penalty drives the walk back into the feasible region
            start = Assignment(problem, np.argmin(problem.delay, axis=1))
        vector = start.vector
        loads = start.loads()

        delay_span = float(np.max(problem.delay) - np.min(problem.delay))
        min_demand = float(np.min(problem.demand))
        # one unit of overload outweighs the biggest delay swing
        penalty = self.penalty_factor * max(delay_span, 1e-12) / max(min_demand, 1e-12)

        def violation() -> float:
            """Return violation."""
            return float(np.sum(np.maximum(loads - problem.capacity, 0.0)))

        cost = float(np.sum(problem.delay[np.arange(n), vector]))
        energy = cost + penalty * violation()
        temperature = self.initial_temperature
        if temperature is None:
            # accept a typical uphill move ~60% of the time initially
            temperature = max(delay_span, 1e-9)

        best_feasible_vector = start.vector if start.is_feasible() else None
        best_feasible_cost = cost if start.is_feasible() else math.inf
        accepted = 0
        for _ in range(self.steps):
            device = int(rng.integers(n))
            server = int(rng.integers(m))
            current = int(vector[device])
            if server == current:
                temperature *= self.cooling
                continue
            old_violation = violation()
            loads[current] -= problem.demand[device, current]
            loads[server] += problem.demand[device, server]
            new_violation = violation()
            delta_cost = problem.delay[device, server] - problem.delay[device, current]
            delta_energy = delta_cost + penalty * (new_violation - old_violation)
            if delta_energy <= 0 or rng.random() < math.exp(-delta_energy / temperature):
                vector[device] = server
                cost += delta_cost
                energy += delta_energy
                accepted += 1
                if new_violation <= 1e-12 and cost < best_feasible_cost:
                    best_feasible_cost = cost
                    best_feasible_vector = vector.copy()
            else:
                loads[current] += problem.demand[device, current]
                loads[server] -= problem.demand[device, server]
            temperature *= self.cooling
        if best_feasible_vector is None:
            return Assignment(problem, vector), {
                "iterations": self.steps,
                "accepted": accepted,
            }
        return Assignment(problem, best_feasible_vector), {
            "iterations": self.steps,
            "accepted": accepted,
        }

"""LP relaxation: the classical bound and rounding comparator.

:func:`lp_lower_bound` solves the fractional relaxation of the GAP
with :func:`scipy.optimize.linprog` (HiGHS).  Its optimum is a valid
lower bound on any integral assignment — tighter than the
capacity-relaxed bound — and is what the optimality-gap table reports
when branch-and-bound is too slow.

:class:`LPRoundingSolver` is the Shmoys–Tardos-inspired comparator:
solve the relaxation, fix the (many) integral variables, round each
fractional device to its largest LP share, then run the standard
drain-the-overload repair so the output satisfies the hard capacity
constraint.  (The original Shmoys–Tardos rounding guarantees cost ≤
OPT with capacities ≤ 2c; since the paper's constraint is hard, we
trade the theoretical factor for feasibility via repair.)
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.errors import SolverError
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.solvers.base import Solver


def lp_relaxation(problem: AssignmentProblem) -> tuple[float, np.ndarray]:
    """Solve the fractional GAP relaxation.

    Returns ``(optimal_value, x)`` with ``x`` of shape ``(N, M)``,
    rows summing to one, capacities respected fractionally.  Raises
    :class:`~repro.errors.SolverError` if HiGHS fails (which for this
    always-feasible LP indicates a malformed instance).
    """
    n, m = problem.n_devices, problem.n_servers
    cost = problem.delay.reshape(-1)

    # equality: each device's row of x sums to 1
    eq_rows = np.repeat(np.arange(n), m)
    eq_cols = np.arange(n * m)
    a_eq = coo_matrix((np.ones(n * m), (eq_rows, eq_cols)), shape=(n, n * m))

    # inequality: per-server weighted column sums within capacity
    ub_rows = np.tile(np.arange(m), n)
    ub_cols = np.arange(n * m)
    a_ub = coo_matrix((problem.demand.reshape(-1), (ub_rows, ub_cols)), shape=(m, n * m))

    result = linprog(
        c=cost,
        A_eq=a_eq,
        b_eq=np.ones(n),
        A_ub=a_ub,
        b_ub=problem.capacity,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise SolverError(f"LP relaxation failed: {result.message}")
    return float(result.fun), result.x.reshape(n, m)


def lp_lower_bound(problem: AssignmentProblem) -> float:
    """Fractional-optimum lower bound on the integral problem."""
    value, _ = lp_relaxation(problem)
    return value


class LPRoundingSolver(Solver):
    """LP relaxation + largest-share rounding + capacity repair."""

    name = "lp_rounding"

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        bound, fractional = lp_relaxation(problem)
        # round each device to its largest LP share (integral devices,
        # the majority in basic solutions, keep their LP server)
        vector = np.argmax(fractional, axis=1).astype(np.int64)
        self._repair(problem, vector)
        return Assignment(problem, vector), {"lower_bound": bound}

    @staticmethod
    def _repair(problem: AssignmentProblem, vector: np.ndarray) -> None:
        """Drain overloaded servers with minimum-delay-increase moves."""
        n = problem.n_devices
        loads = np.zeros(problem.n_servers)
        np.add.at(loads, vector, problem.demand[np.arange(n), vector])
        for _ in range(4 * n):  # each move strictly reduces total overload
            overloaded = np.flatnonzero(loads > problem.capacity + 1e-12)
            if overloaded.size == 0:
                return
            best = None  # (delay increase, device, source, target)
            for server in overloaded:
                for device in np.flatnonzero(vector == server):
                    room = problem.capacity - loads
                    fits = np.flatnonzero(problem.demand[device] <= room + 1e-12)
                    fits = fits[fits != server]
                    if fits.size == 0:
                        continue
                    target = int(fits[np.argmin(problem.delay[device, fits])])
                    increase = problem.delay[device, target] - problem.delay[device, server]
                    if best is None or increase < best[0]:
                        best = (increase, int(device), int(server), target)
            if best is None:
                return  # stuck: leave overloaded, caller reports infeasible
            _, device, source, target = best
            loads[source] -= problem.demand[device, source]
            loads[target] += problem.demand[device, target]
            vector[device] = target
